#!/usr/bin/env bash
# Full local gate: build, test, then the ndlint static pass.
# Mirrors what CI runs; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -q -p ndlint --release
