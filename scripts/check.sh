#!/usr/bin/env bash
# Full local gate: build, test, then the ndlint static pass.
# Mirrors what CI runs; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# The opt-in fast-math families must pass the same suite: NDPIPE_MATH=fast
# flips the process-default MathPolicy, so every non-pinned GEMM in the
# tests runs through the FMA/AVX-512 kernels.
NDPIPE_MATH=fast cargo test -q
# Static pass: machine-readable report diffed against the checked-in
# baseline (fails on new findings), archived next to the bench JSON,
# plus the wall-clock budget artifact (< 5 s for the whole workspace).
mkdir -p results
cargo run -q -p ndlint --release -- . \
    --json results/ndlint.json \
    --baseline ndlint.baseline.json \
    --bench-out results/BENCH_ndlint.json
test -s results/ndlint.json
test -s results/BENCH_ndlint.json
# Bench smoke: the measured benches must run end-to-end and write their
# JSON artifacts (fast configs; numbers are noisy, existence is the gate).
cargo run -q -p bench --release --bin bench_report -- --fast >/dev/null
test -s results/BENCH_npe_pipeline.json
test -s results/BENCH_gemm_kernel.json
test -s results/BENCH_gemm_fast.json
test -s results/BENCH_telemetry_overhead.json
test -s results/BENCH_cluster_fanout.json
test -s results/BENCH_rpc_concurrency.json
test -s results/BENCH_placement.json
test -s results/BENCH_ftdmp_pipeline.json
# RPC server stress smoke (8 concurrent sessions against one PipeStore)
# and the placement rejoin soak (kill/restart/rejoin every node).
cargo test -q --release --test cluster_failover -- --ignored
# Pipelined FT-DMP slow-peer soak: one store sleeping per extracted row,
# the schedule must steal its micro-batches and still converge.
cargo test -q --release --test ftdmp_pipeline -- --ignored
# Event-loop soak: ≥1000 concurrent sessions, zero lost replies, p99
# asserted from the server's telemetry histograms.
cargo test -q --release --test rpc_event_server -- --ignored
# Runtime invariant sanitizer: re-run the failover + event-server suites
# (soaks included) with the lock-order witness and channel-depth
# watchdog armed. A separate target dir keeps the cfg'd artifacts from
# thrashing the main cache.
RUSTFLAGS='--cfg ndpipe_sanitize' CARGO_TARGET_DIR=target/sanitize \
    cargo test -q --release --test cluster_failover --test rpc_event_server
RUSTFLAGS='--cfg ndpipe_sanitize' CARGO_TARGET_DIR=target/sanitize \
    cargo test -q --release --test cluster_failover --test rpc_event_server -- --ignored
