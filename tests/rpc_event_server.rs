//! The event-driven RPC front door under concurrency: session-slot
//! reaping on abort, client-side request pipelining, malformed-frame
//! handling, and an (ignored-by-default) thousand-session soak that
//! `scripts/check.sh` runs explicitly.

use dnn::Mlp;
use ndpipe::rpc::server::{PipeStoreServer, ServerConfig};
use ndpipe::rpc::wire::{
    read_handshake, read_reply, write_handshake, write_request, Handshake, Reply, Request,
    PROTOCOL_VERSION,
};
use ndpipe::rpc::{ConnectOptions, RemotePipeStore};
use ndpipe::PipeStore;
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;
use tensor::Tensor;

fn dataset(rng: &mut StdRng, classes: usize, per_class: usize) -> LabeledDataset {
    let u = ClassUniverse::new(16, 8, classes, 0.3, rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..per_class {
            rows.push(u.sample(c, rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, classes)
}

fn bind_server(rng: &mut StdRng) -> PipeStoreServer {
    let train = dataset(rng, 4, 8);
    PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind event server")
}

/// Feature rows plus the labels the installed model must produce for
/// them, computed by a local forward pass.
fn rows_and_expected(model: &Mlp, rng: &mut StdRng, n: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| Tensor::randn(&[16], rng).data().to_vec())
        .collect();
    let expected: Vec<u32> = rows
        .iter()
        .map(|r| {
            model
                .forward(&Tensor::from_vec(r.clone(), &[1, 16]))
                .argmax() as u32
        })
        .collect();
    (rows, expected)
}

#[test]
fn abort_reaps_every_session_and_gauge_returns_to_zero() {
    let mut rng = StdRng::seed_from_u64(601);
    let server = bind_server(&mut rng);
    let addr = server.local_addr();

    let mut clients: Vec<RemotePipeStore> = (0..4)
        .map(|_| RemotePipeStore::connect(addr).expect("connect"))
        .collect();
    for c in &mut clients {
        c.describe().expect("describe");
    }
    assert_eq!(server.active_sessions(), 4);

    // Hard stop with all four sessions still open: every slot must be
    // reaped, so the gauge lands back at zero — not at whatever the
    // abort interleaving left behind.
    let store = server.abort().expect("abort");
    let snap = store.metrics().snapshot();
    let gauge = snap
        .find("ndpipe_rpc_sessions_active")
        .expect("session gauge registered");
    match gauge.value {
        telemetry::SampleValue::Gauge(v) => {
            assert_eq!(v, 0.0, "session gauge drifted after abort");
        }
        ref other => panic!("expected gauge, got {}", other.kind()),
    }

    // The peers were slammed shut; their next call errors, never hangs.
    for mut c in clients {
        assert!(c.describe().is_err(), "session survived a hard abort");
    }
}

#[test]
fn pipelined_inference_matches_direct_forward() {
    let mut rng = StdRng::seed_from_u64(602);
    let server = bind_server(&mut rng);
    let model = Mlp::new(&[16, 24, 4], 1, &mut rng);

    let mut client = RemotePipeStore::connect(server.local_addr()).expect("connect");
    client.install_model(&model).expect("install");

    // 25 rows through a window of 8: three full windows plus a remnant,
    // all answered in request order.
    let (rows, expected) = rows_and_expected(&model, &mut rng, 25);
    let labels = client.infer_pipelined(&rows, 8).expect("pipelined infer");
    assert_eq!(labels, expected, "replies out of order or mislabeled");

    // The explicit window API composes with plain calls once drained.
    client.start_infer(&rows[0]).expect("start");
    client.start_infer(&rows[1]).expect("start");
    assert_eq!(client.pending_infers(), 2);
    assert_eq!(
        client.finish_infer().expect("finish"),
        vec![expected[0], expected[1]]
    );
    assert_eq!(client.infer(&rows[2]).expect("single infer"), expected[2]);

    client.shutdown().expect("end session");
    server.shutdown().expect("clean server stop");
}

#[test]
fn malformed_request_body_gets_structured_error_and_session_survives() {
    let mut rng = StdRng::seed_from_u64(603);
    let server = bind_server(&mut rng);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write_handshake(
        &mut stream,
        &Handshake::Hello {
            version: PROTOCOL_VERSION,
            features: 0,
        },
    )
    .expect("hello");
    match read_handshake(&mut stream).expect("greeting") {
        Handshake::Accept { .. } => {}
        other => panic!("expected accept, got {other:?}"),
    }

    // A well-formed frame (honest length prefix) around a body the
    // request decoder must reject: unknown tag, three junk bytes.
    let mut frame = Vec::new();
    frame.extend_from_slice(&3u32.to_le_bytes());
    frame.push(0xEE);
    frame.extend_from_slice(&[1, 2, 3]);
    stream.write_all(&frame).expect("send malformed frame");

    match read_reply(&mut stream).expect("error reply").0 {
        Reply::Error(msg) => assert!(
            msg.contains("bad request frame"),
            "unexpected error text: {msg}"
        ),
        other => panic!("expected structured error, got {other:?}"),
    }

    // The session survived the bad body: a valid request still works.
    write_request(&mut stream, &Request::Describe).expect("describe");
    match read_reply(&mut stream).expect("describe reply").0 {
        Reply::ShardInfo { .. } => {}
        other => panic!("expected shard info, got {other:?}"),
    }
    drop(stream);

    // And the malformed body was the peer's fault, not a server-side
    // session failure: shutdown reports no first error.
    server
        .shutdown()
        .expect("malformed body must not poison shutdown");
}

/// The ISSUE's soak gate: ≥1000 concurrent sessions on the DEFAULT
/// config, every reply accounted for, p99 asserted from the telemetry
/// histogram. Ignored by default (it's a load test); `scripts/check.sh`
/// runs it with `--ignored`.
#[test]
#[ignore = "1k-session soak; run explicitly or via scripts/check.sh"]
fn soak_holds_a_thousand_concurrent_sessions() {
    const THREADS: usize = 16;
    const CONNS: usize = 64; // 16 × 64 = 1024 concurrent sessions
    const INFERS: usize = 16; // per session
    const WINDOW: usize = 8;

    let mut rng = StdRng::seed_from_u64(604);
    let server = bind_server(&mut rng);
    let addr = server.local_addr();
    let model = Arc::new(Mlp::new(&[16, 24, 4], 1, &mut rng));
    {
        let mut c = RemotePipeStore::connect(addr).expect("installer connect");
        c.install_model(&model).expect("install");
        c.shutdown().expect("installer end");
    }

    let connected = Arc::new(Barrier::new(THREADS + 1));
    let proceed = Arc::new(Barrier::new(THREADS + 1));
    let mut handles = Vec::with_capacity(THREADS);
    for t in 0..THREADS {
        let connected = Arc::clone(&connected);
        let proceed = Arc::clone(&proceed);
        let model = Arc::clone(&model);
        handles.push(std::thread::spawn(move || -> usize {
            let mut rng = StdRng::seed_from_u64(700 + t as u64);
            // The connect storm can outrun the accept loop; generous
            // retries keep the ramp-up honest instead of flaky.
            let opts = ConnectOptions::new()
                .retries(10)
                .backoff(Duration::from_millis(5), Duration::from_millis(200));
            let mut clients: Vec<RemotePipeStore> = (0..CONNS)
                .map(|_| RemotePipeStore::connect_with(addr, opts).expect("connect"))
                .collect();
            connected.wait();
            // Hold every session open until the main thread has observed
            // the concurrent population.
            proceed.wait();
            let mut replies = 0usize;
            for c in clients.iter_mut() {
                let (rows, expected) = rows_and_expected(&model, &mut rng, INFERS);
                let got = c.infer_pipelined(&rows, WINDOW).expect("pipelined infer");
                assert_eq!(got, expected, "reply demultiplexed to the wrong request");
                replies += got.len();
            }
            for c in clients {
                c.shutdown().expect("end session");
            }
            replies
        }));
    }

    connected.wait();
    let peak = server.active_sessions();
    assert!(
        peak >= THREADS * CONNS,
        "soak never reached 1000 concurrent sessions: {peak}"
    );
    proceed.wait();
    let total: usize = handles
        .into_iter()
        .map(|h| h.join().expect("soak thread"))
        .sum();
    assert_eq!(total, THREADS * CONNS * INFERS, "lost replies");

    let store = server.shutdown().expect("clean shutdown after soak");
    let snap = store.metrics().snapshot();
    let lat = snap
        .find_with("ndpipe_rpc_server_op_seconds", &[("op", "infer")])
        .expect("infer latency histogram");
    match lat.value {
        telemetry::SampleValue::Histogram(ref h) => {
            assert_eq!(
                h.count,
                (THREADS * CONNS * INFERS) as u64,
                "latency histogram lost observations"
            );
            let p99 = h.quantile(0.99);
            assert!(
                p99.is_finite() && p99 >= 0.0,
                "p99 must be recorded, got {p99}"
            );
            println!(
                "soak: {} sessions, {} infers, p99 infer latency {:.6}s",
                peak, total, p99
            );
        }
        ref other => panic!("expected histogram, got {}", other.kind()),
    }
    // Under `--cfg ndpipe_sanitize` every send samples queue depth and
    // every instrumented acquisition checks lock order; the soak passing
    // means zero violations. Confirm the witnesses ran and that the
    // bounded queues stayed within their declared capacities.
    #[cfg(ndpipe_sanitize)]
    {
        assert!(
            ndpipe::sanitize::checks_performed() > 0,
            "sanitizer build ran the soak without a single witness check"
        );
        // Caps mirror WORK_QUEUE_CAP / DONE_QUEUE_CAP in rpc/server.rs.
        let work_hw = ndpipe::sanitize::high_water("rpc.work");
        let done_hw = ndpipe::sanitize::high_water("rpc.done");
        assert!(work_hw <= 1024, "work queue overflowed its bound: {work_hw}");
        assert!(done_hw <= 4096, "done queue overflowed its bound: {done_hw}");
        println!("soak sanitizer: work hw {work_hw}, done hw {done_hw}");
    }
}
