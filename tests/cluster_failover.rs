//! Cluster failover semantics against real localhost sockets: killed
//! peers under `Quorum` vs `Strict`, structured handshake refusals, the
//! session cap, mid-sweep shard reroutes over a placement map, the
//! kill → restart → rejoin loop, and (ignored by default) concurrent
//! stress / rejoin soak runs.

use dnn::{Mlp, TrainConfig};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::rpc::wire::{read_handshake, write_handshake, Handshake, PhotoRecord, PROTOCOL_VERSION};
use ndpipe::rpc::{
    Cluster, ClusterError, ConnectOptions, FailurePolicy, PipeStoreServer, RebalanceConfig,
    RemotePipeStore, RpcError, ServerConfig,
};
use ndpipe::{PipeStore, PlacementMap, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn dataset(rng: &mut StdRng, classes: usize, per_class: usize) -> LabeledDataset {
    let u = ClassUniverse::new(16, 8, classes, 0.3, rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..per_class {
            rows.push(u.sample(c, rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, classes)
}

/// Boots `n` PipeStore servers on ephemeral ports, one shard each.
fn spawn_servers(train: &LabeledDataset, n: usize) -> (Vec<PipeStoreServer>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for (i, shard) in train.shards(n).into_iter().enumerate() {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

/// Low-latency retry settings so dead-peer probes don't slow the test.
fn fast_opts() -> ConnectOptions {
    ConnectOptions::new()
        .retries(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(5))
}

#[test]
fn quorum_survives_killed_peer() {
    let mut rng = StdRng::seed_from_u64(201);
    let train = dataset(&mut rng, 5, 30);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let ft = FtdmpConfig {
        n_run: 1,
        epochs_per_run: 4,
        train: cfg,
        ..FtdmpConfig::default()
    };

    let (mut servers, addrs) = spawn_servers(&train, 3);
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(2))
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&addrs)
        .expect("connect cluster");
    assert!(cluster.initial_failures().is_empty());

    // Round 1: every peer healthy.
    let r1 = cluster
        .ftdmp_fine_tune(&mut tuner, &ft, &mut rng)
        .expect("healthy round");
    assert_eq!(r1.peers_used, vec![0, 1, 2]);
    assert!(r1.failures.is_empty());
    assert_eq!(r1.report.examples, train.len());

    // Kill peer 2 (hard: sockets slammed, listener closed).
    let victim = servers.remove(2);
    victim.abort().expect("abort victim");

    // Round 2: the quorum of two completes; the corpse is reported, not
    // fatal.
    let r2 = cluster
        .ftdmp_fine_tune(&mut tuner, &ft, &mut rng)
        .expect("quorum round with a dead peer");
    assert_eq!(r2.peers_used, vec![0, 1]);
    assert_eq!(r2.failures.len(), 1, "failures: {:?}", r2.failures);
    let f = &r2.failures[0];
    assert_eq!(f.index, 2);
    assert!(
        matches!(f.error, RpcError::PeerUnavailable { .. }),
        "expected PeerUnavailable, got {:?}",
        f.error
    );
    assert!(r2.report.examples > 0 && r2.report.examples < train.len());

    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

#[test]
fn strict_surfaces_peer_unavailable() {
    let mut rng = StdRng::seed_from_u64(202);
    let train = dataset(&mut rng, 4, 20);
    let model = Mlp::new(&[16, 24, 16, 4], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let ft = FtdmpConfig {
        n_run: 1,
        epochs_per_run: 2,
        train: cfg,
        ..FtdmpConfig::default()
    };

    let (mut servers, addrs) = spawn_servers(&train, 2);
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Strict)
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&addrs)
        .expect("connect cluster");

    servers.remove(1).abort().expect("abort victim");

    let err = cluster
        .ftdmp_fine_tune(&mut tuner, &ft, &mut rng)
        .expect_err("strict must reject a dead peer");
    match err {
        ClusterError::Rejected { ok, failures, .. } => {
            assert_eq!(ok, 1);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].index, 1);
            assert!(
                matches!(failures[0].error, RpcError::PeerUnavailable { .. }),
                "expected PeerUnavailable, got {:?}",
                failures[0].error
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

#[test]
fn server_rejects_future_protocol_version() {
    let mut rng = StdRng::seed_from_u64(203);
    let train = dataset(&mut rng, 4, 4);
    let server = PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind server");
    let addr = server.local_addr();

    // A client from the future: the server must answer with a `Reject`
    // carrying *its* version, so the client can diagnose the skew.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    write_handshake(
        &mut raw,
        &Handshake::Hello {
            version: 99,
            features: 0,
        },
    )
    .expect("send hello");
    match read_handshake(&mut raw).expect("read refusal") {
        Handshake::Reject { version, reason } => {
            assert_eq!(version, PROTOCOL_VERSION);
            assert!(!reason.is_empty());
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    drop(raw);

    // The refusal must not poison the server: a well-versioned client
    // still gets a session.
    let mut c = RemotePipeStore::connect_with(addr, fast_opts()).expect("normal connect");
    c.describe().expect("describe");
    c.shutdown().expect("client shutdown");
    server.shutdown().expect("server drain");
}

#[test]
fn client_maps_version_skew_to_protocol_mismatch() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        match read_handshake(&mut s).expect("client hello") {
            Handshake::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
        write_handshake(
            &mut s,
            &Handshake::Reject {
                version: 7,
                reason: "too old".into(),
            },
        )
        .expect("send reject");
    });

    let err = RemotePipeStore::connect_with(addr, fast_opts().retries(1))
        .expect_err("version skew must fail the connect");
    match err {
        RpcError::ProtocolMismatch { ours, theirs } => {
            assert_eq!(ours, PROTOCOL_VERSION);
            assert_eq!(theirs, 7);
        }
        other => panic!("expected ProtocolMismatch, got {other:?}"),
    }
    fake.join().expect("fake server");
}

#[test]
fn session_cap_refusal_is_a_remote_error() {
    let mut rng = StdRng::seed_from_u64(204);
    let train = dataset(&mut rng, 4, 4);
    let server = PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    let first = RemotePipeStore::connect_with(addr, fast_opts()).expect("first session");
    let err = RemotePipeStore::connect_with(addr, fast_opts().retries(1))
        .expect_err("second session must be refused at cap 1");
    match err {
        // Same protocol version on both sides, so the refusal is
        // operational — not a version mismatch.
        RpcError::Remote { op, msg, .. } => {
            assert_eq!(op, "hello");
            assert!(msg.contains("session cap"), "unexpected reason: {msg}");
        }
        other => panic!("expected Remote refusal, got {other:?}"),
    }

    first.shutdown().expect("first session shutdown");
    server.shutdown().expect("server drain");
}

#[test]
fn quorum_wider_than_fleet_is_a_config_error() {
    let err = Cluster::builder()
        .policy(FailurePolicy::Quorum(3))
        .connect_options(fast_opts())
        .connect(&["127.0.0.1:1", "127.0.0.1:1"])
        .expect_err("quorum(3) over 2 peers must be rejected before connecting");
    assert!(
        matches!(err, ClusterError::Config(_)),
        "expected Config, got {err:?}"
    );
}

#[test]
fn placement_reroutes_dead_peers_shard_mid_sweep() {
    let mut rng = StdRng::seed_from_u64(206);
    let train = dataset(&mut rng, 5, 24);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let ft = FtdmpConfig {
        n_run: 2,
        epochs_per_run: 3,
        train: cfg,
        ..FtdmpConfig::default()
    };

    // Three stores, R = 2: each node's shard also lives on the replica
    // `shard_holders` ranks for it.
    let map = PlacementMap::new(&[0, 1, 2], 2).expect("placement map");
    let shards = train.shards(3);
    let mut servers = Vec::with_capacity(3);
    let mut addrs = Vec::with_capacity(3);
    for (i, shard) in shards.iter().enumerate() {
        let mut store = PipeStore::new(i, shard.clone());
        for node in 0..3u64 {
            if node != i as u64 && map.shard_holders(node).contains(&(i as u64)) {
                store.add_replica_shard(node, shards[node as usize].clone());
            }
        }
        let server = PipeStoreServer::bind(store, "127.0.0.1:0", ServerConfig::default())
            .expect("bind server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(2))
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&addrs)
        .expect("connect cluster");
    let fan = cluster.publish_placement(&map);
    assert!(fan.failures.is_empty());

    // Healthy sweep: every shard served by its owner, no reroutes.
    let r1 = cluster
        .ftdmp_fine_tune_with(&mut tuner, &ft, &mut rng, Some(&map))
        .expect("healthy sweep");
    assert_eq!(r1.report.examples, train.len());
    assert_eq!(r1.reroutes, 0);

    // Kill one of the two replicas and sweep again: the victim's shard
    // is extracted from its surviving replica every run, so not a
    // single shard assignment is dropped.
    let victim = 1usize;
    servers.remove(victim).abort().expect("abort victim");
    let r2 = cluster
        .ftdmp_fine_tune_with(&mut tuner, &ft, &mut rng, Some(&map))
        .expect("sweep with a dead replica");
    assert_eq!(
        r2.report.examples,
        train.len(),
        "dead peer's shard assignments were dropped"
    );
    assert_eq!(r2.reroutes, ft.n_run as u64, "one reroute per run");
    assert!(r2.failures.iter().any(|f| f.index == victim));

    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

/// A deterministic synthetic photo; regenerating it is the ground truth
/// for zero-loss checks.
fn photo(id: u64) -> PhotoRecord {
    let len = 96 + (id as usize % 32);
    PhotoRecord {
        id,
        class: (id % 4) as u32,
        day: (id % 7) as u32,
        preproc_bytes: 64,
        blob: vec![(id as u8).wrapping_mul(31).wrapping_add(7); len],
        sidecar: vec![(id as u8) ^ 0xa5; 24],
    }
}

fn assert_all_photos_readable(cluster: &Cluster, map: &PlacementMap, n_photos: u64) {
    for id in 0..n_photos {
        let rec = cluster
            .get_photo(map, id)
            .unwrap_or_else(|e| panic!("photo {id} lost: {e}"));
        assert_eq!(rec, photo(id), "photo {id} corrupted");
    }
}

/// Every live peer must hold exactly `expected` as its placement epoch;
/// the sequence of expectations is collected for a monotonicity check.
fn record_epochs(cluster: &Cluster, expected: u64, seen: &mut Vec<u64>) {
    let fan = cluster.placement();
    assert!(!fan.ok.is_empty(), "no peer answered the placement probe");
    for r in &fan.ok {
        assert_eq!(r.value.epoch(), expected, "peer {} lags", r.index);
    }
    seen.push(expected);
}

/// Boots an `n`-store fleet, publishes an R-way placement map and
/// replicates `n_photos` synthetic photos across it.
fn photo_fleet(
    n: usize,
    replicas: usize,
    n_photos: u64,
) -> (Vec<PipeStoreServer>, Vec<String>, PlacementMap, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(300);
    let train = dataset(&mut rng, 3, 4);
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for (i, shard) in train.shards(n).into_iter().enumerate() {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    let ids: Vec<u64> = (0..n as u64).collect();
    let map = PlacementMap::new(&ids, replicas).expect("placement map");
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(2))
        .connect_options(fast_opts())
        .connect(&addrs)
        .expect("connect cluster");
    let fan = cluster.publish_placement(&map);
    assert!(fan.failures.is_empty());
    for id in 0..n_photos {
        let fan = cluster.put_photo(&map, &photo(id));
        assert!(
            fan.failures.is_empty(),
            "replicated write failed: {:?}",
            fan.failures
        );
        assert_eq!(fan.ok.len(), replicas, "photo {id} under-replicated");
    }
    assert_all_photos_readable(&cluster, &map, n_photos);
    let epochs = vec![map.epoch()];
    cluster.shutdown();
    (servers, addrs, map, epochs)
}

/// One kill → rebalance → restart → rejoin → rebalance cycle, asserting
/// zero photo loss at every step and that the rejoined peer serves
/// reads afterwards.
fn kill_restart_rejoin_cycle(
    servers: &mut Vec<PipeStoreServer>,
    addrs: &mut [String],
    map: &mut PlacementMap,
    victim: usize,
    n_photos: u64,
    epochs: &mut Vec<u64>,
) {
    let pace = RebalanceConfig {
        max_bytes_per_wave: 4096,
        wave_pause: Duration::ZERO,
    };

    // Kill the victim hard; its address now refuses connections.
    servers.remove(victim).abort().expect("abort victim");
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(2))
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&*addrs)
        .expect("connect with a dead peer");
    let old = map.clone();
    map.mark_down(victim as u64).expect("mark down");
    let report = cluster
        .rebalance(&old, map, &pace)
        .expect("rebalance after kill");
    assert!(report.photos_copied > 0, "kill must trigger backfill");
    assert!(report.bytes_copied > 0);
    assert_all_photos_readable(&cluster, map, n_photos);
    record_epochs(&cluster, map.epoch(), epochs);
    cluster.shutdown();

    // Restart the victim on a fresh port with an empty store (the
    // crash wiped it), then rejoin and heal.
    let mut rng = StdRng::seed_from_u64(victim as u64 + 77);
    let train = dataset(&mut rng, 3, 4);
    let server = PipeStoreServer::bind(
        PipeStore::new(victim, train),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("rebind victim");
    addrs[victim] = server.local_addr().to_string();
    servers.insert(victim, server);
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(2))
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&*addrs)
        .expect("reconnect full fleet");
    assert!(cluster.initial_failures().is_empty());
    let old = map.clone();
    map.mark_up(victim as u64).expect("mark up");
    let report = cluster
        .rebalance(&old, map, &pace)
        .expect("rebalance after rejoin");
    assert!(
        report.photos_copied > 0,
        "rejoin must backfill the wiped store"
    );
    assert_all_photos_readable(&cluster, map, n_photos);
    record_epochs(&cluster, map.epoch(), epochs);
    cluster.shutdown();

    // The rejoined peer serves reads for its shard directly.
    let rejoined = servers
        .get(victim)
        .map(|s| s.local_addr())
        .expect("rejoined server present");
    let mut direct = RemotePipeStore::connect_with(rejoined, fast_opts()).expect("connect rejoined");
    let held = direct.list_photos().expect("list photos");
    assert!(
        !held.is_empty(),
        "rejoined peer holds no photos after rebalance"
    );
    for id in held.iter().take(3) {
        let rec = direct.get_photo(*id).expect("read from rejoined peer");
        assert_eq!(rec, photo(*id), "rejoined peer serves a corrupt photo");
    }
    direct.shutdown().expect("direct session shutdown");
}

#[test]
fn kill_restart_rejoin_loses_no_photos() {
    const N_PHOTOS: u64 = 30;
    let (mut servers, mut addrs, mut map, mut epochs) = photo_fleet(3, 2, N_PHOTOS);
    kill_restart_rejoin_cycle(&mut servers, &mut addrs, &mut map, 1, N_PHOTOS, &mut epochs);
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "placement epochs not monotone: {epochs:?}"
    );
    for s in servers {
        s.shutdown().expect("server drain");
    }
    // Under `--cfg ndpipe_sanitize` the lock-order witness panics on any
    // inversion, so reaching this point means zero violations — but only
    // if the witnesses actually ran.
    #[cfg(ndpipe_sanitize)]
    assert!(
        ndpipe::sanitize::checks_performed() > 0,
        "sanitizer build ran the failover cycle without a single witness check"
    );
}

/// Rejoin soak: cycle the kill → restart → rejoin loop over every node;
/// run via `scripts/check.sh` (`cargo test ... -- --ignored`).
#[test]
#[ignore = "rejoin soak, run explicitly"]
fn soak_kill_restart_rejoin_every_node() {
    const N_PHOTOS: u64 = 30;
    let (mut servers, mut addrs, mut map, mut epochs) = photo_fleet(3, 2, N_PHOTOS);
    for cycle in 0..3 {
        kill_restart_rejoin_cycle(&mut servers, &mut addrs, &mut map, cycle, N_PHOTOS, &mut epochs);
    }
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "placement epochs not monotone: {epochs:?}"
    );
    for s in servers {
        s.shutdown().expect("server drain");
    }
    #[cfg(ndpipe_sanitize)]
    assert!(
        ndpipe::sanitize::checks_performed() > 0,
        "sanitizer build ran the rejoin soak without a single witness check"
    );
}

/// Stress smoke for the multi-session server; run via `scripts/check.sh`
/// (`cargo test ... -- --ignored`).
#[test]
#[ignore = "stress smoke, run explicitly"]
fn stress_eight_concurrent_sessions() {
    let mut rng = StdRng::seed_from_u64(205);
    let train = dataset(&mut rng, 4, 12);
    let model = Mlp::new(&[16, 12, 4], 1, &mut rng);
    let server = PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind server");
    let addr = server.local_addr();

    let mut joins = Vec::new();
    for _ in 0..8 {
        let m = model.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = RemotePipeStore::connect(addr).expect("connect");
            c.install_model(&m).expect("install");
            for run in 0..4u32 {
                c.extract_features(run % 2, 2).expect("extract");
                c.describe().expect("describe");
            }
            c.shutdown().expect("client shutdown");
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    // The client's `shutdown()` doesn't wait for the server-side session
    // thread to retire, so drain before counting.
    assert!(
        server.wait_idle_timeout(8, Duration::from_secs(10)),
        "server did not drain 8 sessions"
    );
    assert_eq!(server.completed_sessions(), 8);
    assert_eq!(server.active_sessions(), 0);
    server.shutdown().expect("server drain");
}
