//! Cluster failover semantics against real localhost sockets: killed
//! peers under `Quorum` vs `Strict`, structured handshake refusals, the
//! session cap, and (ignored by default) a concurrent-session stress run.

use dnn::{Mlp, TrainConfig};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::rpc::wire::{read_handshake, write_handshake, Handshake, PROTOCOL_VERSION};
use ndpipe::rpc::{
    Cluster, ClusterError, ConnectOptions, FailurePolicy, PipeStoreServer, RemotePipeStore,
    RpcError, ServerConfig,
};
use ndpipe::{PipeStore, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn dataset(rng: &mut StdRng, classes: usize, per_class: usize) -> LabeledDataset {
    let u = ClassUniverse::new(16, 8, classes, 0.3, rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..per_class {
            rows.push(u.sample(c, rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, classes)
}

/// Boots `n` PipeStore servers on ephemeral ports, one shard each.
fn spawn_servers(train: &LabeledDataset, n: usize) -> (Vec<PipeStoreServer>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for (i, shard) in train.shards(n).into_iter().enumerate() {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

/// Low-latency retry settings so dead-peer probes don't slow the test.
fn fast_opts() -> ConnectOptions {
    ConnectOptions::new()
        .retries(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(5))
}

#[test]
fn quorum_survives_killed_peer() {
    let mut rng = StdRng::seed_from_u64(201);
    let train = dataset(&mut rng, 5, 30);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let ft = FtdmpConfig {
        n_run: 1,
        epochs_per_run: 4,
        train: cfg,
    };

    let (mut servers, addrs) = spawn_servers(&train, 3);
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(2))
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&addrs)
        .expect("connect cluster");
    assert!(cluster.initial_failures().is_empty());

    // Round 1: every peer healthy.
    let r1 = cluster
        .ftdmp_fine_tune(&mut tuner, &ft, &mut rng)
        .expect("healthy round");
    assert_eq!(r1.peers_used, vec![0, 1, 2]);
    assert!(r1.failures.is_empty());
    assert_eq!(r1.report.examples, train.len());

    // Kill peer 2 (hard: sockets slammed, listener closed).
    let victim = servers.remove(2);
    victim.abort().expect("abort victim");

    // Round 2: the quorum of two completes; the corpse is reported, not
    // fatal.
    let r2 = cluster
        .ftdmp_fine_tune(&mut tuner, &ft, &mut rng)
        .expect("quorum round with a dead peer");
    assert_eq!(r2.peers_used, vec![0, 1]);
    assert_eq!(r2.failures.len(), 1, "failures: {:?}", r2.failures);
    let f = &r2.failures[0];
    assert_eq!(f.index, 2);
    assert!(
        matches!(f.error, RpcError::PeerUnavailable { .. }),
        "expected PeerUnavailable, got {:?}",
        f.error
    );
    assert!(r2.report.examples > 0 && r2.report.examples < train.len());

    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

#[test]
fn strict_surfaces_peer_unavailable() {
    let mut rng = StdRng::seed_from_u64(202);
    let train = dataset(&mut rng, 4, 20);
    let model = Mlp::new(&[16, 24, 16, 4], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let ft = FtdmpConfig {
        n_run: 1,
        epochs_per_run: 2,
        train: cfg,
    };

    let (mut servers, addrs) = spawn_servers(&train, 2);
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Strict)
        .connect_options(fast_opts())
        .op_attempts(2)
        .connect(&addrs)
        .expect("connect cluster");

    servers.remove(1).abort().expect("abort victim");

    let err = cluster
        .ftdmp_fine_tune(&mut tuner, &ft, &mut rng)
        .expect_err("strict must reject a dead peer");
    match err {
        ClusterError::Rejected { ok, failures, .. } => {
            assert_eq!(ok, 1);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].index, 1);
            assert!(
                matches!(failures[0].error, RpcError::PeerUnavailable { .. }),
                "expected PeerUnavailable, got {:?}",
                failures[0].error
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

#[test]
fn server_rejects_future_protocol_version() {
    let mut rng = StdRng::seed_from_u64(203);
    let train = dataset(&mut rng, 4, 4);
    let server = PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind server");
    let addr = server.local_addr();

    // A client from the future: the server must answer with a `Reject`
    // carrying *its* version, so the client can diagnose the skew.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    write_handshake(
        &mut raw,
        &Handshake::Hello {
            version: 99,
            features: 0,
        },
    )
    .expect("send hello");
    match read_handshake(&mut raw).expect("read refusal") {
        Handshake::Reject { version, reason } => {
            assert_eq!(version, PROTOCOL_VERSION);
            assert!(!reason.is_empty());
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    drop(raw);

    // The refusal must not poison the server: a well-versioned client
    // still gets a session.
    let mut c = RemotePipeStore::connect_with(addr, fast_opts()).expect("normal connect");
    c.describe().expect("describe");
    c.shutdown().expect("client shutdown");
    server.shutdown().expect("server drain");
}

#[test]
fn client_maps_version_skew_to_protocol_mismatch() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        match read_handshake(&mut s).expect("client hello") {
            Handshake::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
        write_handshake(
            &mut s,
            &Handshake::Reject {
                version: 7,
                reason: "too old".into(),
            },
        )
        .expect("send reject");
    });

    let err = RemotePipeStore::connect_with(addr, fast_opts().retries(1))
        .expect_err("version skew must fail the connect");
    match err {
        RpcError::ProtocolMismatch { ours, theirs } => {
            assert_eq!(ours, PROTOCOL_VERSION);
            assert_eq!(theirs, 7);
        }
        other => panic!("expected ProtocolMismatch, got {other:?}"),
    }
    fake.join().expect("fake server");
}

#[test]
fn session_cap_refusal_is_a_remote_error() {
    let mut rng = StdRng::seed_from_u64(204);
    let train = dataset(&mut rng, 4, 4);
    let server = PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    let first = RemotePipeStore::connect_with(addr, fast_opts()).expect("first session");
    let err = RemotePipeStore::connect_with(addr, fast_opts().retries(1))
        .expect_err("second session must be refused at cap 1");
    match err {
        // Same protocol version on both sides, so the refusal is
        // operational — not a version mismatch.
        RpcError::Remote { op, msg, .. } => {
            assert_eq!(op, "hello");
            assert!(msg.contains("session cap"), "unexpected reason: {msg}");
        }
        other => panic!("expected Remote refusal, got {other:?}"),
    }

    first.shutdown().expect("first session shutdown");
    server.shutdown().expect("server drain");
}

/// Stress smoke for the multi-session server; run via `scripts/check.sh`
/// (`cargo test ... -- --ignored`).
#[test]
#[ignore = "stress smoke, run explicitly"]
fn stress_eight_concurrent_sessions() {
    let mut rng = StdRng::seed_from_u64(205);
    let train = dataset(&mut rng, 4, 12);
    let model = Mlp::new(&[16, 12, 4], 1, &mut rng);
    let server = PipeStoreServer::bind(
        PipeStore::new(0, train),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind server");
    let addr = server.local_addr();

    let mut joins = Vec::new();
    for _ in 0..8 {
        let m = model.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = RemotePipeStore::connect(addr).expect("connect");
            c.install_model(&m).expect("install");
            for run in 0..4u32 {
                c.extract_features(run % 2, 2).expect("extract");
                c.describe().expect("describe");
            }
            c.shutdown().expect("client shutdown");
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    // The client's `shutdown()` doesn't wait for the server-side session
    // thread to retire, so drain before counting.
    assert!(
        server.wait_idle_timeout(8, Duration::from_secs(10)),
        "server did not drain 8 sessions"
    );
    assert_eq!(server.completed_sessions(), 8);
    assert_eq!(server.active_sessions(), 0);
    server.shutdown().expect("server drain");
}
