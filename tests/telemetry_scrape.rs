//! Tuner-side telemetry scraping over real sockets: PipeStore servers on
//! localhost, a client pulling `Metrics` snapshots and merging them into
//! one cluster-wide view.

use dnn::Mlp;
use ndpipe::rpc::{Cluster, PipeStoreServer, RemotePipeStore, ServerConfig};
use ndpipe::PipeStore;
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(rng: &mut StdRng, classes: usize, per_class: usize) -> LabeledDataset {
    let u = ClassUniverse::new(16, 8, classes, 0.3, rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..per_class {
            rows.push(u.sample(c, rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, classes)
}

/// Spawns `n` PipeStore servers on ephemeral localhost ports and returns
/// connected clients plus the server handles.
fn spawn_fleet(train: &LabeledDataset, n: usize) -> (Vec<RemotePipeStore>, Vec<PipeStoreServer>) {
    let mut clients = Vec::with_capacity(n);
    let mut servers = Vec::with_capacity(n);
    for (i, shard) in train.shards(n).into_iter().enumerate() {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind server");
        clients.push(RemotePipeStore::connect(server.local_addr().to_string()).expect("connect"));
        servers.push(server);
    }
    (clients, servers)
}

#[test]
fn single_store_scrape_round_trips_server_side_metrics() {
    let mut rng = StdRng::seed_from_u64(301);
    let train = dataset(&mut rng, 4, 8);
    let (mut clients, servers) = spawn_fleet(&train, 1);

    // Generate some server-side activity, then scrape it back.
    clients[0].describe().expect("describe");
    clients[0].describe().expect("describe");
    let snapshot = clients[0].scrape().expect("scrape");

    assert!(!snapshot.is_empty(), "server registry came back empty");
    let describes = snapshot
        .find_with("ndpipe_rpc_server_requests_total", &[("op", "describe")])
        .expect("describe counter present");
    match describes.value {
        telemetry::SampleValue::Counter(n) => assert_eq!(n, 2),
        ref other => panic!("expected counter, got {}", other.kind()),
    }
    // Latency histograms came across the wire with their observations.
    let lat = snapshot
        .find_with("ndpipe_rpc_server_op_seconds", &[("op", "describe")])
        .expect("latency histogram present");
    match lat.value {
        telemetry::SampleValue::Histogram(ref h) => assert_eq!(h.count, 2),
        ref other => panic!("expected histogram, got {}", other.kind()),
    }

    for c in clients {
        c.shutdown().expect("shutdown");
    }
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

#[test]
fn cluster_scrape_merges_metrics_from_two_live_servers() {
    let mut rng = StdRng::seed_from_u64(302);
    let train = dataset(&mut rng, 4, 16);
    let model = Mlp::new(&[16, 24, 4], 1, &mut rng);
    let (mut clients, servers) = spawn_fleet(&train, 2);

    // Drive real work on both stores so their registries diverge from
    // empty: a model install plus one feature-extraction round each.
    for c in &mut clients {
        c.install_model(&model).expect("install model");
        let (features, labels) = c.extract_features(0, 1).expect("extract");
        assert_eq!(features.dims()[0], labels.len());
    }

    let fleet = Cluster::builder().adopt(clients).expect("adopt fleet");
    let cluster = fleet.scrape_metrics().expect("cluster scrape");
    assert_eq!(cluster.per_peer.len(), 2, "expected two scraped peers");
    let addrs: Vec<String> = cluster
        .per_peer
        .iter()
        .map(|(a, s)| {
            assert!(!s.is_empty(), "peer {a} returned an empty registry");
            a.to_string()
        })
        .collect();
    assert_ne!(addrs[0], addrs[1], "peers must be distinct sockets");

    // The blind merge sums the fleet: each server saw one install, one
    // extract, and the metrics request itself.
    let installs = cluster
        .merged
        .counter_value("ndpipe_rpc_server_requests_total")
        .expect("request counter in merged view");
    assert!(installs >= 6, "merged request total too small: {installs}");

    // The labelled merge keeps per-peer resolution: every peer address
    // shows up as a label value on the request counter.
    let labelled = cluster.merged_labelled();
    for addr in &addrs {
        assert!(
            labelled.samples.iter().any(|s| {
                s.name == "ndpipe_rpc_server_requests_total"
                    && s.labels.iter().any(|(k, v)| k == "peer" && v == addr)
            }),
            "peer {addr} missing from labelled merge"
        );
    }

    // And the merged view survives both exporters.
    let json = labelled.to_json();
    telemetry::export::validate_json(&json).expect("merged snapshot JSON");
    assert!(labelled
        .to_prometheus()
        .contains("ndpipe_rpc_server_requests_total"));

    let fan = fleet.shutdown();
    assert!(fan.failures.is_empty());
    for s in servers {
        s.shutdown().expect("server drain");
    }
}
