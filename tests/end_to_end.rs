//! End-to-end integration tests spanning all crates: a full NDPipe
//! lifecycle over drifting synthetic photos.

use ndpipe::system::{NdPipeSystem, SystemConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn boot(seed: u64, pool: usize) -> (NdPipeSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let system = NdPipeSystem::bootstrap(
        SystemConfig {
            initial_pool: pool,
            ..SystemConfig::small_test()
        },
        DatasetSpec::tiny(),
        &mut rng,
    );
    (system, rng)
}

#[test]
fn month_long_lifecycle_keeps_invariants() {
    let (mut system, mut rng) = boot(1, 400);
    for day in 1..=28 {
        system.advance_day(&mut rng);
        // Label DB always covers the whole pool.
        assert_eq!(system.labeldb().len(), system.scenario().pool_size());
        // Shards always partition the pool.
        let sharded: usize = system.stores().iter().map(|s| s.shard_len()).sum();
        assert_eq!(sharded, system.scenario().pool_size());
        if day % 14 == 0 {
            let outcome = system.fine_tune(&mut rng);
            assert!(outcome.final_accuracy.top1.is_finite());
            // Model version advanced once per pipeline run.
            assert!(system.tuner().version() > 0);
            let relabel = system.offline_relabel();
            assert_eq!(relabel.examined, system.scenario().pool_size());
        }
    }
    // After a maintained month the model still works on today's data.
    let acc = system.evaluate(&mut rng).top1;
    assert!(acc > 0.4, "maintained model collapsed to {acc}");
}

#[test]
fn continuous_fine_tuning_beats_staleness() {
    let (mut system, mut rng) = boot(2, 500);
    let frozen = system.model().clone();
    for _ in 0..21 {
        system.advance_day(&mut rng);
    }
    system.fine_tune(&mut rng);
    let test = system.scenario().test_set(&mut rng);
    let maintained = dnn::Trainer::evaluate(system.model(), &test).top1;
    let outdated = dnn::Trainer::evaluate(&frozen, &test).top1;
    assert!(
        maintained > outdated - 0.02,
        "maintained {maintained:.3} vs outdated {outdated:.3}"
    );
}

#[test]
fn offline_relabel_improves_or_preserves_label_db() {
    let (mut system, mut rng) = boot(3, 500);
    for _ in 0..14 {
        system.advance_day(&mut rng);
    }
    system.fine_tune(&mut rng);
    let before = system.label_accuracy();
    let stats = system.offline_relabel();
    let after = system.label_accuracy();
    assert!(stats.examined > 0);
    assert!(
        after >= before - 0.02,
        "label DB degraded: {before} -> {after}"
    );
}

#[test]
fn model_versions_are_monotonic_and_stores_track_master() {
    let (mut system, mut rng) = boot(4, 400);
    let v0 = system.tuner().version();
    system.fine_tune(&mut rng);
    let v1 = system.tuner().version();
    assert!(v1 > v0);
    // Every store's replica agrees with the master on a probe batch.
    let probe = system.scenario().test_set(&mut rng);
    let x = probe.features().row(0);
    let x = x.reshape(&[1, x.len()]).expect("row");
    let master = system.model().forward(&x);
    for store in system.stores() {
        let replica = store.model().expect("installed").forward(&x);
        for (a, b) in master.data().iter().zip(replica.data()) {
            assert!((a - b).abs() < 0.05, "replica drifted: {a} vs {b}");
        }
    }
}

#[test]
fn physical_photo_path_round_trips() {
    let (system, _) = boot(5, 300);
    for store in system.stores() {
        for stored in store.photos() {
            let decompressed =
                ndpipe_data::deflate::decompress(&stored.compressed_binary).expect("valid");
            assert_eq!(decompressed.len(), stored.preproc_bytes);
            // Photos carry JPEG-like magic.
            assert_eq!(&stored.photo.blob[..2], &[0xFF, 0xD8]);
        }
    }
}
