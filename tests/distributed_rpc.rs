//! True distributed execution: PipeStore servers on localhost sockets,
//! a Tuner client driving FT-DMP and offline inference over TCP.

use dnn::{Mlp, TrainConfig, Trainer};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::rpc::{Cluster, PipeStoreServer, RemotePipeStore, ServerConfig};
use ndpipe::{PipeStore, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn dataset(rng: &mut StdRng, classes: usize, per_class: usize) -> (LabeledDataset, LabeledDataset) {
    let u = ClassUniverse::new(16, 8, classes, 0.3, rng);
    let make = |u: &ClassUniverse, rng: &mut StdRng, n: usize| {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..u.classes() {
            for _ in 0..n {
                rows.push(u.sample(c, rng));
                labels.push(c);
            }
        }
        LabeledDataset::new(rows, labels, u.classes())
    };
    (make(&u, rng, per_class), make(&u, rng, per_class / 2))
}

/// Spawns `n` PipeStore servers on ephemeral localhost ports and returns
/// connected clients plus the server handles.
fn spawn_fleet(train: &LabeledDataset, n: usize) -> (Vec<RemotePipeStore>, Vec<PipeStoreServer>) {
    let mut clients = Vec::with_capacity(n);
    let mut servers = Vec::with_capacity(n);
    for (i, shard) in train.shards(n).into_iter().enumerate() {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind server");
        clients.push(RemotePipeStore::connect(server.local_addr().to_string()).expect("connect"));
        servers.push(server);
    }
    (clients, servers)
}

#[test]
fn distributed_fine_tune_over_sockets_learns() {
    let mut rng = StdRng::seed_from_u64(101);
    let (train, test) = dataset(&mut rng, 5, 30);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let before = Trainer::evaluate(tuner.model(), &test).top1;

    let (clients, servers) = spawn_fleet(&train, 3);
    let cluster = Cluster::builder().adopt(clients).expect("adopt fleet");
    let outcome = cluster
        .ftdmp_fine_tune(
            &mut tuner,
            &FtdmpConfig {
                n_run: 2,
                epochs_per_run: 12,
                train: cfg,
                ..FtdmpConfig::default()
            },
            &mut rng,
        )
        .expect("distributed fine-tune");
    assert!(outcome.failures.is_empty());
    assert_eq!(outcome.peers_used, vec![0, 1, 2]);
    let report = outcome.report;

    // Offline inference over the wire: labels only. Recover the
    // per-peer handles for the direct calls.
    let mut clients = cluster.into_remotes();
    let mut total_labels = 0;
    for c in &mut clients {
        // No photos stored, so zero labels — but the call round-trips.
        total_labels += c.offline_infer().expect("offline infer").len();
    }
    assert_eq!(total_labels, 0);

    for c in clients {
        c.shutdown().expect("shutdown");
    }
    let stores: Vec<PipeStore> = servers
        .into_iter()
        .map(|s| s.shutdown().expect("server drain"))
        .collect();

    let after = Trainer::evaluate(tuner.model(), &test).top1;
    assert!(
        after > before + 0.2,
        "distributed tuning failed: {before:.3} -> {after:.3}"
    );
    assert_eq!(report.examples, train.len());
    assert!(report.feature_bytes > 0);

    // Every remote replica ended close to the master (8-bit delta
    // quantization compounds through two classifier layers, so allow a
    // small tolerance relative to logit scale).
    let x = Tensor::randn(&[4, 16], &mut rng);
    let master = tuner.model().forward(&x);
    for s in stores {
        let replica = s.model().expect("model installed").forward(&x);
        for (a, b) in master.data().iter().zip(replica.data()) {
            assert!((a - b).abs() < 0.15, "replica drifted: {a} vs {b}");
        }
        // And they agree on predictions.
        assert_eq!(master.argmax(), replica.argmax());
    }
}

#[test]
fn distributed_matches_local_ftdmp() {
    let mut rng = StdRng::seed_from_u64(102);
    let (train, test) = dataset(&mut rng, 4, 30);
    let model = Mlp::new(&[16, 24, 16, 4], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let ft = FtdmpConfig {
        n_run: 1,
        epochs_per_run: 10,
        train: cfg,
        ..FtdmpConfig::default()
    };

    // Local threads.
    let mut local_tuner = Tuner::new(model.clone(), cfg);
    let mut local_stores: Vec<PipeStore> = train
        .shards(2)
        .into_iter()
        .enumerate()
        .map(|(i, s)| PipeStore::new(i, s))
        .collect();
    ndpipe::ftdmp_fine_tune(&mut local_tuner, &mut local_stores, &ft, &mut rng)
        .expect("valid FT-DMP job");
    let local_acc = Trainer::evaluate(local_tuner.model(), &test).top1;

    // Sockets.
    let mut remote_tuner = Tuner::new(model, cfg);
    let (clients, servers) = spawn_fleet(&train, 2);
    let cluster = Cluster::builder().adopt(clients).expect("adopt fleet");
    cluster
        .ftdmp_fine_tune(&mut remote_tuner, &ft, &mut rng)
        .expect("remote fine-tune");
    let fan = cluster.shutdown();
    assert!(fan.failures.is_empty());
    for s in servers {
        s.shutdown().expect("server drain");
    }
    let remote_acc = Trainer::evaluate(remote_tuner.model(), &test).top1;

    assert!(
        (local_acc - remote_acc).abs() < 0.15,
        "local {local_acc:.3} vs remote {remote_acc:.3}"
    );
}

#[test]
fn remote_errors_surface_cleanly() {
    let mut rng = StdRng::seed_from_u64(103);
    let (train, _) = dataset(&mut rng, 4, 10);
    // Model with a *narrower* label space than the shards: the remote
    // check must reject it before any bytes of model move.
    let model = Mlp::new(&[16, 12, 3], 1, &mut rng);
    let cfg = TrainConfig::default();
    let mut tuner = Tuner::new(model, cfg);
    let (clients, servers) = spawn_fleet(&train, 1);
    let cluster = Cluster::builder().adopt(clients).expect("adopt fleet");
    let result = cluster.ftdmp_fine_tune(
        &mut tuner,
        &FtdmpConfig {
            n_run: 1,
            epochs_per_run: 1,
            train: cfg,
            ..FtdmpConfig::default()
        },
        &mut rng,
    );
    assert!(result.is_err(), "should refuse wider label space");
    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}
