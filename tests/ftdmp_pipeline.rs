//! Pipelined FT-DMP over real localhost sockets: the `S = 0` oracle
//! (bit-for-bit equal to the run-at-a-time schedule), a bounded-staleness
//! sanity run, and (ignored by default) the slow-peer soak where a
//! deliberately delayed store's micro-batches get stolen by its replica.

use dnn::{Mlp, TrainConfig, Trainer};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::rpc::{Cluster, ConnectOptions, FailurePolicy, PipeStoreServer, ServerConfig};
use ndpipe::{PipeStore, PlacementMap, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn sample(u: &ClassUniverse, rng: &mut StdRng, classes: usize, per_class: usize) -> LabeledDataset {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..per_class {
            rows.push(u.sample(c, rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, classes)
}

fn dataset(rng: &mut StdRng, classes: usize, per_class: usize) -> (ClassUniverse, LabeledDataset) {
    let u = ClassUniverse::new(16, 8, classes, 0.3, rng);
    let data = sample(&u, rng, classes, per_class);
    (u, data)
}

/// Boots one PipeStore server per shard; `slow` nodes sleep `delay` per
/// extracted row, and with `replicas > 1` every node also carries the
/// replica shards the placement map assigns it.
fn spawn_fleet(
    shards: &[LabeledDataset],
    map: Option<&PlacementMap>,
    slow: &[(usize, Duration)],
) -> (Vec<PipeStoreServer>, Vec<String>) {
    let mut servers = Vec::with_capacity(shards.len());
    let mut addrs = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let mut store = PipeStore::new(i, shard.clone());
        if let Some(map) = map {
            for node in 0..shards.len() as u64 {
                if node != i as u64 && map.shard_holders(node).contains(&(i as u64)) {
                    store.add_replica_shard(node, shards[node as usize].clone());
                }
            }
        }
        if let Some(&(_, delay)) = slow.iter().find(|(n, _)| *n == i) {
            store.set_extract_delay(Some(delay));
        }
        let server = PipeStoreServer::bind(store, "127.0.0.1:0", ServerConfig::default())
            .expect("bind server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

fn fast_opts() -> ConnectOptions {
    ConnectOptions::new()
        .retries(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(5))
}

fn connect(addrs: &[String]) -> Cluster {
    let addrs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    Cluster::builder()
        .connect_options(fast_opts())
        .connect(&addrs)
        .expect("connect cluster")
}

fn drain(cluster: Cluster, servers: Vec<PipeStoreServer>) {
    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }
}

/// `S = 0` is the oracle: the pipelined schedule must reproduce the
/// run-at-a-time barrier schedule *bit for bit* — same per-run losses,
/// same example counts, same final weights — even though every run is
/// split into micro-batches and streamed.
#[test]
fn pipelined_s0_is_bit_identical_to_run_at_a_time() {
    let mut rng = StdRng::seed_from_u64(301);
    let (_u, train) = dataset(&mut rng, 5, 24);
    let shards = train.shards(3);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let ft = FtdmpConfig {
        n_run: 2,
        epochs_per_run: 4,
        micro_batch: 3,
        staleness: 0,
        train: cfg,
    };
    let rounds = 2;

    // Reference: `rounds` sequential run-at-a-time jobs.
    let mut ref_tuner = Tuner::new(model.clone(), cfg);
    let mut ref_rng = StdRng::seed_from_u64(777);
    let (servers, addrs) = spawn_fleet(&shards, None, &[]);
    let cluster = connect(&addrs);
    let mut ref_losses = Vec::new();
    let mut ref_examples = 0;
    for _ in 0..rounds {
        let out = cluster
            .ftdmp_fine_tune_with(&mut ref_tuner, &ft, &mut ref_rng, None)
            .expect("reference round");
        assert!(out.failures.is_empty());
        ref_losses.extend(out.report.run_losses);
        ref_examples += out.report.examples;
    }
    drain(cluster, servers);

    // Pipelined, staleness 0, same seeds, fresh identical fleet.
    let mut pipe_tuner = Tuner::new(model, cfg);
    let mut pipe_rng = StdRng::seed_from_u64(777);
    let (servers, addrs) = spawn_fleet(&shards, None, &[]);
    let cluster = connect(&addrs);
    let out = cluster
        .ftdmp_fine_tune_pipelined(&mut pipe_tuner, &ft, rounds, &mut pipe_rng, None)
        .expect("pipelined job");
    drain(cluster, servers);

    assert!(out.failures.is_empty(), "{:?}", out.failures);
    assert_eq!(out.report.run_losses, ref_losses, "losses diverged");
    assert_eq!(out.report.examples, ref_examples);
    assert_eq!(
        pipe_tuner.model().to_bytes(),
        ref_tuner.model().to_bytes(),
        "final weights diverged"
    );
    assert_eq!(
        out.report.schedule.stale_steps, 0,
        "S = 0 must never extract ahead of training"
    );
    assert!(
        out.report.schedule.micro_batches >= (rounds * ft.n_run * shards.len()) as usize,
        "runs were not split into micro-batches: {:?}",
        out.report.schedule
    );
}

/// Bounded staleness `S = 1`: still trains every example of every round
/// and ends up with a usable model — the relaxed schedule changes
/// *when* features arrive, never *which* features.
#[test]
fn pipelined_s1_trains_every_example() {
    let mut rng = StdRng::seed_from_u64(302);
    let (universe, train) = dataset(&mut rng, 5, 24);
    let shards = train.shards(3);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let ft = FtdmpConfig {
        n_run: 2,
        epochs_per_run: 6,
        staleness: 1,
        train: cfg,
        ..FtdmpConfig::default()
    };
    let rounds = 2;

    let (servers, addrs) = spawn_fleet(&shards, None, &[]);
    let cluster = connect(&addrs);
    let mut tuner = Tuner::new(model, cfg);
    let out = cluster
        .ftdmp_fine_tune_pipelined(&mut tuner, &ft, rounds, &mut rng, None)
        .expect("pipelined job");
    drain(cluster, servers);

    assert!(out.failures.is_empty(), "{:?}", out.failures);
    assert_eq!(out.report.examples, rounds * train.len());
    assert_eq!(out.report.run_losses.len(), rounds * ft.n_run);
    let test = sample(&universe, &mut rng, 5, 20);
    let acc = Trainer::evaluate(tuner.model(), &test).top1;
    assert!(acc > 0.5, "model failed to converge: top1 {acc}");
}

/// Slow-peer soak (ignored by default; `check.sh` runs it): one store
/// sleeps on every extraction, so under `S = 1` its replica must steal
/// at least one of its micro-batches, and the job still converges.
#[test]
#[ignore = "slow-peer soak; run explicitly or via check.sh"]
fn slow_peer_soak_steals_work_and_converges() {
    let mut rng = StdRng::seed_from_u64(303);
    let (universe, train) = dataset(&mut rng, 5, 32);
    let shards = train.shards(4);
    let model = Mlp::new(&[16, 24, 16, 5], 2, &mut rng);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let ft = FtdmpConfig {
        n_run: 3,
        epochs_per_run: 6,
        micro_batch: 4,
        staleness: 1,
        train: cfg,
    };
    let rounds = 3;

    let map = PlacementMap::new(&[0, 1, 2, 3], 2).expect("placement map");
    let (servers, addrs) = spawn_fleet(&shards, Some(&map), &[(0, Duration::from_millis(1))]);
    let addrs_ref: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(3))
        .connect_options(fast_opts())
        .connect(&addrs_ref)
        .expect("connect cluster");
    let fan = cluster.publish_placement(&map);
    assert!(fan.failures.is_empty());

    let mut tuner = Tuner::new(model, cfg);
    let out = cluster
        .ftdmp_fine_tune_pipelined(&mut tuner, &ft, rounds, &mut rng, Some(&map))
        .expect("pipelined job");
    drain(cluster, servers);

    assert!(out.failures.is_empty(), "{:?}", out.failures);
    assert_eq!(out.report.examples, rounds * train.len());
    assert!(
        out.report.schedule.steals >= 1,
        "the slow store was never robbed: {:?}",
        out.report.schedule
    );
    let test = sample(&universe, &mut rng, 5, 20);
    let acc = Trainer::evaluate(tuner.model(), &test).top1;
    assert!(acc > 0.5, "model failed to converge: top1 {acc}");
}
