//! Integration tests pinning the paper's headline quantitative claims
//! (as *shapes*: who wins, by roughly what factor, where crossovers sit).

use cluster::energy::{inference_energy, srv_training_energy, training_energy};
use cluster::inference::{inference_report, InferenceSetup, InferenceVariant};
use cluster::training::{srv_training_report, training_report, TrainSetup};
use dnn::ModelProfile;
use hw::LinkSpec;
use ndpipe::apo::{best_organization, ApoInput};

/// Abstract §1: "1.39× higher inference throughput ... given the same
/// energy budget" — NDPipe at matched SRV-C throughput is meaningfully
/// more power-efficient.
#[test]
fn headline_inference_efficiency() {
    let mut gains = Vec::new();
    for model in ModelProfile::figure_models() {
        let srv = inference_report(
            InferenceVariant::SrvCompressed,
            &InferenceSetup::paper_default(model.clone(), 4),
        );
        let n = (1..=40)
            .find(|&n| {
                inference_report(
                    InferenceVariant::NdPipe,
                    &InferenceSetup::paper_default(model.clone(), n),
                )
                .ips >= srv.ips
            })
            .expect("crossover exists");
        let e_srv = inference_energy(
            InferenceVariant::SrvCompressed,
            &InferenceSetup::paper_default(model.clone(), 4),
            1_000_000,
        );
        let e_ndp = inference_energy(
            InferenceVariant::NdPipe,
            &InferenceSetup::paper_default(model.clone(), n),
            1_000_000,
        );
        gains.push(e_ndp.ips_per_watt() / e_srv.ips_per_watt());
    }
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        (1.1..2.5).contains(&mean),
        "mean inference efficiency gain {mean:.2} (paper 1.39x): {gains:?}"
    );
}

/// Abstract §1: "2.64× faster training ... given the same energy budget"
/// — NDPipe's best fleet beats SRV-C on images/kJ by a solid factor.
#[test]
fn headline_training_efficiency() {
    let link = LinkSpec::ethernet_gbps(10.0);
    let mut gains = Vec::new();
    for model in ModelProfile::figure_models() {
        let srv = srv_training_energy(&model, 1_200_000, 20, 512, &link, 4);
        let best = (1..=20)
            .map(|n| training_energy(&TrainSetup::paper_default(model.clone(), n)))
            .map(|e| e.ips_per_kilojoule())
            .fold(0.0f64, f64::max);
        gains.push(best / srv.ips_per_kilojoule());
    }
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        (1.5..5.0).contains(&mean),
        "mean training efficiency gain {mean:.2} (paper 2.64x): {gains:?}"
    );
}

/// §6.3: "ten PipeStores and one Tuner provide 1.64× faster training"
/// than the two-V100 centralized server.
#[test]
fn ten_pipestores_beat_the_centralized_trainer() {
    let link = LinkSpec::ethernet_gbps(10.0);
    let model = ModelProfile::resnet50();
    let srv = srv_training_report(&model, 1_200_000, 20, 512, &link);
    let ndp = training_report(&TrainSetup::paper_default(model, 10));
    let speedup = srv.total_secs / ndp.total_secs;
    assert!(
        (1.2..3.5).contains(&speedup),
        "10-store speedup {speedup:.2} (paper 1.64x)"
    );
}

/// Fig 13's crossover structure for every plotted model: P1 ≤ P2 ≤ P3 and
/// all within 1..=8 stores.
#[test]
fn inference_crossovers_are_ordered_and_small() {
    for model in ModelProfile::figure_models() {
        let srv = |v| inference_report(v, &InferenceSetup::paper_default(model.clone(), 4)).ips;
        let first_ge = |target: f64| {
            (1..=30)
                .find(|&n| {
                    inference_report(
                        InferenceVariant::NdPipe,
                        &InferenceSetup::paper_default(model.clone(), n),
                    )
                    .ips >= target
                })
                .expect("crossover")
        };
        let p1 = first_ge(srv(InferenceVariant::SrvPreproc));
        let p2 = first_ge(srv(InferenceVariant::SrvCompressed));
        let p3 = first_ge(srv(InferenceVariant::SrvIdeal));
        assert!(p1 <= p2 && p2 <= p3, "{}: {p1},{p2},{p3}", model.name());
        assert!(p3 <= 8, "{}: P3 = {p3} too large", model.name());
    }
}

/// APO ends where the paper's Fig 11 narrative says: the pick balances
/// the pipeline, and past it training time is nearly flat.
#[test]
fn apo_balance_point_is_useful() {
    for model in [ModelProfile::resnet50(), ModelProfile::inception_v3()] {
        let plan = best_organization(&ApoInput::paper_default(model.clone()));
        let n = plan.best.n_pipestores;
        let t_pick = plan.sweep[n - 1].total_secs;
        let t_20 = plan.sweep.last().expect("sweep").total_secs;
        assert!(
            (t_pick - t_20) / t_pick < 0.2,
            "{}: picking {n} leaves {:.0}% on the table",
            model.name(),
            (t_pick - t_20) / t_pick * 100.0
        );
        // And the pick is far cheaper than a max fleet in energy.
        let eff_pick = training_energy(&TrainSetup {
            partition: plan.best.partition,
            ..TrainSetup::paper_default(model.clone(), n)
        })
        .ips_per_kilojoule();
        let eff_20 = training_energy(&TrainSetup {
            partition: plan.sweep.last().expect("sweep").partition,
            ..TrainSetup::paper_default(model.clone(), 20)
        })
        .ips_per_kilojoule();
        assert!(
            eff_pick >= eff_20,
            "{}: pick is less efficient",
            model.name()
        );
    }
}

/// §3.4 anchors: the unoptimized Typical host lands near 94 IPS and the
/// Ideal host near 123 IPS for ResNet50 offline inference.
#[test]
fn fig5_absolute_anchors() {
    use cluster::baseline::{baseline_inference, BaselineHost};
    let link = LinkSpec::ethernet_gbps(10.0);
    let m = ModelProfile::resnet50();
    let typ = baseline_inference(BaselineHost::Typical, &m, 4, &link).ips();
    let ideal = baseline_inference(BaselineHost::Ideal, &m, 4, &link).ips();
    assert!((75.0..115.0).contains(&typ), "Typical {typ:.1} (paper 94)");
    assert!(
        (110.0..135.0).contains(&ideal),
        "Ideal {ideal:.1} (paper 123)"
    );
}

/// Fig 18 endpoint claims: NDPipe's efficiency advantage is large on a
/// slow fabric and shrinks (but survives) on a fast one.
#[test]
fn bandwidth_sweep_endpoints() {
    let model = ModelProfile::resnet50();
    let ratio_at = |gbps: f64| {
        let mk = |n: usize| InferenceSetup {
            link: LinkSpec::ethernet_gbps(gbps),
            ..InferenceSetup::paper_default(model.clone(), n)
        };
        let srv = inference_energy(InferenceVariant::SrvCompressed, &mk(4), 1_000_000);
        let ndp = inference_energy(InferenceVariant::NdPipe, &mk(8), 1_000_000);
        ndp.ips_per_watt() / srv.ips_per_watt()
    };
    let slow = ratio_at(1.0);
    let fast = ratio_at(40.0);
    assert!(slow > 2.0, "1Gbps ratio {slow:.2} (paper 3.7x)");
    assert!(fast > 1.0, "40Gbps ratio {fast:.2} (paper 1.3x)");
    assert!(slow > fast, "advantage should shrink with bandwidth");
}
