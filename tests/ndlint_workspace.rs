//! Tier-1 gate: the whole workspace must pass the ndlint static pass.
//!
//! This is the same analysis `cargo run -p ndlint` performs — lock-order
//! cycles, unannotated `Ordering::Relaxed`, panic surface in the no-panic
//! zones, wire/dispatch exhaustiveness, and metric-name consistency
//! against DESIGN.md's canonical table.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ndlint::run_workspace(root);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_clean(),
        "{}\n{}",
        rendered.join("\n"),
        report.summary()
    );
}

#[test]
fn workspace_scan_covers_the_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ndlint::run_workspace(root);
    assert!(
        report.files_scanned >= 40,
        "expected the crates/*/src walk to find a real workspace, got {} files",
        report.files_scanned
    );
}

#[test]
fn workspace_config_zones_and_sites_resolve() {
    // Guard against silent rot: every zone file and wire-check site named
    // in the workspace config must actually exist in the scanned set (a
    // rename would otherwise quietly disable the rule).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let paths = ndlint::workspace_sources(root);
    let rels: Vec<String> = paths
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    let cfg = ndlint::Config::workspace();
    for zone in &cfg.zones {
        assert!(
            rels.iter().any(|r| r.ends_with(&zone.file_suffix)),
            "zone file {} missing from scan set",
            zone.file_suffix
        );
    }
    for wc in &cfg.wire_checks {
        assert!(
            rels.iter().any(|r| r.ends_with(&wc.enum_file_suffix)),
            "wire enum file {} missing from scan set",
            wc.enum_file_suffix
        );
        for site in &wc.sites {
            assert!(
                rels.iter().any(|r| r.ends_with(&site.file_suffix)),
                "wire site file {} missing from scan set",
                site.file_suffix
            );
        }
    }
}

// ---- v2: baseline, determinism, config resolution, mutations --------

/// Re-runs the full analysis with one workspace file's source patched —
/// the mutation-test harness proving each rule family actually guards
/// the gate.
fn mutated_report(target_suffix: &str, patch: impl Fn(&str) -> String) -> ndlint::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let paths = ndlint::workspace_sources(root);
    let (mut files, errs) = ndlint::parse_files(root, &paths);
    assert!(errs.is_empty(), "unreadable sources: {errs:?}");
    let i = files
        .iter()
        .position(|f| f.rel.ends_with(target_suffix))
        .unwrap_or_else(|| panic!("{target_suffix} not in the scan set"));
    let src = std::fs::read_to_string(&paths[i]).expect("re-read target");
    let patched = patch(&src);
    assert_ne!(src, patched, "mutation must actually change {target_suffix}");
    let rel = files[i].rel.clone();
    files[i] = ndlint::scan::SourceFile::parse(&paths[i], &rel, &patched);
    ndlint::run(&files, &ndlint::Config::workspace())
}

fn rules_fired<'a>(r: &'a ndlint::Report, file_suffix: &str) -> Vec<&'a str> {
    r.findings
        .iter()
        .filter(|f| f.file.ends_with(file_suffix))
        .map(|f| f.rule)
        .collect()
}

#[test]
fn seeded_blocking_under_lock_fails_the_gate() {
    let r = mutated_report("core/src/rpc/server.rs", |src| {
        src.replacen(
            "let mut slot = shared.first_error.lock();",
            "let mut slot = shared.first_error.lock();\n    \
             std::thread::sleep(std::time::Duration::from_millis(250));",
            1,
        )
    });
    assert!(
        rules_fired(&r, "rpc/server.rs").contains(&"blocking"),
        "seeded sleep under the first_error guard must fire `blocking`: {:?}",
        r.findings
    );
}

#[test]
fn seeded_event_thread_blocking_fails_the_gate() {
    let r = mutated_report("core/src/rpc/server.rs", |src| {
        src.replacen(
            "let stopping = self.shared.stop.load(Ordering::Acquire);",
            "std::thread::sleep(std::time::Duration::from_millis(5));\n            \
             let stopping = self.shared.stop.load(Ordering::Acquire);",
            1,
        )
    });
    assert!(
        rules_fired(&r, "rpc/server.rs").contains(&"event_zone"),
        "a sleep seeded into EventLoop::event_loop must fire `event_zone`: {:?}",
        r.findings
    );
}

#[test]
fn deleted_policy_directive_fails_the_gate() {
    let r = mutated_report("core/src/rpc/server.rs", |src| {
        src.lines()
            .filter(|l| !l.contains("ndlint: policy("))
            .collect::<Vec<_>>()
            .join("\n")
    });
    assert!(
        rules_fired(&r, "rpc/server.rs").contains(&"channel_policy"),
        "stripping the policy directives must fire `channel_policy`: {:?}",
        r.findings
    );
}

#[test]
fn seeded_transitive_lock_inversion_fails_the_gate() {
    let r = mutated_report("core/src/rpc/server.rs", |src| {
        format!(
            "{src}\n\
             fn ndlint_mut_takes_b() {{ let g = ndlint_mut_b.lock(); drop(g); }}\n\
             fn ndlint_mut_ab() {{ let g = ndlint_mut_a.lock(); ndlint_mut_takes_b(); drop(g); }}\n\
             fn ndlint_mut_ba() {{ let g = ndlint_mut_b.lock(); let h = ndlint_mut_a.lock(); drop(h); drop(g); }}\n"
        )
    });
    let fired = rules_fired(&r, "rpc/server.rs");
    assert!(
        fired.contains(&"lock_order"),
        "the appended cross-fn AB/BA inversion must fire `lock_order`: {:?}",
        r.findings
    );
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = ndlint::json::render_report(&ndlint::run_workspace(root));
    let b = ndlint::json::render_report(&ndlint::run_workspace(root));
    assert_eq!(a, b, "two runs over the same tree must render identically");
    assert!(a.contains("\"schema_version\": 2"));
}

#[test]
fn checked_in_baseline_matches_the_tree_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ndlint::run_workspace(root);
    let text = std::fs::read_to_string(root.join("ndlint.baseline.json"))
        .expect("ndlint.baseline.json must be checked in");
    let baseline = ndlint::json::parse_baseline(&text);
    let new: Vec<String> = ndlint::json::new_findings(&report, &baseline)
        .iter()
        .map(|f| f.to_string())
        .collect();
    assert!(new.is_empty(), "findings not in the baseline:\n{}", new.join("\n"));
    let stale = ndlint::json::stale_baseline(&report, &baseline);
    assert!(
        stale.is_empty(),
        "baseline entries that no longer fire (remove them): {stale:?}"
    );
}

#[test]
fn event_zones_and_policy_paths_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let rels: Vec<String> = ndlint::workspace_sources(root)
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    let cfg = ndlint::Config::workspace();
    assert!(!cfg.event_zones.is_empty(), "workspace must declare an event zone");
    for z in &cfg.event_zones {
        assert!(
            rels.iter().any(|r| r.ends_with(&z.file_suffix)),
            "event zone file {} missing from scan set",
            z.file_suffix
        );
    }
    assert!(!cfg.policy_paths.is_empty(), "workspace must declare policy paths");
    for p in &cfg.policy_paths {
        assert!(
            rels.iter().any(|r| r.contains(p.as_str())),
            "policy path {p} matches no scanned file"
        );
    }
}
