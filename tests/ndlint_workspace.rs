//! Tier-1 gate: the whole workspace must pass the ndlint static pass.
//!
//! This is the same analysis `cargo run -p ndlint` performs — lock-order
//! cycles, unannotated `Ordering::Relaxed`, panic surface in the no-panic
//! zones, wire/dispatch exhaustiveness, and metric-name consistency
//! against DESIGN.md's canonical table.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ndlint::run_workspace(root);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_clean(),
        "{}\n{}",
        rendered.join("\n"),
        report.summary()
    );
}

#[test]
fn workspace_scan_covers_the_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ndlint::run_workspace(root);
    assert!(
        report.files_scanned >= 40,
        "expected the crates/*/src walk to find a real workspace, got {} files",
        report.files_scanned
    );
}

#[test]
fn workspace_config_zones_and_sites_resolve() {
    // Guard against silent rot: every zone file and wire-check site named
    // in the workspace config must actually exist in the scanned set (a
    // rename would otherwise quietly disable the rule).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let paths = ndlint::workspace_sources(root);
    let rels: Vec<String> = paths
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    let cfg = ndlint::Config::workspace();
    for zone in &cfg.zones {
        assert!(
            rels.iter().any(|r| r.ends_with(&zone.file_suffix)),
            "zone file {} missing from scan set",
            zone.file_suffix
        );
    }
    for wc in &cfg.wire_checks {
        assert!(
            rels.iter().any(|r| r.ends_with(&wc.enum_file_suffix)),
            "wire enum file {} missing from scan set",
            wc.enum_file_suffix
        );
        for site in &wc.sites {
            assert!(
                rels.iter().any(|r| r.ends_with(&site.file_suffix)),
                "wire site file {} missing from scan set",
                site.file_suffix
            );
        }
    }
}
