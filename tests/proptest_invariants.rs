//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use tensor::{linalg, Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

proptest! {
    /// offset/unravel are inverse bijections over the whole index space.
    #[test]
    fn shape_offset_unravel_bijection(dims in small_dims()) {
        let shape = Shape::new(&dims);
        for flat in 0..shape.len() {
            let idx = shape.unravel(flat).expect("in range");
            prop_assert_eq!(shape.offset(&idx), Some(flat));
        }
        prop_assert_eq!(shape.unravel(shape.len()), None);
    }

    /// Reshape preserves data for any compatible factorization.
    #[test]
    fn reshape_preserves_data(rows in 1usize..8, cols in 1usize..8) {
        let n = rows * cols;
        let t = Tensor::from_vec((0..n).map(|x| x as f32).collect(), &[rows, cols]);
        let r = t.reshape(&[cols, rows]).expect("same size");
        prop_assert_eq!(r.data(), t.data());
        let flat = t.reshape(&[n]).expect("same size");
        prop_assert_eq!(flat.data(), t.data());
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[m, k], &mut rng);
        let c = Tensor::randn(&[k, n], &mut rng);
        let lhs = linalg::matmul(&a.add(&b), &c);
        let rhs = linalg::matmul(&a, &c).add(&linalg::matmul(&b, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    /// Transpose is an involution and reverses matmul order.
    #[test]
    fn transpose_reverses_matmul(seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        let ab_t = linalg::transpose(&linalg::matmul(&a, &b));
        let bt_at = linalg::matmul(&linalg::transpose(&b), &linalg::transpose(&a));
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows always form a probability distribution, whatever the
    /// logits (including huge magnitudes).
    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..5,
        cols in 1usize..8,
        scale in 0.0f32..1000.0,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[rows, cols], &mut rng).scale(scale);
        let p = tensor::activation::softmax_rows(&logits);
        for r in 0..rows {
            let row = &p.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sums to {}", sum);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
        }
    }
}

mod deflate_props {
    use super::*;
    use ndpipe_data::deflate::{compress, decompress};

    proptest! {
        /// Compression round-trips arbitrary byte strings.
        #[test]
        fn roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).expect("valid stream"), data);
        }

        /// Output size never exceeds the stored-block bound.
        #[test]
        fn bounded_expansion(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let packed = compress(&data);
            let blocks = data.len().div_ceil(u16::MAX as usize).max(1);
            prop_assert!(packed.len() <= data.len() + blocks * 5 + 1);
        }

        /// Highly repetitive inputs always compress.
        #[test]
        fn repetition_compresses(byte in any::<u8>(), reps in 64usize..2048) {
            let data = vec![byte; reps];
            prop_assert!(compress(&data).len() < data.len() / 2);
        }
    }
}

mod dataset_props {
    use super::*;
    use ndpipe_data::LabeledDataset;

    proptest! {
        /// Shards partition any dataset: sizes differ by at most one and
        /// every example appears exactly once.
        #[test]
        fn shards_partition(n in 2usize..40, k in 1usize..8) {
            prop_assume!(k <= n);
            let rows: Vec<Tensor> =
                (0..n).map(|i| Tensor::from_vec(vec![i as f32], &[1])).collect();
            let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
            let ds = LabeledDataset::new(rows, labels, 3);
            let shards = ds.shards(k);
            let total: usize = shards.iter().map(|s| s.len()).sum();
            prop_assert_eq!(total, n);
            let mut seen: Vec<f32> = shards
                .iter()
                .flat_map(|s| s.features().data().to_vec())
                .collect();
            seen.sort_by(f32::total_cmp);
            let expect: Vec<f32> = (0..n).map(|i| i as f32).collect();
            prop_assert_eq!(seen, expect);
        }

        /// Batch iteration covers every row exactly once, in order.
        #[test]
        fn batches_cover(n in 1usize..40, batch in 1usize..10) {
            let rows: Vec<Tensor> =
                (0..n).map(|i| Tensor::from_vec(vec![i as f32], &[1])).collect();
            let labels: Vec<usize> = (0..n).map(|_| 0).collect();
            let ds = LabeledDataset::new(rows, labels, 1);
            let mut seen = Vec::new();
            for (x, y) in ds.batches(batch) {
                prop_assert_eq!(x.dims()[0], y.len());
                seen.extend(x.data().iter().copied());
            }
            let expect: Vec<f32> = (0..n).map(|i| i as f32).collect();
            prop_assert_eq!(seen, expect);
        }
    }
}

mod metric_props {
    use super::*;
    use dnn::trainer::metrics_from_logits;

    proptest! {
        /// top5 ≥ top1 and both are valid fractions, including labels
        /// outside the class space.
        #[test]
        fn metric_bounds(
            rows in 1usize..20,
            cols in 1usize..12,
            seed in 0u64..500,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let logits = Tensor::randn(&[rows, cols], &mut rng);
            let labels: Vec<usize> =
                (0..rows).map(|_| rng.gen_range(0..cols + 3)).collect();
            let m = metrics_from_logits(&logits, &labels);
            prop_assert!(m.top5 >= m.top1);
            prop_assert!((0.0..=1.0).contains(&m.top1));
            prop_assert!((0.0..=1.0).contains(&m.top5));
        }
    }
}

mod convergence_props {
    use super::*;
    use dnn::convergence::{inter_run_loss_bound, iteration_bound};

    proptest! {
        /// Δ is monotone: more samples shrink it, more weights grow it.
        #[test]
        fn delta_monotonic(p in 1usize..1_000_000, m in 1usize..1_000_000) {
            let d = inter_run_loss_bound(p, m, 0.05);
            prop_assert!(d >= 0.0 && d.is_finite());
            prop_assert!(inter_run_loss_bound(p, m * 2, 0.05) <= d);
            prop_assert!(inter_run_loss_bound(p * 2, m, 0.05) >= d);
        }

        /// The iteration bound is non-negative and decreasing in lr.
        #[test]
        fn iteration_bound_sane(
            lr in 0.001f64..1.0,
            margin in 0.1f64..2.0,
            layers in 1usize..6,
            prev in 0.0f64..10.0,
        ) {
            let t = iteration_bound(lr, margin, layers, prev, 0.01, 0.05);
            prop_assert!(t >= 0.0 && t.is_finite());
            let t_fast = iteration_bound(lr * 2.0, margin, layers, prev, 0.01, 0.05);
            prop_assert!(t_fast <= t + 1e-9);
        }
    }
}

mod event_queue_props {
    use super::*;
    use simkit::{EventQueue, SimTime};

    proptest! {
        /// Events always pop in non-decreasing time order with FIFO ties.
        #[test]
        fn time_ordering(times in prop::collection::vec(0u32..100, 1..50)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t as f64), (t, i));
            }
            let mut last: Option<(u32, usize)> = None;
            while let Some(e) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(e.payload.0 >= lt);
                    if e.payload.0 == lt {
                        prop_assert!(e.payload.1 > li, "FIFO violated");
                    }
                }
                last = Some(e.payload);
            }
        }
    }
}

mod rpc_props {
    use super::*;
    use ndpipe::rpc::wire::{read_reply, read_request};

    proptest! {
        /// Feeding arbitrary bytes to the frame decoders never panics —
        /// they either parse or error.
        #[test]
        fn wire_decoders_never_panic(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = read_request(&mut garbage.as_slice());
            let _ = read_reply(&mut garbage.as_slice());
        }
    }
}

mod model_blob_props {
    use super::*;
    use dnn::Mlp;

    proptest! {
        /// Model deserialization never panics on garbage and always
        /// round-trips real models bit-exactly.
        #[test]
        fn model_blob_robustness(garbage in prop::collection::vec(any::<u8>(), 0..128), seed in 0u64..200) {
            let _ = Mlp::from_bytes(&garbage);
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Mlp::new(&[3, 5, 2], 1, &mut rng);
            let back = Mlp::from_bytes(&m.to_bytes()).expect("own blob parses");
            let x = Tensor::randn(&[2, 3], &mut rng);
            let original = m.forward(&x);
            let restored = back.forward(&x);
            prop_assert_eq!(original.data(), restored.data());
        }
    }
}
