//! Integration tests of FT-DMP's distributed-equals-centralized
//! semantics: distributing fine-tuning across PipeStores must not change
//! *what* is learned, only *where*.

use dnn::{Mlp, TrainConfig, Trainer};
use ndpipe::ftdmp::{ftdmp_fine_tune, FtdmpConfig};
use ndpipe::{PipeStore, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn world(
    seed: u64,
    classes: usize,
    per_class: usize,
) -> (Mlp, LabeledDataset, LabeledDataset, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let u = ClassUniverse::new(16, 8, classes, 0.3, &mut rng);
    let make = |u: &ClassUniverse, rng: &mut StdRng, n: usize| {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..u.classes() {
            for _ in 0..n {
                rows.push(u.sample(c, rng));
                labels.push(c);
            }
        }
        LabeledDataset::new(rows, labels, u.classes())
    };
    let train = make(&u, &mut rng, per_class);
    let test = make(&u, &mut rng, per_class / 2);
    let model = Mlp::new(&[16, 24, 16, classes], 2, &mut rng);
    (model, train, test, rng)
}

/// The features PipeStores ship are *identical* to what the Tuner would
/// compute locally — weight-freeze layers are deterministic replicas.
#[test]
fn distributed_features_match_centralized() {
    let (model, train, _, _) = world(11, 4, 20);
    let stores: Vec<PipeStore> = train
        .shards(4)
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let mut s = PipeStore::new(i, shard);
            s.install_model(model.clone());
            s
        })
        .collect();
    let mut gathered_rows = Vec::new();
    for s in &stores {
        let (f, _) = s.extract_features(0..s.shard_len());
        for i in 0..f.dims()[0] {
            gathered_rows.push(f.row(i));
        }
    }
    let gathered = Tensor::stack_rows(&gathered_rows);
    // Centralized: concatenate the shards in the same order and extract.
    let central = model.features(&LabeledDataset::concat(&train.shards(4)).features().clone());
    assert_eq!(gathered.data(), central.data());
}

/// Distributed fine-tuning reaches (statistically) the same accuracy as
/// centralized classifier fine-tuning on the same data.
#[test]
fn distributed_accuracy_matches_centralized() {
    let (model, train, test, mut rng) = world(12, 5, 40);
    let cfg = TrainConfig {
        batch: 16,
        max_epochs: 20,
        ..TrainConfig::default()
    };

    // Centralized fine-tuning.
    let mut central = model.clone();
    let trainer = Trainer::new(cfg);
    let split = central.split();
    trainer.fit(&mut central, &train, None, split, &mut rng);
    let acc_central = Trainer::evaluate(&central, &test).top1;

    // Distributed FT-DMP over 5 stores.
    let mut tuner = Tuner::new(model, cfg);
    let mut stores: Vec<PipeStore> = train
        .shards(5)
        .into_iter()
        .enumerate()
        .map(|(i, s)| PipeStore::new(i, s))
        .collect();
    ftdmp_fine_tune(
        &mut tuner,
        &mut stores,
        &FtdmpConfig {
            n_run: 1,
            epochs_per_run: 20,
            train: cfg,
            ..FtdmpConfig::default()
        },
        &mut rng,
    )
    .expect("valid FT-DMP job");
    let acc_dist = Trainer::evaluate(tuner.model(), &test).top1;

    assert!(
        (acc_central - acc_dist).abs() < 0.12,
        "centralized {acc_central:.3} vs distributed {acc_dist:.3}"
    );
}

/// Scaling the fleet never changes the learning outcome, only the
/// sharding — 1 store and 8 stores land at comparable accuracy.
#[test]
fn fleet_size_does_not_change_learning() {
    let (model, train, test, mut rng) = world(13, 5, 40);
    let cfg = TrainConfig {
        batch: 16,
        max_epochs: 15,
        ..TrainConfig::default()
    };
    let mut accs = Vec::new();
    for n_stores in [1usize, 4, 8] {
        let mut tuner = Tuner::new(model.clone(), cfg);
        let mut stores: Vec<PipeStore> = train
            .shards(n_stores)
            .into_iter()
            .enumerate()
            .map(|(i, s)| PipeStore::new(i, s))
            .collect();
        ftdmp_fine_tune(
            &mut tuner,
            &mut stores,
            &FtdmpConfig {
                n_run: 1,
                epochs_per_run: 15,
                train: cfg,
                ..FtdmpConfig::default()
            },
            &mut rng,
        )
        .expect("valid FT-DMP job");
        accs.push(Trainer::evaluate(tuner.model(), &test).top1);
    }
    let spread =
        accs.iter().fold(0.0f64, |m, &a| m.max(a)) - accs.iter().fold(1.0f64, |m, &a| m.min(a));
    assert!(spread < 0.12, "accuracy varies with fleet size: {accs:?}");
}

/// Weight-freeze layers are bit-identical across every store and the
/// Tuner after a full FT-DMP round — the no-synchronization property.
#[test]
fn frozen_layers_never_diverge() {
    let (model, train, _, mut rng) = world(14, 4, 25);
    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    let mut stores: Vec<PipeStore> = train
        .shards(3)
        .into_iter()
        .enumerate()
        .map(|(i, s)| PipeStore::new(i, s))
        .collect();
    ftdmp_fine_tune(
        &mut tuner,
        &mut stores,
        &FtdmpConfig {
            n_run: 2,
            epochs_per_run: 5,
            train: cfg,
            ..FtdmpConfig::default()
        },
        &mut rng,
    )
    .expect("valid FT-DMP job");
    let probe = Tensor::randn(&[6, 16], &mut rng);
    let master_feats = tuner.model().features(&probe);
    for s in &stores {
        let feats = s.model().expect("installed").features(&probe);
        assert_eq!(
            feats.data(),
            master_feats.data(),
            "store {} frozen layers diverged",
            s.id()
        );
    }
}
