//! AWS on-demand cost arithmetic (Fig 21).

use serde::{Deserialize, Serialize};

/// On-demand hourly price of one server, plus storage rental.
///
/// Prices are the us-east-1 on-demand rates contemporaneous with the
/// paper's evaluation (AWS Pricing Calculator, 2023).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Instance-hour price, USD.
    pub usd_per_hour: f64,
    /// Attached st1 storage price, USD per GiB-month.
    pub storage_usd_per_gib_month: f64,
}

impl CostModel {
    /// `g4dn.4xlarge` — PipeStore / storage server (T4 GPU).
    pub fn g4dn_4xlarge() -> Self {
        CostModel {
            usd_per_hour: 1.204,
            storage_usd_per_gib_month: 0.045,
        }
    }

    /// `p3.2xlarge` — Tuner (one V100).
    pub fn p3_2xlarge() -> Self {
        CostModel {
            usd_per_hour: 3.06,
            storage_usd_per_gib_month: 0.0,
        }
    }

    /// `p3.8xlarge` — centralized baseline host (four V100s, two used).
    pub fn p3_8xlarge() -> Self {
        CostModel {
            usd_per_hour: 12.24,
            storage_usd_per_gib_month: 0.0,
        }
    }

    /// `inf1.2xlarge` — Inferentia PipeStore.
    pub fn inf1_2xlarge() -> Self {
        CostModel {
            usd_per_hour: 0.362,
            storage_usd_per_gib_month: 0.045,
        }
    }

    /// Cost of running this instance for `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative.
    pub fn run_cost_usd(&self, secs: f64) -> f64 {
        assert!(secs >= 0.0, "duration must be non-negative");
        self.usd_per_hour * secs / 3600.0
    }

    /// Monthly storage rental for `gib` of attached st1 volume.
    ///
    /// # Panics
    ///
    /// Panics if `gib` is negative.
    pub fn storage_cost_usd_per_month(&self, gib: f64) -> f64 {
        assert!(gib >= 0.0, "capacity must be non-negative");
        self.storage_usd_per_gib_month * gib
    }
}

/// Total cost of a fleet run: `n` identical workers plus one coordinator
/// running for `secs` seconds.
pub fn fleet_run_cost_usd(worker: CostModel, n: usize, coordinator: CostModel, secs: f64) -> f64 {
    worker.run_cost_usd(secs) * n as f64 + coordinator.run_cost_usd(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_rates_ordered() {
        assert!(CostModel::inf1_2xlarge().usd_per_hour < CostModel::g4dn_4xlarge().usd_per_hour);
        assert!(CostModel::g4dn_4xlarge().usd_per_hour < CostModel::p3_2xlarge().usd_per_hour);
        assert!(CostModel::p3_2xlarge().usd_per_hour < CostModel::p3_8xlarge().usd_per_hour);
    }

    #[test]
    fn run_cost_is_prorated() {
        let c = CostModel::p3_2xlarge();
        assert!((c.run_cost_usd(1800.0) - 1.53).abs() < 1e-9);
        assert_eq!(c.run_cost_usd(0.0), 0.0);
    }

    #[test]
    fn fleet_cost_adds_up() {
        let total = fleet_run_cost_usd(
            CostModel::g4dn_4xlarge(),
            10,
            CostModel::p3_2xlarge(),
            3600.0,
        );
        assert!((total - (10.0 * 1.204 + 3.06)).abs() < 1e-9);
    }

    #[test]
    fn storage_cost() {
        let c = CostModel::g4dn_4xlarge();
        assert!((c.storage_cost_usd_per_month(1000.0) - 45.0).abs() < 1e-9);
    }
}
