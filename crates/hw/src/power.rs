//! Component power accounting and energy integration.

use serde::{Deserialize, Serialize};

/// Average power draw of one server split by component, in watts.
///
/// Mirrors Fig 14's decomposition into GPU, CPU and "Others" (power
/// supply losses, SoC, DRAM, NICs, fans).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentPower {
    /// GPU / accelerator watts.
    pub gpu: f64,
    /// CPU package watts.
    pub cpu: f64,
    /// Everything else: PSU loss, SoC, I/O, DRAM, fans, disks.
    pub other: f64,
}

impl ComponentPower {
    /// Creates a breakdown from the three components.
    pub fn new(gpu: f64, cpu: f64, other: f64) -> Self {
        ComponentPower { gpu, cpu, other }
    }

    /// Total watts.
    pub fn total(&self) -> f64 {
        self.gpu + self.cpu + self.other
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &ComponentPower) -> ComponentPower {
        ComponentPower {
            gpu: self.gpu + other.gpu,
            cpu: self.cpu + other.cpu,
            other: self.other + other.other,
        }
    }

    /// Component-wise scaling (e.g. power of `n` identical servers).
    pub fn scaled(&self, k: f64) -> ComponentPower {
        ComponentPower {
            gpu: self.gpu * k,
            cpu: self.cpu * k,
            other: self.other * k,
        }
    }
}

impl std::fmt::Display for ComponentPower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0}W (gpu {:.0} / cpu {:.0} / other {:.0})",
            self.total(),
            self.gpu,
            self.cpu,
            self.other
        )
    }
}

/// Integrates energy from per-phase power and duration samples.
///
/// # Example
///
/// ```
/// use hw::{ComponentPower, EnergyMeter};
///
/// let mut m = EnergyMeter::new();
/// m.record(ComponentPower::new(200.0, 100.0, 100.0), 10.0);
/// assert_eq!(m.energy_joules(), 4000.0);
/// assert_eq!(m.elapsed_secs(), 10.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    joules: f64,
    secs: f64,
    breakdown: ComponentPower,
}

impl EnergyMeter {
    /// An empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Accumulates `power` drawn for `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative.
    pub fn record(&mut self, power: ComponentPower, secs: f64) {
        assert!(secs >= 0.0, "duration must be non-negative");
        self.joules += power.total() * secs;
        self.breakdown = self.breakdown.plus(&power.scaled(secs));
        self.secs += secs;
    }

    /// Total energy, joules.
    pub fn energy_joules(&self) -> f64 {
        self.joules
    }

    /// Total wall time recorded, seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.secs
    }

    /// Time-weighted average power, watts (0 if nothing recorded).
    pub fn mean_power(&self) -> ComponentPower {
        if self.secs == 0.0 {
            ComponentPower::default()
        } else {
            self.breakdown.scaled(1.0 / self.secs)
        }
    }

    /// Work efficiency: `items / kJ` for `items` completed during the
    /// recorded interval (the paper's IPS/kJ metric).
    ///
    /// # Panics
    ///
    /// Panics if no energy has been recorded.
    pub fn items_per_kilojoule(&self, items: f64) -> f64 {
        assert!(self.joules > 0.0, "no energy recorded");
        items / (self.joules / 1e3)
    }

    /// Throughput efficiency: `items_per_sec / watts` (the paper's IPS/W).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been recorded.
    pub fn ips_per_watt(&self, items: f64) -> f64 {
        assert!(self.secs > 0.0 && self.joules > 0.0, "nothing recorded");
        (items / self.secs) / (self.joules / self.secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_arithmetic() {
        let p = ComponentPower::new(300.0, 150.0, 150.0);
        assert_eq!(p.total(), 600.0);
        assert_eq!(p.scaled(2.0).total(), 1200.0);
        assert_eq!(p.plus(&p).gpu, 600.0);
    }

    #[test]
    fn meter_integrates_phases() {
        let mut m = EnergyMeter::new();
        m.record(ComponentPower::new(100.0, 0.0, 0.0), 5.0);
        m.record(ComponentPower::new(0.0, 50.0, 50.0), 10.0);
        assert_eq!(m.energy_joules(), 1500.0);
        assert_eq!(m.elapsed_secs(), 15.0);
        let mean = m.mean_power();
        assert!((mean.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_metrics() {
        let mut m = EnergyMeter::new();
        m.record(ComponentPower::new(500.0, 250.0, 250.0), 2.0);
        // 2000 J, 2 s; 4000 items -> 2000 items/kJ, 2000 ips / 1000 W = 2.
        assert!((m.items_per_kilojoule(4000.0) - 2000.0).abs() < 1e-9);
        assert!((m.ips_per_watt(4000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_breakdown() {
        let p = ComponentPower::new(70.0, 30.0, 50.0);
        let s = p.to_string();
        assert!(s.contains("150W"));
        assert!(s.contains("gpu 70"));
    }
}
