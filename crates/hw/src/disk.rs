//! Storage-volume models (st1 HDD arrays, SSDs, RAID-5).

use serde::{Deserialize, Serialize};

/// An analytic block-storage model characterized by sustained sequential
/// read/write throughput. The paper's storage servers use AWS `st1`
/// volumes backed by 16 HDDs in RAID-5; photo workloads are large
/// sequential reads, so a throughput model suffices.
///
/// # Example
///
/// ```
/// use hw::DiskSpec;
///
/// let st1 = DiskSpec::st1_raid5();
/// // Reading a 2.7 MB photo takes a few milliseconds.
/// let t = st1.read_time_secs(2.7e6);
/// assert!(t > 0.0 && t < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Human-readable name.
    pub name: String,
    /// Sustained sequential read, bytes/sec.
    pub read_bps: f64,
    /// Sustained sequential write, bytes/sec.
    pub write_bps: f64,
    /// Average access latency per request, seconds.
    pub latency_secs: f64,
    /// Active power, watts (whole array).
    pub active_watts: f64,
    /// Idle power, watts (whole array).
    pub idle_watts: f64,
}

impl DiskSpec {
    /// A single 7200 RPM data-center HDD.
    pub fn hdd() -> Self {
        DiskSpec {
            name: "HDD 7200rpm".to_string(),
            read_bps: 160.0e6,
            write_bps: 140.0e6,
            latency_secs: 8.0e-3,
            active_watts: 7.0,
            idle_watts: 4.0,
        }
    }

    /// A SATA data-center SSD.
    pub fn ssd() -> Self {
        DiskSpec {
            name: "SATA SSD".to_string(),
            read_bps: 520.0e6,
            write_bps: 480.0e6,
            latency_secs: 80.0e-6,
            active_watts: 5.0,
            idle_watts: 1.5,
        }
    }

    /// The paper's storage volume: AWS `st1` built from 16 HDDs in RAID-5.
    ///
    /// st1's sustained throughput tops out at 500 MB/s, which is what the
    /// photo-read path sees; latency is one HDD seek. st1 is shared EBS
    /// infrastructure, so the power charged to one attachment is an
    /// amortized quarter-share of the backing 16-disk array.
    pub fn st1_raid5() -> Self {
        let hdd = DiskSpec::hdd();
        DiskSpec {
            name: "st1 (16x HDD RAID-5)".to_string(),
            read_bps: 500.0e6,
            write_bps: 400.0e6,
            latency_secs: hdd.latency_secs,
            active_watts: 4.0 * hdd.active_watts,
            idle_watts: 4.0 * hdd.idle_watts,
        }
    }

    /// A RAID-5 array of `n` copies of `disk`. Reads stripe across `n-1`
    /// data disks (one disk's worth of bandwidth is parity).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (RAID-5 needs at least three members).
    pub fn raid5(disk: &DiskSpec, n: usize) -> Self {
        assert!(n >= 3, "RAID-5 needs at least 3 disks");
        DiskSpec {
            name: format!("{}x {} RAID-5", n, disk.name),
            read_bps: disk.read_bps * (n - 1) as f64,
            // RAID-5 small-write penalty folded into a 0.5 factor.
            write_bps: disk.write_bps * (n - 1) as f64 * 0.5,
            latency_secs: disk.latency_secs,
            active_watts: disk.active_watts * n as f64,
            idle_watts: disk.idle_watts * n as f64,
        }
    }

    /// Seconds to sequentially read `bytes` (latency + transfer).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative.
    pub fn read_time_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        self.latency_secs + bytes / self.read_bps
    }

    /// Seconds to sequentially write `bytes` (latency + transfer).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative.
    pub fn write_time_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        self.latency_secs + bytes / self.write_bps
    }

    /// Power drawn at a utilization in `[0, 1]`.
    pub fn power_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.active_watts - self.idle_watts) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid5_scales_reads() {
        let r = DiskSpec::raid5(&DiskSpec::hdd(), 16);
        assert_eq!(r.read_bps, 160.0e6 * 15.0);
        assert!(r.write_bps < r.read_bps);
    }

    #[test]
    #[should_panic(expected = "at least 3 disks")]
    fn raid5_minimum_members() {
        let _ = DiskSpec::raid5(&DiskSpec::hdd(), 2);
    }

    #[test]
    fn st1_matches_aws_ceiling() {
        let st1 = DiskSpec::st1_raid5();
        assert_eq!(st1.read_bps, 500.0e6);
        // 2.7MB photo: ~8ms seek + ~5.4ms transfer.
        let t = st1.read_time_secs(2.7e6);
        assert!((t - 0.0134).abs() < 1e-3, "t {t}");
    }

    #[test]
    fn ssd_is_faster_than_hdd() {
        assert!(DiskSpec::ssd().read_time_secs(1e6) < DiskSpec::hdd().read_time_secs(1e6));
    }

    #[test]
    fn zero_byte_io_costs_latency_only() {
        let d = DiskSpec::ssd();
        assert_eq!(d.read_time_secs(0.0), d.latency_secs);
    }
}
