//! Whole-server presets matching the paper's EC2 fleet.

use crate::{CostModel, CpuSpec, DiskSpec, GpuSpec, LinkSpec};
use serde::{Deserialize, Serialize};

/// A complete server: CPU, zero or more accelerators, storage and NIC.
///
/// # Example
///
/// ```
/// use hw::InstanceSpec;
///
/// let ps = InstanceSpec::pipestore();
/// assert_eq!(ps.gpus.len(), 1);
/// assert_eq!(ps.gpus[0].name, "Tesla T4");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Preset name (EC2 instance type plus role).
    pub name: String,
    /// CPU package.
    pub cpu: CpuSpec,
    /// Installed accelerators.
    pub gpus: Vec<GpuSpec>,
    /// Attached storage volume.
    pub disk: DiskSpec,
    /// Network interface.
    pub nic: LinkSpec,
    /// On-demand pricing.
    pub cost: CostModel,
    /// Baseline power of "other" components (PSU loss, SoC, DRAM, fans),
    /// watts; roughly constant regardless of load.
    pub other_watts: f64,
}

impl InstanceSpec {
    /// A PipeStore: `g4dn.4xlarge` with one T4 and an st1 HDD array.
    pub fn pipestore() -> Self {
        InstanceSpec {
            name: "PipeStore (g4dn.4xlarge + T4)".to_string(),
            cpu: CpuSpec::storage_xeon(),
            gpus: vec![GpuSpec::tesla_t4()],
            disk: DiskSpec::st1_raid5(),
            nic: LinkSpec::ethernet_gbps(10.0),
            cost: CostModel::g4dn_4xlarge(),
            other_watts: 80.0,
        }
    }

    /// A derated PipeStore: the [`InstanceSpec::pipestore`] preset with
    /// every data-path rate (GPU throughput, disk reads, CPU
    /// decompression) scaled by `factor` in `(0, 1]`. Models a straggler
    /// or thermally-throttled storage server for heterogeneous-fleet
    /// planning (APO's Pareto search) and slow-peer experiments.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn pipestore_derated(factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derating factor must be in (0, 1], got {factor}"
        );
        let mut spec = InstanceSpec::pipestore();
        spec.name = format!("PipeStore (derated {factor:.2}x)");
        for gpu in &mut spec.gpus {
            gpu.dnn_factor *= factor;
        }
        spec.disk.read_bps *= factor;
        spec.cpu.decompress_bps_per_core *= factor;
        spec
    }

    /// An Inferentia PipeStore: `inf1.2xlarge` with one NeuronCoreV1.
    pub fn pipestore_inf1() -> Self {
        InstanceSpec {
            name: "PipeStore-Inf1 (inf1.2xlarge)".to_string(),
            cpu: CpuSpec::inf1_xeon(),
            gpus: vec![GpuSpec::neuron_core_v1()],
            disk: DiskSpec::st1_raid5(),
            nic: LinkSpec::ethernet_gbps(10.0),
            cost: CostModel::inf1_2xlarge(),
            other_watts: 35.0,
        }
    }

    /// A plain storage server: `g4dn.4xlarge` with the GPU disabled
    /// (the SRV baselines' data tier).
    pub fn storage_server() -> Self {
        InstanceSpec {
            name: "StorageServer (g4dn.4xlarge, GPU off)".to_string(),
            cpu: CpuSpec::storage_xeon(),
            gpus: Vec::new(),
            disk: DiskSpec::st1_raid5(),
            nic: LinkSpec::ethernet_gbps(10.0),
            cost: CostModel::g4dn_4xlarge(),
            other_watts: 80.0,
        }
    }

    /// The Tuner: `p3.2xlarge` with one V100.
    pub fn tuner() -> Self {
        InstanceSpec {
            name: "Tuner (p3.2xlarge + V100)".to_string(),
            cpu: CpuSpec::host_xeon(8),
            gpus: vec![GpuSpec::tesla_v100()],
            disk: DiskSpec::ssd(),
            nic: LinkSpec::ethernet_gbps(10.0),
            cost: CostModel::p3_2xlarge(),
            other_watts: 90.0,
        }
    }

    /// The centralized baseline host: `p3.8xlarge` with two of its four
    /// V100s enabled, as in the paper's SRV configurations.
    pub fn srv_host() -> Self {
        InstanceSpec {
            name: "SRV host (p3.8xlarge, 2x V100)".to_string(),
            cpu: CpuSpec::host_xeon(32),
            gpus: vec![GpuSpec::tesla_v100(), GpuSpec::tesla_v100()],
            disk: DiskSpec::ssd(),
            nic: LinkSpec::ethernet_gbps(10.0),
            cost: CostModel::p3_8xlarge(),
            // Big chassis: PSU losses, 244 GiB DRAM, SoC, fans, plus the
            // two disabled V100s idling at ~25 W each.
            other_watts: 300.0,
        }
    }

    /// Aggregate relative DNN throughput of the installed accelerators
    /// (sum of `dnn_factor`s).
    pub fn total_dnn_factor(&self) -> f64 {
        self.gpus.iter().map(|g| g.dnn_factor).sum()
    }

    /// Server power at the given component utilizations, split by
    /// component as in Fig 14.
    pub fn power_at(&self, gpu_util: f64, cpu_util: f64) -> crate::ComponentPower {
        crate::ComponentPower {
            gpu: self.gpus.iter().map(|g| g.power_at(gpu_util)).sum(),
            cpu: self.cpu.power_at(cpu_util),
            other: self.other_watts + self.disk.power_at(0.3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srv_host_has_two_v100s() {
        let srv = InstanceSpec::srv_host();
        assert_eq!(srv.gpus.len(), 2);
        assert_eq!(srv.total_dnn_factor(), 6.0);
    }

    #[test]
    fn two_v100_equal_six_t4_pipestores() {
        // This is exactly why Fig 13 puts P3 (SRV-I crossover) at 5–7
        // PipeStores: 2 V100 = 6.0 T4-equivalents.
        let srv = InstanceSpec::srv_host();
        let ps = InstanceSpec::pipestore();
        let equal_stores = srv.total_dnn_factor() / ps.total_dnn_factor();
        assert!((5.0..=7.0).contains(&equal_stores));
    }

    #[test]
    fn power_breakdown_is_componentwise() {
        let ps = InstanceSpec::pipestore();
        let idle = ps.power_at(0.0, 0.0);
        let busy = ps.power_at(1.0, 1.0);
        assert!(busy.total() > idle.total());
        assert!(busy.gpu > idle.gpu);
        // Full PipeStore under load is a few hundred watts.
        assert!((200.0..500.0).contains(&busy.total()), "{}", busy);
    }

    #[test]
    fn srv_host_power_magnitude_matches_fig14() {
        // Fig 14 shows roughly 500-600W of GPU+CPU for the SRV host under
        // load; the whole chassis lands around a kilowatt.
        let srv = InstanceSpec::srv_host();
        let busy = srv.power_at(1.0, 0.8);
        assert!((500.0..900.0).contains(&(busy.gpu + busy.cpu)), "{}", busy);
        assert!((700.0..1300.0).contains(&busy.total()), "{}", busy);
    }

    #[test]
    fn storage_server_has_no_gpu() {
        assert_eq!(InstanceSpec::storage_server().total_dnn_factor(), 0.0);
    }
}
