//! CPU models: preprocessing and decompression rates.

use serde::{Deserialize, Serialize};

/// An analytic CPU model for the two CPU-bound stages of the photo
/// pipeline: JPEG decode + resize + normalize ("preprocessing") and
/// DEFLATE decompression of preprocessed binaries.
///
/// Calibration anchors (see `DESIGN.md`):
/// - Fig 5(b): the Ideal host (8 preprocessing cores, 2 V100s) sustains
///   only 123 IPS on raw 2.7 MB JPEGs ⇒ ~15.4 images/s per core.
/// - Fig 18: SRV-C's eight decompression cores saturate around the
///   20 Gbps ingest point ⇒ ~312 MB/s of compressed data per core.
///
/// # Example
///
/// ```
/// use hw::CpuSpec;
///
/// let host = CpuSpec::host_xeon(32);
/// assert!(host.preprocess_ips(8) > 120.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing-ish name.
    pub name: String,
    /// Total vCPU count of the server.
    pub vcpus: usize,
    /// Base clock, GHz (documentation only; rates below are calibrated).
    pub ghz: f64,
    /// Raw-image preprocessing throughput per core, images/sec.
    pub preprocess_ips_per_core: f64,
    /// DEFLATE decompression throughput per core, bytes/sec of
    /// *compressed* input.
    pub decompress_bps_per_core: f64,
    /// Package power at full utilization, watts.
    pub tdp_watts: f64,
    /// Package power when idle, watts.
    pub idle_watts: f64,
}

impl CpuSpec {
    /// The host-server CPU (p3.* instances, 2.7 GHz Xeon).
    pub fn host_xeon(vcpus: usize) -> Self {
        CpuSpec {
            name: "Xeon (host)".to_string(),
            vcpus,
            ghz: 2.7,
            preprocess_ips_per_core: 15.4,
            decompress_bps_per_core: 312.5e6,
            tdp_watts: 165.0,
            idle_watts: 45.0,
        }
    }

    /// The storage-server CPU (g4dn.4xlarge, 2.5 GHz Xeon, 16 vCPUs).
    pub fn storage_xeon() -> Self {
        CpuSpec {
            name: "Xeon (storage)".to_string(),
            vcpus: 16,
            ghz: 2.5,
            preprocess_ips_per_core: 14.3,
            decompress_bps_per_core: 290.0e6,
            tdp_watts: 105.0,
            idle_watts: 30.0,
        }
    }

    /// The small Inferentia-instance CPU (inf1.2xlarge, 8 vCPUs).
    pub fn inf1_xeon() -> Self {
        CpuSpec {
            name: "Xeon (inf1)".to_string(),
            vcpus: 8,
            ghz: 2.5,
            preprocess_ips_per_core: 14.3,
            decompress_bps_per_core: 290.0e6,
            tdp_watts: 55.0,
            idle_watts: 15.0,
        }
    }

    /// Aggregate preprocessing throughput with `cores` dedicated cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the vCPU count.
    pub fn preprocess_ips(&self, cores: usize) -> f64 {
        assert!(cores > 0, "need at least one preprocessing core");
        assert!(cores <= self.vcpus, "more cores than vCPUs");
        self.preprocess_ips_per_core * cores as f64
    }

    /// Aggregate decompression throughput (compressed bytes/sec) with
    /// `cores` dedicated cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the vCPU count.
    pub fn decompress_bps(&self, cores: usize) -> f64 {
        assert!(cores > 0, "need at least one decompression core");
        assert!(cores <= self.vcpus, "more cores than vCPUs");
        self.decompress_bps_per_core * cores as f64
    }

    /// Power drawn at a utilization in `[0, 1]`.
    pub fn power_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.tdp_watts - self.idle_watts) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_host_preprocessing_matches_fig5() {
        // Fig 5(b): Ideal ≈ 123 IPS, preprocessing-bound on 8 cores.
        let host = CpuSpec::host_xeon(32);
        let ips = host.preprocess_ips(8);
        assert!((ips - 123.2).abs() < 1.0, "ips {ips}");
    }

    #[test]
    fn decompress_saturates_at_20gbps_with_8_cores() {
        // Fig 18: 8 cores ≈ 2.5 GB/s of compressed ingest (20 Gbps).
        let host = CpuSpec::host_xeon(32);
        let bps = host.decompress_bps(8);
        assert!((bps - 2.5e9).abs() < 0.1e9, "bps {bps}");
    }

    #[test]
    #[should_panic(expected = "more cores than vCPUs")]
    fn cannot_use_more_cores_than_vcpus() {
        CpuSpec::storage_xeon().preprocess_ips(17);
    }

    #[test]
    fn power_range() {
        let c = CpuSpec::storage_xeon();
        assert_eq!(c.power_at(0.0), c.idle_watts);
        assert_eq!(c.power_at(1.0), c.tdp_watts);
    }
}
