//! Calibrated hardware models for the NDPipe reproduction.
//!
//! The paper evaluates NDPipe on AWS EC2: `g4dn.4xlarge` storage servers
//! (Tesla T4, st1 HDD arrays), a `p3.2xlarge` Tuner (one V100), a
//! `p3.8xlarge` centralized baseline (two V100s used), `inf1.2xlarge`
//! (NeuronCoreV1), and 1–40 Gbps networks. None of that hardware exists
//! here, so this crate provides *analytic device models* calibrated to the
//! throughput, power and price anchors the paper reports (see
//! `DESIGN.md §Calibration constants`). The cluster simulator composes
//! these models; every experiment number is then *derived* from the same
//! parameters, so sweeps (bandwidth, batch size, #PipeStores) move for the
//! same reasons they move in the paper.
//!
//! Modules:
//!
//! - [`gpu`] — GPU / inference-accelerator specs (T4, V100, NeuronCoreV1),
//! - [`cpu`] — CPU pools with preprocessing and decompression rates,
//! - [`disk`] — HDD/SSD/RAID-5 sequential-read models (st1 volumes),
//! - [`net`] — network links with bandwidth/latency transfer times,
//! - [`power`] — component power draw and energy integration,
//! - [`cost`] — AWS on-demand price table and run-cost arithmetic,
//! - [`instance`] — whole-server presets matching the paper's EC2 fleet.

pub mod cost;
pub mod cpu;
pub mod disk;
pub mod gpu;
pub mod instance;
pub mod net;
pub mod power;

pub use cost::CostModel;
pub use cpu::CpuSpec;
pub use disk::DiskSpec;
pub use gpu::GpuSpec;
pub use instance::InstanceSpec;
pub use net::LinkSpec;
pub use power::{ComponentPower, EnergyMeter};

/// Bytes in one mebibyte; size constants below are expressed in MiB.
pub const MIB: f64 = 1024.0 * 1024.0;

/// Average raw photo size used throughout the paper's evaluation (a
/// "typical 2.7 MB JPEG").
pub const RAW_IMAGE_BYTES: f64 = 2.7 * 1e6;

/// Average preprocessed binary size (ImageNet-1K preprocessed to model
/// input, ~0.59 MB per image).
pub const PREPROC_IMAGE_BYTES: f64 = 0.59 * 1e6;

/// Compressed preprocessed binary size. Calibrated so SRV-C's network cap
/// at 10 Gbps lands where Fig 13 puts it (~4 PipeStore-equivalents for
/// ResNet50): deflate ratio ≈ 4× on preprocessed tensors.
pub const COMPRESSED_IMAGE_BYTES: f64 = PREPROC_IMAGE_BYTES / 4.0;

/// Label/metadata record size returned by offline inference (bytes).
pub const LABEL_BYTES: f64 = 64.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constants_match_paper_ratios() {
        // Preprocessed binaries are 17.5% of storage for 2.7MB images
        // (paper §5.4): 0.59 / (2.7 + 0.59) ≈ 0.179.
        let frac = PREPROC_IMAGE_BYTES / (RAW_IMAGE_BYTES + PREPROC_IMAGE_BYTES);
        assert!((frac - 0.175).abs() < 0.01, "frac {frac}");
        let ratio = PREPROC_IMAGE_BYTES / COMPRESSED_IMAGE_BYTES;
        assert!(ratio > 1.0, "compression must shrink binaries: {ratio}");
    }
}
