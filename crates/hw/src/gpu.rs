//! GPU and inference-accelerator models.

use serde::{Deserialize, Serialize};

/// An analytic GPU (or inference accelerator) model.
///
/// Throughput for DNN work is expressed relative to a Tesla T4 running an
/// optimized inference engine (`dnn_factor = 1.0`); per-model images/sec
/// anchors live with the model descriptions in the `dnn` crate, and a
/// device's throughput for model `m` is `anchor_ips(m) × dnn_factor`.
/// This preserves both the paper's absolute anchors and the relative
/// device ordering (V100 ≈ 3× T4, NeuronCoreV1 ≈ 0.4× T4).
///
/// # Example
///
/// ```
/// use hw::GpuSpec;
///
/// let t4 = GpuSpec::tesla_t4();
/// let v100 = GpuSpec::tesla_v100();
/// assert!(v100.dnn_factor > t4.dnn_factor);
/// assert!(v100.tdp_watts > t4.tdp_watts);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Tesla T4"`.
    pub name: String,
    /// Peak fp32 throughput in TFLOPS (for documentation/FLOP sanity only).
    pub fp32_tflops: f64,
    /// Device memory in GiB; bounds the usable batch size (Fig 19 OOM).
    pub memory_gib: f64,
    /// Board power at full utilization, watts.
    pub tdp_watts: f64,
    /// Board power when idle, watts.
    pub idle_watts: f64,
    /// DNN throughput relative to a T4 (see type docs).
    pub dnn_factor: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla T4 — the PipeStore accelerator (`g4dn.4xlarge`).
    pub fn tesla_t4() -> Self {
        GpuSpec {
            name: "Tesla T4".to_string(),
            fp32_tflops: 8.1,
            memory_gib: 16.0,
            tdp_watts: 70.0,
            idle_watts: 10.0,
            dnn_factor: 1.0,
        }
    }

    /// NVIDIA Tesla V100 — the Tuner / baseline-host GPU (`p3.*`).
    ///
    /// `dnn_factor = 3.0` calibrates to Fig 13: two V100s (SRV-I) match the
    /// aggregate of 5–7 T4 PipeStores.
    pub fn tesla_v100() -> Self {
        GpuSpec {
            name: "Tesla V100".to_string(),
            fp32_tflops: 15.7,
            memory_gib: 16.0,
            tdp_watts: 300.0,
            idle_watts: 25.0,
            dnn_factor: 3.0,
        }
    }

    /// AWS Inferentia NeuronCoreV1 (`inf1.2xlarge`).
    ///
    /// `dnn_factor = 0.31` calibrates to Fig 20: NDPipe-Inf1 needs 11–16
    /// PipeStores for offline inference where T4 PipeStores needed 4–7.
    /// Power estimated per the paper's reference 52.
    pub fn neuron_core_v1() -> Self {
        GpuSpec {
            name: "NeuronCoreV1".to_string(),
            fp32_tflops: 4.0,
            memory_gib: 8.0,
            tdp_watts: 12.0,
            idle_watts: 3.0,
            dnn_factor: 0.31,
        }
    }

    /// Images/sec this device sustains for a model whose T4 anchor is
    /// `t4_ips`, at a batch-size efficiency `batch_eff` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `t4_ips` or `batch_eff` is non-positive.
    pub fn inference_ips(&self, t4_ips: f64, batch_eff: f64) -> f64 {
        assert!(t4_ips > 0.0, "t4_ips must be positive");
        assert!(batch_eff > 0.0, "batch_eff must be positive");
        t4_ips * self.dnn_factor * batch_eff.min(1.0)
    }

    /// Seconds to run `flops` of DNN work, given the device's *effective*
    /// FLOPS for the model (`model_flops_per_image × t4_ips × dnn_factor`).
    ///
    /// # Panics
    ///
    /// Panics if `effective_flops` is non-positive.
    pub fn time_for_flops(&self, flops: f64, effective_flops: f64) -> f64 {
        assert!(effective_flops > 0.0, "effective_flops must be positive");
        flops / effective_flops
    }

    /// Power drawn at a given utilization in `[0, 1]` (linear interpolation
    /// between idle and TDP, the standard first-order model).
    pub fn power_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.tdp_watts - self.idle_watts) * u
    }

    /// Whether `batch_size` images of `bytes_per_image` activations plus
    /// `model_bytes` of weights/workspace fit in device memory.
    ///
    /// This implements the Fig 19 OOM guard: ViT with large batches
    /// exhausts a T4's 16 GiB.
    pub fn fits_batch(&self, model_bytes: f64, bytes_per_image: f64, batch_size: usize) -> bool {
        // Factor 3 ≈ activations kept for the forward pass, framework
        // workspace and double-buffering.
        let need = model_bytes + 3.0 * bytes_per_image * batch_size as f64;
        need <= self.memory_gib * 1024.0 * 1024.0 * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let t4 = GpuSpec::tesla_t4();
        let v100 = GpuSpec::tesla_v100();
        let inf1 = GpuSpec::neuron_core_v1();
        assert!(inf1.dnn_factor < t4.dnn_factor);
        assert!(t4.dnn_factor < v100.dnn_factor);
        assert!(inf1.tdp_watts < t4.tdp_watts);
        assert!(t4.tdp_watts < v100.tdp_watts);
    }

    #[test]
    fn inference_ips_scales_with_factor() {
        let v100 = GpuSpec::tesla_v100();
        // ResNet50 anchor from the paper: 2129 IPS on one T4 PipeStore.
        let ips = v100.inference_ips(2129.0, 1.0);
        assert!((ips - 6387.0).abs() < 1.0);
    }

    #[test]
    fn batch_efficiency_caps_at_one() {
        let t4 = GpuSpec::tesla_t4();
        assert_eq!(t4.inference_ips(1000.0, 2.0), t4.inference_ips(1000.0, 1.0));
    }

    #[test]
    fn power_interpolates() {
        let t4 = GpuSpec::tesla_t4();
        assert_eq!(t4.power_at(0.0), 10.0);
        assert_eq!(t4.power_at(1.0), 70.0);
        assert_eq!(t4.power_at(0.5), 40.0);
        assert_eq!(t4.power_at(2.0), 70.0); // clamped
    }

    #[test]
    fn oom_guard_matches_memory() {
        let t4 = GpuSpec::tesla_t4();
        // Small CNN batches fit.
        assert!(t4.fits_batch(100e6, 0.6e6, 512));
        // A huge model with big activations at batch 512 does not.
        assert!(!t4.fits_batch(2e9, 50e6, 512));
    }

    #[test]
    fn time_for_flops_is_linear() {
        let t4 = GpuSpec::tesla_t4();
        let t = t4.time_for_flops(8.0e12, 8.0e12);
        assert!((t - 1.0).abs() < 1e-12);
    }
}
