//! Network-link models.

use serde::{Deserialize, Serialize};

/// A point-to-point (or shared uplink) network model characterized by
/// bandwidth and one-way latency. The paper's default fabric is 10 Gbps
/// Ethernet; Fig 18 sweeps 1–40 Gbps.
///
/// # Example
///
/// ```
/// use hw::LinkSpec;
///
/// let link = LinkSpec::ethernet_gbps(10.0);
/// // A 2.7MB photo takes ~2.2ms on the wire.
/// let t = link.transfer_time_secs(2.7e6);
/// assert!(t > 0.002 && t < 0.003);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Nominal bandwidth in gigabits/sec.
    pub gbps: f64,
    /// One-way latency, seconds.
    pub latency_secs: f64,
    /// Fraction of nominal bandwidth achievable by a bulk flow
    /// (protocol + TCP overheads).
    pub efficiency: f64,
}

impl LinkSpec {
    /// A data-center Ethernet link of the given nominal rate.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is non-positive.
    pub fn ethernet_gbps(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        LinkSpec {
            gbps,
            latency_secs: 100.0e-6,
            efficiency: 0.94,
        }
    }

    /// Effective payload bandwidth in bytes/sec.
    pub fn effective_bps(&self) -> f64 {
        self.gbps * 1e9 / 8.0 * self.efficiency
    }

    /// Seconds to move `bytes` across the link (latency + serialization).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative.
    pub fn transfer_time_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        self.latency_secs + bytes / self.effective_bps()
    }

    /// Streaming throughput cap in items/sec for items of `bytes` each,
    /// ignoring per-item latency (pipelined bulk transfer).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is non-positive.
    pub fn items_per_sec(&self, bytes: f64) -> f64 {
        assert!(bytes > 0.0, "item size must be positive");
        self.effective_bps() / bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidth_below_nominal() {
        let l = LinkSpec::ethernet_gbps(10.0);
        assert!(l.effective_bps() < 1.25e9);
        assert!(l.effective_bps() > 1.1e9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let l = LinkSpec::ethernet_gbps(10.0);
        let t1 = l.transfer_time_secs(1e6) - l.latency_secs;
        let t2 = l.transfer_time_secs(2e6) - l.latency_secs;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn srv_p_network_cap_matches_fig13() {
        // SRV-P ships 0.59MB preprocessed binaries over 10Gbps:
        // ~1990 IPS ≈ one ResNet50 PipeStore (2129 IPS), which is why
        // NDPipe passes SRV-P at P1 = 1 store.
        let l = LinkSpec::ethernet_gbps(10.0);
        let ips = l.items_per_sec(0.59e6);
        assert!((1800.0..2200.0).contains(&ips), "ips {ips}");
    }

    #[test]
    fn one_gbps_is_ten_times_slower() {
        let a = LinkSpec::ethernet_gbps(1.0).items_per_sec(1e6);
        let b = LinkSpec::ethernet_gbps(10.0).items_per_sec(1e6);
        assert!((b / a - 10.0).abs() < 1e-9);
    }
}
