//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both are hand-rolled over [`Snapshot`] — the workspace's `serde` is a
//! vendored no-op shim, so JSON is built by string concatenation exactly
//! like the bench reports do, plus a recursive-descent [`validate_json`]
//! so smoke tests can assert well-formedness without a parser crate.

use crate::snapshot::{Sample, SampleValue, Snapshot};
use std::fmt::Write as _;

impl Snapshot {
    /// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
    /// per metric name, histograms as cumulative `_bucket{le=..}` plus
    /// `_sum`/`_count`, and a final `+Inf` bucket.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            if last_name != Some(s.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
                let _ = writeln!(out, "# TYPE {} {}", s.name, s.value.kind());
                last_name = Some(&s.name);
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, &[]), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        s.name,
                        label_block(&s.labels, &[]),
                        fmt_f64(*v)
                    );
                }
                SampleValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for &(upper, n) in &h.buckets {
                        cum += n;
                        let le = fmt_f64(upper);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            label_block(&s.labels, &[("le", &le)]),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_block(&s.labels, &[("le", "+Inf")]),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        label_block(&s.labels, &[]),
                        fmt_f64(h.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        label_block(&s.labels, &[]),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// JSON document: `{"samples": [{"name", "labels", "help", "kind",
    /// ...value fields}]}`. Histograms include derived `mean`/`p50`/
    /// `p95`/`p99` so dumps are readable without post-processing.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&sample_json(s));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn sample_json(s: &Sample) -> String {
    let mut o = String::from("{");
    let _ = write!(o, "\"name\": {}", json_str(&s.name));
    o.push_str(", \"labels\": {");
    for (i, (k, v)) in s.labels.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        let _ = write!(o, "{}: {}", json_str(k), json_str(v));
    }
    o.push('}');
    let _ = write!(o, ", \"help\": {}", json_str(&s.help));
    let _ = write!(o, ", \"kind\": {}", json_str(s.value.kind()));
    match &s.value {
        SampleValue::Counter(v) => {
            let _ = write!(o, ", \"value\": {v}");
        }
        SampleValue::Gauge(v) => {
            let _ = write!(o, ", \"value\": {}", json_f64(*v));
        }
        SampleValue::Histogram(h) => {
            let _ = write!(o, ", \"count\": {}", h.count);
            let _ = write!(o, ", \"sum\": {}", json_f64(h.sum));
            let _ = write!(o, ", \"min\": {}", json_f64(h.min));
            let _ = write!(o, ", \"max\": {}", json_f64(h.max));
            let _ = write!(o, ", \"mean\": {}", json_f64(h.mean()));
            let _ = write!(o, ", \"p50\": {}", json_f64(h.quantile(0.50)));
            let _ = write!(o, ", \"p95\": {}", json_f64(h.quantile(0.95)));
            let _ = write!(o, ", \"p99\": {}", json_f64(h.quantile(0.99)));
            o.push_str(", \"buckets\": [");
            for (i, &(upper, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                let _ = write!(o, "[{}, {}]", json_f64(upper), n);
            }
            o.push(']');
        }
    }
    o.push('}');
    o
}

/// Renders `{k1="v1",k2="v2"}` from sorted labels plus extras (used for
/// `le`), or nothing when both are empty.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut o = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            o.push(',');
        }
        first = false;
        let _ = write!(o, "{k}=\"{}\"", escape_label(v));
    }
    o.push('}');
    o
}

/// Prometheus float formatting: integral values without a trailing
/// `.0`, everything else via shortest-roundtrip `{}`.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// JSON has no NaN/Infinity: map them to 0 / ±1e308 rather than emit an
/// invalid document.
fn json_f64(v: f64) -> String {
    if v.is_nan() {
        "0".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "1e308" } else { "-1e308" }.to_string()
    } else {
        fmt_f64(v)
    }
}

fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\r' => o.push_str("\\r"),
            '\t' => o.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Checks that `s` is one complete, well-formed JSON value. Numbers,
/// strings (with escapes), arrays, objects, booleans and null are all
/// verified structurally. Returns the byte offset and a description of
/// the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = JsonParser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct JsonParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    /// Golden-format check: exact exposition text for a small registry.
    #[test]
    fn prometheus_exposition_golden() {
        let reg = Registry::new();
        reg.counter("ndpipe_demo_requests_total", "requests served")
            .add(7);
        reg.gauge_with(
            "ndpipe_demo_queue_depth",
            &[("stage", "decode")],
            "items queued",
        )
        .set(3.0);
        let h = reg.histogram("ndpipe_demo_latency_seconds", "request latency");
        // 0.5 and 2.0 are exact bucket bounds, so the exposition is
        // deterministic.
        h.observe(0.5);
        h.observe(0.5);
        h.observe(2.0);

        let got = reg.snapshot().to_prometheus();
        let want = "\
# HELP ndpipe_demo_latency_seconds request latency
# TYPE ndpipe_demo_latency_seconds histogram
ndpipe_demo_latency_seconds_bucket{le=\"0.5\"} 2
ndpipe_demo_latency_seconds_bucket{le=\"2\"} 3
ndpipe_demo_latency_seconds_bucket{le=\"+Inf\"} 3
ndpipe_demo_latency_seconds_sum 3
ndpipe_demo_latency_seconds_count 3
# HELP ndpipe_demo_queue_depth items queued
# TYPE ndpipe_demo_queue_depth gauge
ndpipe_demo_queue_depth{stage=\"decode\"} 3
# HELP ndpipe_demo_requests_total requests served
# TYPE ndpipe_demo_requests_total counter
ndpipe_demo_requests_total 7
";
        assert_eq!(got, want);
    }

    #[test]
    fn json_export_is_valid_and_contains_quantiles() {
        let reg = Registry::new();
        reg.counter_with("ops_total", &[("op", "a\"b")], "ops with a \"quote\"")
            .inc();
        let h = reg.histogram("lat_seconds", "latency");
        for i in 1..=100 {
            h.observe(i as f64 / 100.0);
        }
        let json = reg.snapshot().to_json();
        validate_json(&json).expect("exporter must emit valid JSON");
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"op\": \"a\\\"b\""));
    }

    #[test]
    fn validate_json_rejects_malformed() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("NaN").is_err());
        assert!(validate_json("01").is_ok()); // lenient: leading zero accepted
        assert!(validate_json("{\"a\": [1.5, -2e-3, true, null, \"x\\n\"]}").is_ok());
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Registry::new().snapshot();
        assert_eq!(snap.to_prometheus(), "");
        validate_json(&snap.to_json()).expect("empty snapshot JSON");
    }
}
