//! Point-in-time registry snapshots: mergeable across machines and
//! encodable for the RPC scrape path.
//!
//! A [`Snapshot`] is plain data — the Tuner pulls one per PipeStore over
//! the `Metrics` RPC op, tags each with a peer label, and folds them
//! with [`Snapshot::merge_from`] into a single cluster-wide view.

/// One metric's point-in-time value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`ndpipe_<subsystem>_..`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text (one line).
    pub help: String,
    /// The value, by metric kind.
    pub value: SampleValue,
}

impl Sample {
    /// Stable ordering/identity key: name then labels.
    fn key(&self) -> (&str, &[(String, String)]) {
        (&self.name, &self.labels)
    }
}

/// A sample's value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    /// Kind name as it appears in exports (`counter`/`gauge`/`histogram`).
    pub fn kind(&self) -> &'static str {
        match self {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        }
    }
}

/// A histogram's frozen state: sparse `(upper_bound, count)` buckets in
/// ascending bound order, plus count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Non-empty buckets: `(upper_bound, count)`, not cumulative.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]` by within-bucket linear
    /// interpolation, clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        let mut lower = self.min;
        for &(upper, n) in &self.buckets {
            let next = cum + n;
            if next as f64 >= target {
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - cum as f64) / n as f64).clamp(0.0, 1.0)
                };
                let hi = upper.min(self.max);
                let lo = lower.max(self.min).min(hi);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            cum = next;
            lower = upper;
        }
        self.max
    }

    /// Folds another histogram into this one (bucket-wise sum).
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: Vec<(f64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ua, na)), Some(&&(ub, nb))) if ua == ub => {
                    merged.push((ua, na + nb));
                    a.next();
                    b.next();
                }
                (Some(&&(ua, na)), Some(&&(ub, _))) if ua < ub => {
                    merged.push((ua, na));
                    a.next();
                }
                (Some(_), Some(&&(ub, nb))) => {
                    merged.push((ub, nb));
                    b.next();
                }
                (Some(&&(ua, na)), None) => {
                    merged.push((ua, na));
                    a.next();
                }
                (None, Some(&&(ub, nb))) => {
                    merged.push((ub, nb));
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// A frozen registry: every sample at one point in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Samples in registry (name, labels) order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Whether the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// First sample with this name (any labels).
    pub fn find(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Sample with this exact name and label set.
    pub fn find_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Sum of every counter sample with this name, across label sets.
    /// `None` when the name is absent.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let mut total = None;
        for s in &self.samples {
            if s.name == name {
                if let SampleValue::Counter(v) = s.value {
                    *total.get_or_insert(0) += v;
                }
            }
        }
        total
    }

    /// Adds a label to every sample (e.g. `peer=10.0.0.3:7401` before a
    /// cluster merge that should keep per-store resolution).
    pub fn with_label(mut self, key: &str, value: &str) -> Snapshot {
        for s in &mut self.samples {
            s.labels.push((key.to_string(), value.to_string()));
            s.labels.sort();
        }
        self
    }

    /// Folds `other` into `self`: samples with the same name + labels
    /// combine (counters add, gauges add, histograms merge bucket-wise);
    /// new samples append. Gauges add because every cluster-level gauge
    /// we expose (queue depths, live objects) is meaningful as a sum.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for theirs in &other.samples {
            match self.samples.iter_mut().find(|s| s.key() == theirs.key()) {
                Some(ours) => match (&mut ours.value, &theirs.value) {
                    (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
                    (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a += b,
                    (SampleValue::Histogram(a), SampleValue::Histogram(b)) => {
                        a.merge_from(b);
                    }
                    // Kind conflict across sources: keep ours, append
                    // theirs so nothing is silently dropped.
                    _ => self.samples.push(theirs.clone()),
                },
                None => self.samples.push(theirs.clone()),
            }
        }
        self.samples
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Merges many snapshots into a fresh cluster-wide view.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Snapshot>) -> Snapshot {
        let mut out = Snapshot::default();
        for p in parts {
            out.merge_from(p);
        }
        out
    }

    /// Encodes the snapshot for the RPC scrape path (little-endian,
    /// matching the repo's hand-rolled wire idiom).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 * self.samples.len() + 8);
        put_u32(&mut out, self.samples.len() as u32);
        for s in &self.samples {
            put_str(&mut out, &s.name);
            put_str(&mut out, &s.help);
            put_u32(&mut out, s.labels.len() as u32);
            for (k, v) in &s.labels {
                put_str(&mut out, k);
                put_str(&mut out, v);
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push(0);
                    put_u64(&mut out, *v);
                }
                SampleValue::Gauge(v) => {
                    out.push(1);
                    put_f64(&mut out, *v);
                }
                SampleValue::Histogram(h) => {
                    out.push(2);
                    put_u64(&mut out, h.count);
                    put_f64(&mut out, h.sum);
                    put_f64(&mut out, h.min);
                    put_f64(&mut out, h.max);
                    put_u32(&mut out, h.buckets.len() as u32);
                    for &(upper, n) in &h.buckets {
                        put_f64(&mut out, upper);
                        put_u64(&mut out, n);
                    }
                }
            }
        }
        out
    }

    /// Decodes a snapshot previously written by [`Snapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// A static description of the first malformation found.
    pub fn from_bytes(buf: &[u8]) -> Result<Snapshot, &'static str> {
        let mut c = Reader { buf, pos: 0 };
        let n = c.u32()? as usize;
        // Each sample needs ≥ 13 bytes (two empty strings, no labels,
        // counter): reject absurd counts before allocating.
        if n > buf.len() / 13 + 1 {
            return Err("sample count larger than payload");
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let name = c.string()?;
            let help = c.string()?;
            let n_labels = c.u32()? as usize;
            let mut labels = Vec::with_capacity(n_labels.min(64));
            for _ in 0..n_labels {
                let k = c.string()?;
                let v = c.string()?;
                labels.push((k, v));
            }
            let value = match c.u8()? {
                0 => SampleValue::Counter(c.u64()?),
                1 => SampleValue::Gauge(c.f64()?),
                2 => {
                    let count = c.u64()?;
                    let sum = c.f64()?;
                    let min = c.f64()?;
                    let max = c.f64()?;
                    let nb = c.u32()? as usize;
                    let mut buckets = Vec::with_capacity(nb.min(crate::metrics::BUCKETS));
                    for _ in 0..nb {
                        let upper = c.f64()?;
                        let n = c.u64()?;
                        buckets.push((upper, n));
                    }
                    SampleValue::Histogram(HistogramSnapshot {
                        count,
                        sum,
                        min,
                        max,
                        buckets,
                    })
                }
                _ => return Err("unknown sample kind"),
            };
            samples.push(Sample {
                name,
                labels,
                help,
                value,
            });
        }
        if c.pos != buf.len() {
            return Err("trailing bytes in snapshot");
        }
        Ok(Snapshot { samples })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or("snapshot payload truncated")?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or("snapshot payload truncated")?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, &'static str> {
        self.take(1)?
            .first()
            .copied()
            .ok_or("snapshot payload truncated")
    }
    fn u32(&mut self) -> Result<u32, &'static str> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| "snapshot payload truncated")?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, &'static str> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| "snapshot payload truncated")?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, &'static str> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| "snapshot payload truncated")?;
        Ok(f64::from_le_bytes(b))
    }
    fn string(&mut self) -> Result<String, &'static str> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "snapshot string not utf-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, v: u64) -> Sample {
        Sample {
            name: name.into(),
            labels: Vec::new(),
            help: "h".into(),
            value: SampleValue::Counter(v),
        }
    }

    #[test]
    fn merge_sums_matching_and_appends_new() {
        let mut a = Snapshot {
            samples: vec![counter("x_total", 3)],
        };
        let b = Snapshot {
            samples: vec![counter("x_total", 4), counter("y_total", 1)],
        };
        a.merge_from(&b);
        assert_eq!(a.counter_value("x_total"), Some(7));
        assert_eq!(a.counter_value("y_total"), Some(1));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn labels_separate_series() {
        let mut s1 = Snapshot {
            samples: vec![counter("ops_total", 2)],
        }
        .with_label("peer", "a");
        let s2 = Snapshot {
            samples: vec![counter("ops_total", 5)],
        }
        .with_label("peer", "b");
        s1.merge_from(&s2);
        assert_eq!(s1.len(), 2, "different peers must not collapse");
        assert_eq!(s1.counter_value("ops_total"), Some(7));
        assert!(s1.find_with("ops_total", &[("peer", "b")]).is_some());
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = HistogramSnapshot {
            count: 2,
            sum: 3.0,
            min: 1.0,
            max: 2.0,
            buckets: vec![(1.0, 1), (2.0, 1)],
        };
        let b = HistogramSnapshot {
            count: 3,
            sum: 10.0,
            min: 2.0,
            max: 4.0,
            buckets: vec![(2.0, 1), (4.0, 2)],
        };
        a.merge_from(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.buckets, vec![(1.0, 1), (2.0, 2), (4.0, 2)]);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert!((a.sum - 13.0).abs() < 1e-12);
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let snap = Snapshot {
            samples: vec![
                counter("a_total", 9),
                Sample {
                    name: "g".into(),
                    labels: vec![("k".into(), "v".into())],
                    help: "a gauge".into(),
                    value: SampleValue::Gauge(-2.25),
                },
                Sample {
                    name: "h_seconds".into(),
                    labels: Vec::new(),
                    help: "a histogram".into(),
                    value: SampleValue::Histogram(HistogramSnapshot {
                        count: 4,
                        sum: 1.5,
                        min: 0.1,
                        max: 0.9,
                        buckets: vec![(0.125, 1), (0.5, 2), (1.0, 1)],
                    }),
                },
            ],
        };
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(Snapshot::from_bytes(&[1, 2, 3]).is_err());
        // Absurd sample count.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Snapshot::from_bytes(&buf).is_err());
        // Trailing garbage.
        let snap = Snapshot {
            samples: vec![counter("a", 1)],
        };
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn quantiles_on_merged_histograms_stay_in_range() {
        let mut a = HistogramSnapshot::default();
        let b = HistogramSnapshot {
            count: 10,
            sum: 5.0,
            min: 0.25,
            max: 1.0,
            buckets: vec![(0.5, 5), (1.0, 5)],
        };
        a.merge_from(&b);
        let p50 = a.quantile(0.5);
        let p99 = a.quantile(0.99);
        assert!(p50 >= 0.25 && p50 <= 1.0);
        assert!(p99 >= p50 && p99 <= 1.0);
        assert_eq!(a.quantile(0.0).min(a.min), a.min);
    }
}
