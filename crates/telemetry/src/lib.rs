//! # ndpipe-telemetry — cluster-wide metrics & tracing
//!
//! NDPipe's design is steered by measured per-stage rates: APO balances
//! the Store and Tuner stages from throughput measurements, and the NPE
//! analysis depends on observed load / decompress / FE&Cl times. This
//! crate is the unified way those rates are observed:
//!
//! - [`Counter`] — monotonically increasing `u64` (requests, bytes),
//! - [`Gauge`] — instantaneous `f64` (queue depth, occupancy),
//! - [`Histogram`] — log-bucketed value distribution with p50/p95/p99
//!   estimates (latencies, batch sizes),
//! - [`SpanTimer`] — RAII stage timer recording into a histogram,
//! - [`Registry`] — a named collection of the above; every process has a
//!   [`global()`] registry and components with identity (a PipeStore, an
//!   object store) can own local ones,
//! - [`Snapshot`] — a point-in-time copy of a registry that can be
//!   merged across machines (the Tuner scrapes every PipeStore over RPC
//!   and folds the snapshots into one cluster-wide view), rendered as
//!   Prometheus text exposition ([`Snapshot::to_prometheus`]) or JSON
//!   ([`Snapshot::to_json`]), and shipped over the hand-rolled wire
//!   format ([`Snapshot::to_bytes`]).
//!
//! Hot-path cost is one relaxed atomic RMW per counter update and a few
//! per histogram observation; instrumented call sites additionally gate
//! on [`enabled()`] so the overhead bench can measure a true zero
//! baseline.
//!
//! ## Naming scheme
//!
//! `ndpipe_<subsystem>_<quantity>[_<unit>]` with Prometheus conventions:
//! `_total` for counters, `_seconds`/`_bytes` units, lowercase snake
//! case, dimensions as labels (`{op="describe"}`, `{stage="decode"}`).
//!
//! ```
//! use telemetry::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("ndpipe_demo_requests_total", "requests served").add(3);
//! let h = reg.histogram("ndpipe_demo_latency_seconds", "request latency");
//! h.observe(0.004);
//! h.observe(0.009);
//! let snap = reg.snapshot();
//! assert!(snap.to_prometheus().contains("ndpipe_demo_requests_total 3"));
//! assert!(telemetry::export::validate_json(&snap.to_json()).is_ok());
//! ```

pub mod export;
pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, SpanTimer};
pub use registry::Registry;
pub use snapshot::{HistogramSnapshot, Sample, SampleValue, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide registry. Singleton components (the RPC client, the
/// FT-DMP driver, Check-N-Run encoding) record here; components with
/// identity (each PipeStore) own local registries and are merged at
/// scrape time.
pub fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Whether instrumented call sites should record. Defaults to `true`;
/// the overhead benchmark flips it to measure an uninstrumented
/// baseline. Handles stay valid either way — only recording is skipped.
pub fn enabled() -> bool {
    // ndlint: allow(relaxed, reason = "advisory kill switch; a stale read only delays when recording toggles, it guards no data")
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording at instrumented call sites on or off (see
/// [`enabled`]).
pub fn set_enabled(on: bool) {
    // ndlint: allow(relaxed, reason = "advisory kill switch; no other memory is published through this flag")
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().clone();
        a.counter("ndpipe_test_global_total", "test").inc();
        let b = global();
        let snap = b.snapshot();
        assert!(snap.counter_value("ndpipe_test_global_total").unwrap_or(0) >= 1);
    }

    #[test]
    fn enable_flag_round_trips() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
