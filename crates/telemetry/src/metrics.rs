//! The metric primitives: atomic counters, gauges, log-bucketed
//! histograms and RAII span timers.
//!
//! Every type is a cheap-to-clone handle around shared atomics, so call
//! sites resolve a metric once (at construction / session start) and the
//! hot path never touches the registry.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log₂ buckets; bucket `i` holds values in
/// `(2^(i-1-BUCKET_SHIFT), 2^(i-BUCKET_SHIFT)]`.
pub const BUCKETS: usize = 64;
/// Exponent offset: bucket 0's upper bound is `2^-BUCKET_SHIFT`.
const BUCKET_SHIFT: i64 = 26;

/// Upper bound of bucket `i` (`2^(i - BUCKET_SHIFT)`), spanning ~15 ns
/// at the bottom to ~1.4e11 at the top — wide enough for latencies in
/// seconds, payloads in bytes and dimensionless ratios alike.
pub fn bucket_upper(i: usize) -> f64 {
    ((i as i64 - BUCKET_SHIFT) as f64).exp2()
}

/// Smallest bucket whose upper bound is ≥ `v`.
pub fn bucket_index(v: f64) -> usize {
    if !(v > 0.0) {
        return 0;
    }
    let idx = v.log2().ceil() as i64 + BUCKET_SHIFT;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Lock-free `f64` accumulator over an `AtomicU64` bit pattern.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        // ndlint: allow(relaxed, reason = "single scalar sample; scrapes tolerate torn-free stale reads, no dependent data")
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        // ndlint: allow(relaxed, reason = "single scalar sample; nothing is published through a gauge store")
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        // ndlint: allow(relaxed, reason = "CAS retry loop over one scalar; the value itself carries all the state")
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self.0.compare_exchange_weak(
                cur,
                next,
                // ndlint: allow(relaxed, reason = "CAS on one self-contained scalar; no other memory is ordered by it")
                Ordering::Relaxed,
                // ndlint: allow(relaxed, reason = "failure ordering of the same self-contained CAS")
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A monotonically increasing `u64` (requests, bytes, items).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (usually obtained from a
    /// [`crate::Registry`] instead).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ndlint: allow(relaxed, reason = "pure monotonic counter; scrapes only need eventual visibility")
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ndlint: allow(relaxed, reason = "pure monotonic counter; a slightly stale scrape is correct by design")
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous `f64` (queue depth, occupancy, live objects).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicF64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: f64) {
        self.0.update(|cur| cur + v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicF64::default(),
            min: AtomicF64(AtomicU64::new(f64::INFINITY.to_bits())),
            max: AtomicF64(AtomicU64::new(f64::NEG_INFINITY.to_bits())),
        }
    }
}

/// A log₂-bucketed value distribution: O(1) observation, quantile
/// estimates by within-bucket interpolation.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value. Non-finite values are dropped.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let c = &self.0;
        // ndlint: allow(relaxed, reason = "independent monotonic bucket tallies; snapshots are documented as consistent-enough, not atomic")
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // ndlint: allow(relaxed, reason = "monotonic observation counter; same consistent-enough snapshot contract")
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.update(|s| s + v);
        c.min.update(|m| m.min(v));
        c.max.update(|m| m.max(v));
    }

    /// Starts a scoped timer that observes the elapsed seconds on drop.
    pub fn start_timer(&self) -> SpanTimer {
        SpanTimer {
            hist: self.clone(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // ndlint: allow(relaxed, reason = "monotonic counter read; staleness is acceptable to scrapes")
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.0.sum.get()
    }

    /// A consistent-enough point-in-time copy (buckets are read one by
    /// one; concurrent writers may skew totals by in-flight updates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        // ndlint: allow(relaxed, reason = "snapshot is documented as consistent-enough; per-bucket skew from in-flight updates is accepted")
        let count = c.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in c.buckets.iter().enumerate() {
            // ndlint: allow(relaxed, reason = "same consistent-enough snapshot contract as the count read above")
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_upper(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: c.sum.get(),
            min: if count == 0 { 0.0 } else { c.min.get() },
            max: if count == 0 { 0.0 } else { c.max.get() },
            buckets,
        }
    }

    /// Estimated quantile `q` in `[0, 1]`; see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// RAII stage timer: records elapsed wall-clock seconds into its
/// histogram when dropped (or explicitly via
/// [`SpanTimer::observe_and_disarm`]).
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Seconds elapsed so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records now and disarms the drop-time observation, returning the
    /// elapsed seconds.
    pub fn observe_and_disarm(mut self) -> f64 {
        let secs = self.elapsed_secs();
        self.hist.observe(secs);
        self.armed = false;
        secs
    }

    /// Discards the span without recording.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(3.5);
        g.add(-1.0);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_bounds_cover_exact_powers() {
        // 2^k lands in the bucket whose upper bound is exactly 2^k.
        for k in [-20i64, -3, 0, 5, 20] {
            let v = (k as f64).exp2();
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "v={v} upper={}", bucket_upper(i));
            assert!(i == 0 || v > bucket_upper(i - 1));
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0); // 0.001 ..= 1.0
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500.5).abs() < 1e-6);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Log buckets are coarse; quantiles must be ordered and inside
        // the observed range.
        assert!(p50 >= 0.001 && p50 <= 1.0, "p50={p50}");
        assert!(p99 >= p50, "p50={p50} p99={p99}");
        assert!(h.quantile(0.0) >= 0.001);
        assert!(h.quantile(1.0) <= 1.0 + 1e-12);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.002);

        let t = h.start_timer();
        t.discard();
        assert_eq!(h.count(), 1, "discarded span must not record");

        let t = h.start_timer();
        let secs = t.observe_and_disarm();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 2, "observe_and_disarm records exactly once");
    }
}
