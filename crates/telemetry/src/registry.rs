//! The metric registry: a named, labelled collection of counters,
//! gauges and histograms.
//!
//! Lookup takes a `RwLock`; handles returned by `counter`/`gauge`/
//! `histogram` are cheap clones of the shared atomics, so resolve once
//! and keep the handle on hot paths.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{Sample, SampleValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::RwLock;

/// Identity of one time series: metric name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

enum MetricEntry {
    Counter { help: String, m: Counter },
    Gauge { help: String, m: Gauge },
    Histogram { help: String, m: Histogram },
}

impl MetricEntry {
    fn kind(&self) -> &'static str {
        match self {
            MetricEntry::Counter { .. } => "counter",
            MetricEntry::Gauge { .. } => "gauge",
            MetricEntry::Histogram { .. } => "histogram",
        }
    }
}

/// A collection of metrics keyed by `(name, labels)`.
///
/// Registering the same key twice returns a handle to the same
/// underlying metric; registering it with a different *kind* panics —
/// that is always a programming error worth failing loudly on.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<BTreeMap<MetricKey, MetricEntry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} series)", self.len())
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.get_or_insert(name, labels, help, "counter", || MetricEntry::Counter {
            help: help.to_string(),
            m: Counter::new(),
        })
        .into_counter()
    }

    /// Gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.get_or_insert(name, labels, help, "gauge", || MetricEntry::Gauge {
            help: help.to_string(),
            m: Gauge::new(),
        })
        .into_gauge()
    }

    /// Histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        self.get_or_insert(name, labels, help, "histogram", || MetricEntry::Histogram {
            help: help.to_string(),
            m: Histogram::new(),
        })
        .into_histogram()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        _help: &str,
        want_kind: &str,
        make: impl FnOnce() -> MetricEntry,
    ) -> Handle {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let key = (name.to_string(), sorted);

        // Fast path: already registered.
        {
            let entries = self.entries.read().expect("telemetry registry poisoned");
            if let Some(e) = entries.get(&key) {
                return Handle::of(e, name, want_kind);
            }
        }
        let mut entries = self.entries.write().expect("telemetry registry poisoned");
        let e = entries.entry(key).or_insert_with(make);
        Handle::of(e, name, want_kind)
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("telemetry registry poisoned")
            .len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes every series into a [`Snapshot`], in key order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.read().expect("telemetry registry poisoned");
        let samples = entries
            .iter()
            .map(|((name, labels), e)| {
                let (help, value) = match e {
                    MetricEntry::Counter { help, m } => {
                        (help.clone(), SampleValue::Counter(m.get()))
                    }
                    MetricEntry::Gauge { help, m } => (help.clone(), SampleValue::Gauge(m.get())),
                    MetricEntry::Histogram { help, m } => {
                        (help.clone(), SampleValue::Histogram(m.snapshot()))
                    }
                };
                Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    help,
                    value,
                }
            })
            .collect();
        Snapshot { samples }
    }
}

/// A kind-checked handle to a live entry, taken while a lock is held.
enum Handle {
    C(Counter),
    G(Gauge),
    H(Histogram),
}

impl Handle {
    fn of(e: &MetricEntry, name: &str, want_kind: &str) -> Handle {
        assert_eq!(
            e.kind(),
            want_kind,
            "metric `{name}` already registered as a {}, requested as a {want_kind}",
            e.kind()
        );
        match e {
            MetricEntry::Counter { m, .. } => Handle::C(m.clone()),
            MetricEntry::Gauge { m, .. } => Handle::G(m.clone()),
            MetricEntry::Histogram { m, .. } => Handle::H(m.clone()),
        }
    }

    fn into_counter(self) -> Counter {
        match self {
            Handle::C(m) => m,
            _ => unreachable!("kind checked in Handle::of"),
        }
    }

    fn into_gauge(self) -> Gauge {
        match self {
            Handle::G(m) => m,
            _ => unreachable!("kind checked in Handle::of"),
        }
    }

    fn into_histogram(self) -> Histogram {
        match self {
            Handle::H(m) => m,
            _ => unreachable!("kind checked in Handle::of"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn same_key_returns_same_metric() {
        let reg = Registry::new();
        reg.counter("c_total", "help").add(2);
        reg.counter("c_total", "help").add(3);
        assert_eq!(reg.counter("c_total", "help").get(), 5);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn labels_make_distinct_series() {
        let reg = Registry::new();
        reg.counter_with("ops_total", &[("op", "get")], "h").inc();
        reg.counter_with("ops_total", &[("op", "put")], "h").add(2);
        // Label order must not matter.
        let c = reg.counter_with("ops2_total", &[("a", "1"), ("b", "2")], "h");
        let c2 = reg.counter_with("ops2_total", &[("b", "2"), ("a", "1")], "h");
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
        assert_eq!(reg.len(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("ops_total"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", "h");
        reg.gauge("x", "h");
    }

    #[test]
    fn contention_totals_are_exact() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                // Half the threads resolve the handle once, half hammer
                // the registry lookup path too.
                let c = reg.counter("ndpipe_test_contended_total", "contention");
                let h = reg.histogram("ndpipe_test_contended_seconds", "contention");
                let g = reg.gauge("ndpipe_test_contended_depth", "contention");
                for i in 0..per_thread {
                    if t % 2 == 0 {
                        c.inc();
                        h.observe(0.001);
                    } else {
                        reg.counter("ndpipe_test_contended_total", "contention")
                            .inc();
                        reg.histogram("ndpipe_test_contended_seconds", "contention")
                            .observe(0.001);
                    }
                    if i % 1000 == 0 {
                        g.add(1.0);
                        g.add(-1.0);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        let snap = reg.snapshot();
        let expect = threads as u64 * per_thread;
        assert_eq!(
            snap.counter_value("ndpipe_test_contended_total"),
            Some(expect)
        );
        match &snap
            .find("ndpipe_test_contended_seconds")
            .expect("hist")
            .value
        {
            SampleValue::Histogram(h) => {
                assert_eq!(h.count, expect);
                assert!((h.sum - expect as f64 * 0.001).abs() < 1e-6 * expect as f64);
            }
            other => panic!("expected histogram, got {}", other.kind()),
        }
        match &snap
            .find("ndpipe_test_contended_depth")
            .expect("gauge")
            .value
        {
            SampleValue::Gauge(v) => assert!(v.abs() < 1e-9, "gauge must net to zero, got {v}"),
            other => panic!("expected gauge, got {}", other.kind()),
        }
    }
}
