//! DNN substrate for the NDPipe reproduction.
//!
//! Two halves, matching how the paper uses models:
//!
//! 1. **Architecture profiles** ([`profile`]) — stage-level descriptions of
//!    the five evaluation models (ShuffleNetV2, InceptionV3, ResNet50,
//!    ResNeXt101, ViT-B/16) carrying per-stage forward FLOPs, activation
//!    output sizes and parameter counts, plus the paper's per-PipeStore
//!    throughput anchors. APO's partition search (§5.3), the Fig 9 traffic
//!    sweep and every cluster-simulation experiment consume these.
//! 2. **Executable mini-models** ([`linear`], [`mlp`], [`trainer`]) — a
//!    from-scratch MLP stack with real forward/backward (SGD + momentum)
//!    that runs the accuracy experiments (Fig 4, Fig 17, Table 1/2) at
//!    laptop scale on the synthetic drifting datasets. Fine-tuning freezes
//!    the feature-extraction layers and trains the classifier tail exactly
//!    as FT-DMP prescribes; full training updates everything.
//!
//! [`convergence`] implements the δ-balance / deficiency-margin machinery
//! of the paper's §5.2 convergence analysis (Theorem 5.1, Lemma 5.2).

pub mod cnn;
pub mod convergence;
pub mod linear;
pub mod mlp;
pub mod optim;
pub mod profile;
pub mod trainer;

pub use linear::Linear;
pub use mlp::Mlp;
pub use optim::Optimizer;
pub use profile::{ModelProfile, StageProfile};
pub use trainer::{EvalMetrics, TrainConfig, Trainer};
