//! Stage-level architecture profiles of the paper's evaluation models.
//!
//! APO (§5.3) partitions a model at "partitionable points … which do not
//! include areas with residual blocks and skip connections", estimating
//! per-segment execution time from FLOPs and transfer time from activation
//! output sizes. This module encodes those stage graphs with published
//! FLOPs/parameter/activation figures for ResNet50, InceptionV3,
//! ResNeXt101, ShuffleNetV2 and ViT-B/16, plus the per-PipeStore
//! throughput anchors the paper reports (Fig 13: 2129 / 2439 / 449 / 277
//! images per second on one T4 for ResNet50 / InceptionV3 / ResNeXt101 /
//! ViT).

use serde::{Deserialize, Serialize};

/// One partition-able stage of a model (e.g. ResNet50's `Conv3` group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name as the paper labels it (`"Conv1"`, `"Mixed6"`, …).
    pub name: String,
    /// Forward-pass FLOPs per image through this stage.
    pub flops: f64,
    /// Activation output size per image, bytes (f32). This is what a
    /// PipeStore ships to the Tuner if the model is cut after this stage.
    pub output_bytes: f64,
    /// Parameter bytes held by this stage.
    pub param_bytes: f64,
}

/// A whole-model profile: ordered stages plus calibration anchors.
///
/// # Example
///
/// ```
/// use dnn::ModelProfile;
///
/// let r50 = ModelProfile::resnet50();
/// assert_eq!(r50.stages().len(), 6); // Conv1..Conv5 + FC
/// let total = r50.total_flops();
/// assert!(total > 3.5e9 && total < 4.5e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    name: String,
    stages: Vec<StageProfile>,
    /// Images/sec one T4 PipeStore sustains at the reference batch size
    /// (128), running the full model.
    t4_inference_ips: f64,
    /// Preprocessed input bytes per image.
    input_bytes: f64,
    /// Number of trailing stages that are trainable under fine-tuning
    /// (the classifier / task module).
    trainable_tail: usize,
    /// Activation working-set bytes per image at the reference batch size
    /// (drives the Fig 19 OOM guard).
    activation_bytes_per_image: f64,
}

impl ModelProfile {
    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, `trainable_tail` is zero or exceeds
    /// the stage count, or any anchor is non-positive.
    pub fn new(
        name: impl Into<String>,
        stages: Vec<StageProfile>,
        t4_inference_ips: f64,
        input_bytes: f64,
        trainable_tail: usize,
        activation_bytes_per_image: f64,
    ) -> Self {
        assert!(!stages.is_empty(), "a model needs stages");
        assert!(
            trainable_tail >= 1 && trainable_tail <= stages.len(),
            "trainable tail out of range"
        );
        assert!(t4_inference_ips > 0.0, "throughput anchor must be positive");
        assert!(input_bytes > 0.0, "input size must be positive");
        assert!(
            activation_bytes_per_image > 0.0,
            "activation size must be positive"
        );
        ModelProfile {
            name: name.into(),
            stages,
            t4_inference_ips,
            input_bytes,
            trainable_tail,
            activation_bytes_per_image,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered stages.
    pub fn stages(&self) -> &[StageProfile] {
        &self.stages
    }

    /// The T4 throughput anchor (images/sec at batch 128).
    pub fn t4_inference_ips(&self) -> f64 {
        self.t4_inference_ips
    }

    /// Preprocessed input bytes per image.
    pub fn input_bytes(&self) -> f64 {
        self.input_bytes
    }

    /// Activation working set per image, bytes.
    pub fn activation_bytes_per_image(&self) -> f64 {
        self.activation_bytes_per_image
    }

    /// Number of trailing trainable stages.
    pub fn trainable_tail(&self) -> usize {
        self.trainable_tail
    }

    /// Index of the first trainable stage.
    pub fn first_trainable_stage(&self) -> usize {
        self.stages.len() - self.trainable_tail
    }

    /// Total forward FLOPs per image.
    pub fn total_flops(&self) -> f64 {
        self.stages.iter().map(|s| s.flops).sum()
    }

    /// Total parameter bytes.
    pub fn total_param_bytes(&self) -> f64 {
        self.stages.iter().map(|s| s.param_bytes).sum()
    }

    /// Parameter bytes of the trainable tail (what Check-N-Run deltas and
    /// weight synchronization move).
    pub fn trainable_param_bytes(&self) -> f64 {
        self.stages[self.first_trainable_stage()..]
            .iter()
            .map(|s| s.param_bytes)
            .sum()
    }

    /// Partition points: `0` = nothing offloaded (raw inputs shipped),
    /// `k` = stages `0..k` run on the PipeStore. `stages.len()` = the
    /// whole model (the paper's `+FC` extreme).
    pub fn partition_points(&self) -> usize {
        self.stages.len() + 1
    }

    /// Forward FLOPs of the PipeStore side at partition point `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds [`ModelProfile::partition_points`].
    pub fn flops_before(&self, k: usize) -> f64 {
        assert!(k < self.partition_points(), "partition point out of range");
        self.stages[..k].iter().map(|s| s.flops).sum()
    }

    /// Forward FLOPs of the Tuner side at partition point `k`.
    pub fn flops_after(&self, k: usize) -> f64 {
        assert!(k < self.partition_points(), "partition point out of range");
        self.stages[k..].iter().map(|s| s.flops).sum()
    }

    /// Bytes per image crossing the network at partition point `k`
    /// (raw preprocessed input for `k == 0`, otherwise the activation
    /// output of stage `k-1`).
    pub fn cut_bytes(&self, k: usize) -> f64 {
        assert!(k < self.partition_points(), "partition point out of range");
        if k == 0 {
            self.input_bytes
        } else {
            self.stages[k - 1].output_bytes
        }
    }

    /// Effective device FLOPS for this model on a device with relative
    /// throughput `dnn_factor` (T4 = 1.0): `total_flops × t4_ips × factor`.
    ///
    /// Dividing stage FLOPs by this value yields stage execution time on
    /// that device, consistent with the whole-model anchor.
    ///
    /// # Panics
    ///
    /// Panics if `dnn_factor` is non-positive.
    pub fn effective_flops(&self, dnn_factor: f64) -> f64 {
        assert!(dnn_factor > 0.0, "dnn_factor must be positive");
        self.total_flops() * self.t4_inference_ips * dnn_factor
    }

    /// Batch-size efficiency relative to the reference batch (128):
    /// a saturating `b / (b + 16)` curve normalized to 1.0 at 128.
    /// Mirrors Fig 19's throughput-vs-batch shape.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batch_efficiency(batch: usize) -> f64 {
        assert!(batch > 0, "batch size must be positive");
        let eff = |b: f64| b / (b + 16.0);
        eff(batch as f64) / eff(128.0)
    }

    /// All five evaluation models, in the order Table 2 lists them.
    pub fn zoo() -> Vec<ModelProfile> {
        vec![
            ModelProfile::shufflenet_v2(),
            ModelProfile::resnet50(),
            ModelProfile::inception_v3(),
            ModelProfile::resnext101(),
            ModelProfile::vit_b16(),
        ]
    }

    /// The four models Figs 13–16 plot.
    pub fn figure_models() -> Vec<ModelProfile> {
        vec![
            ModelProfile::resnet50(),
            ModelProfile::inception_v3(),
            ModelProfile::resnext101(),
            ModelProfile::vit_b16(),
        ]
    }

    /// ResNet50 (224×224): five conv groups + FC, ≈4.1 GFLOPs, 25.6 M
    /// params. Per-PipeStore anchor 2129 IPS (Fig 13).
    pub fn resnet50() -> Self {
        let mb = 1e6;
        ModelProfile::new(
            "ResNet50",
            vec![
                stage("Conv1", 0.24e9, 0.80 * mb, 0.04e6 * 4.0),
                stage("Conv2", 0.86e9, 3.21 * mb, 0.86e6 * 4.0),
                stage("Conv3", 1.04e9, 1.61 * mb, 4.86e6 * 4.0),
                stage("Conv4", 1.18e9, 0.80 * mb, 28.4e6 * 4.0),
                // Conv5 ends in global average pooling: 2048 floats out.
                stage("Conv5", 0.81e9, 2048.0 * 4.0, 60.0e6 * 4.0 / 4.0),
                stage(
                    "FC",
                    0.004e9,
                    1000.0 * 4.0,
                    (2048.0 * 1000.0 + 1000.0) * 4.0,
                ),
            ],
            2129.0,
            0.59e6,
            1,
            3.0e6,
        )
    }

    /// InceptionV3 (299×299): stem + three inception groups + FC,
    /// ≈5.7 GFLOPs, 23.8 M params. Anchor 2439 IPS.
    pub fn inception_v3() -> Self {
        let mb = 1e6;
        ModelProfile::new(
            "InceptionV3",
            vec![
                stage("Stem", 1.00e9, 1.41 * mb, 1.0e6 * 4.0),
                stage("Mixed5", 1.30e9, 1.41 * mb, 2.6e6 * 4.0),
                stage("Mixed6", 2.40e9, 0.89 * mb, 10.8e6 * 4.0),
                stage("Mixed7", 1.00e9, 2048.0 * 4.0, 7.3e6 * 4.0),
                stage(
                    "FC",
                    0.004e9,
                    1000.0 * 4.0,
                    (2048.0 * 1000.0 + 1000.0) * 4.0,
                ),
            ],
            2439.0,
            0.59e6,
            1,
            3.4e6,
        )
    }

    /// ResNeXt101-32x8d (224×224): ≈16.5 GFLOPs, 88.8 M params.
    /// Anchor 449 IPS.
    pub fn resnext101() -> Self {
        let mb = 1e6;
        ModelProfile::new(
            "ResNeXt101",
            vec![
                stage("Conv1", 0.24e9, 0.80 * mb, 0.04e6 * 4.0),
                stage("Conv2", 2.40e9, 3.21 * mb, 1.5e6 * 4.0),
                stage("Conv3", 4.20e9, 1.61 * mb, 9.0e6 * 4.0),
                stage("Conv4", 7.00e9, 0.80 * mb, 55.0e6 * 4.0),
                stage("Conv5", 2.60e9, 2048.0 * 4.0, 21.0e6 * 4.0),
                stage(
                    "FC",
                    0.004e9,
                    1000.0 * 4.0,
                    (2048.0 * 1000.0 + 1000.0) * 4.0,
                ),
            ],
            449.0,
            0.59e6,
            1,
            5.5e6,
        )
    }

    /// ShuffleNetV2-1.0x (224×224): ≈0.30 GFLOPs, 2.3 M params.
    /// No per-PipeStore anchor is printed in the paper; 5200 IPS keeps it
    /// proportionally faster than ResNet50 as its FLOPs suggest, damped by
    /// memory-bound inefficiency.
    pub fn shufflenet_v2() -> Self {
        let mb = 1e6;
        ModelProfile::new(
            "ShuffleNetV2",
            vec![
                stage("Conv1", 0.012e9, 0.40 * mb, 0.001e6 * 4.0),
                stage("Stage2", 0.044e9, 0.46 * mb, 0.2e6 * 4.0),
                stage("Stage3", 0.096e9, 0.23 * mb, 0.6e6 * 4.0),
                stage("Stage4", 0.088e9, 0.11 * mb, 1.2e6 * 4.0),
                stage("Conv5", 0.056e9, 1024.0 * 4.0, 0.2e6 * 4.0),
                stage(
                    "FC",
                    0.002e9,
                    1000.0 * 4.0,
                    (1024.0 * 1000.0 + 1000.0) * 4.0,
                ),
            ],
            5200.0,
            0.59e6,
            1,
            1.2e6,
        )
    }

    /// ViT-B/16 (224×224): patch embed + 12 encoder blocks (grouped in
    /// four) + task head, ≈17.6 GFLOPs, 86 M params. Anchor 277 IPS.
    /// Activations are an order of magnitude heavier than the CNNs',
    /// which is what OOMs large batches in Fig 19.
    pub fn vit_b16() -> Self {
        // 197 tokens × 768 dims of f32 = 605 KB between any two blocks.
        let tok_bytes = 197.0 * 768.0 * 4.0;
        let block3 = 4.25e9; // three encoder blocks
        ModelProfile::new(
            "ViT",
            vec![
                stage("PatchEmbed", 0.35e9, tok_bytes, 0.6e6 * 4.0),
                stage("Enc1-3", block3, tok_bytes, 21.3e6 * 4.0),
                stage("Enc4-6", block3, tok_bytes, 21.3e6 * 4.0),
                stage("Enc7-9", block3, tok_bytes, 21.3e6 * 4.0),
                // The last group ends at the CLS token: 768 floats.
                stage("Enc10-12", block3, 768.0 * 4.0, 21.3e6 * 4.0),
                stage(
                    "Head",
                    0.003e9,
                    1000.0 * 4.0,
                    (768.0 * 1000.0 + 1000.0) * 4.0,
                ),
            ],
            277.0,
            0.59e6,
            1,
            12.0e6,
        )
    }
}

fn stage(name: &str, flops: f64, output_bytes: f64, param_bytes: f64) -> StageProfile {
    StageProfile {
        name: name.to_string(),
        flops,
        output_bytes,
        param_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_five_models_with_distinct_names() {
        let zoo = ModelProfile::zoo();
        assert_eq!(zoo.len(), 5);
        let mut names: Vec<&str> = zoo.iter().map(|m| m.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn published_flops_are_in_range() {
        let checks = [
            ("ShuffleNetV2", 0.25e9, 0.35e9),
            ("ResNet50", 3.8e9, 4.4e9),
            ("InceptionV3", 5.0e9, 6.4e9),
            ("ResNeXt101", 15.0e9, 18.0e9),
            ("ViT", 16.5e9, 18.5e9),
        ];
        for m in ModelProfile::zoo() {
            let (_, lo, hi) = checks
                .iter()
                .find(|(n, _, _)| *n == m.name())
                .expect("model in checks");
            let f = m.total_flops();
            assert!(f >= *lo && f <= *hi, "{}: {f}", m.name());
        }
    }

    #[test]
    fn anchors_match_fig13() {
        assert_eq!(ModelProfile::resnet50().t4_inference_ips(), 2129.0);
        assert_eq!(ModelProfile::inception_v3().t4_inference_ips(), 2439.0);
        assert_eq!(ModelProfile::resnext101().t4_inference_ips(), 449.0);
        assert_eq!(ModelProfile::vit_b16().t4_inference_ips(), 277.0);
    }

    #[test]
    fn partition_arithmetic_is_consistent() {
        let m = ModelProfile::resnet50();
        for k in 0..m.partition_points() {
            let total = m.flops_before(k) + m.flops_after(k);
            assert!((total - m.total_flops()).abs() < 1.0, "point {k}");
        }
        assert_eq!(m.flops_before(0), 0.0);
        assert_eq!(m.flops_after(m.stages().len()), 0.0);
    }

    #[test]
    fn cut_bytes_shrink_deep_in_the_network() {
        // The §5.1 claim: deeper cuts ship less data — in particular the
        // post-GAP cut (+Conv5) is tiny compared to raw inputs.
        let m = ModelProfile::resnet50();
        assert!(m.cut_bytes(5) < m.cut_bytes(0) / 50.0);
        // But shallow conv cuts can be *bigger* than the input (Conv2).
        assert!(m.cut_bytes(2) > m.cut_bytes(0));
    }

    #[test]
    fn trainable_tail_is_the_fc() {
        let m = ModelProfile::resnet50();
        assert_eq!(m.first_trainable_stage(), 5);
        // FC of ResNet50: 2048×1000 + 1000 params ≈ 8.2 MB.
        let fc_bytes = m.trainable_param_bytes();
        assert!((fc_bytes - 8.2e6).abs() < 0.2e6, "{fc_bytes}");
    }

    #[test]
    fn batch_efficiency_saturates() {
        assert!(ModelProfile::batch_efficiency(1) < 0.1);
        assert!((ModelProfile::batch_efficiency(128) - 1.0).abs() < 1e-9);
        assert!(ModelProfile::batch_efficiency(512) > 1.0);
        assert!(ModelProfile::batch_efficiency(512) < 1.1);
    }

    #[test]
    fn effective_flops_reproduce_anchor() {
        let m = ModelProfile::resnet50();
        let eff = m.effective_flops(1.0);
        // One image of total_flops work at effective speed = 1/anchor sec.
        let ips = eff / m.total_flops();
        assert!((ips - 2129.0).abs() < 1e-6);
    }

    #[test]
    fn vit_activations_dwarf_cnn_activations() {
        let vit = ModelProfile::vit_b16();
        let r50 = ModelProfile::resnet50();
        assert!(vit.activation_bytes_per_image() > 3.0 * r50.activation_bytes_per_image());
    }
}
