//! Forward-only convolutional feature extractor.
//!
//! The paper's weight-freeze layers are CNN stacks; PipeStores only ever
//! run them *forward* (fine-tuning freezes them, inference is forward by
//! definition). This module provides a small conv→pool→conv→GAP extractor
//! over NCHW image tensors, used by the §7.1 video extension and by
//! image-shaped demos. Training still happens in the MLP head.

use rand::Rng;
use std::sync::OnceLock;
use tensor::conv::{
    conv2d_prepacked_opts, global_avg_pool, max_pool2d, Conv2dSpec, ConvOpts, PackedConvWeight,
};
use tensor::{default_math_policy, init, MathPolicy, Tensor};

/// A fixed (weight-freeze) convolutional feature extractor:
/// `[conv3x3 → ReLU → maxpool2] × stages → global average pool`.
///
/// # Example
///
/// ```
/// use dnn::cnn::CnnFeatureExtractor;
/// use rand::{rngs::StdRng, SeedableRng};
/// use tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let fe = CnnFeatureExtractor::new(3, &[8, 16], &mut rng);
/// let images = Tensor::zeros(&[2, 3, 16, 16]);
/// let feats = fe.features(&images);
/// assert_eq!(feats.dims(), &[2, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct CnnFeatureExtractor {
    /// One `(weight, bias)` per conv stage.
    stages: Vec<(Tensor, Tensor)>,
    /// Per-stage packed weight panels, built on first use. Weights are
    /// frozen after construction, so no invalidation is needed — this is
    /// the conv half of the packed-weight cache (see `Linear::packed`
    /// for the trainable half).
    packed: Vec<OnceLock<PackedConvWeight>>,
    in_channels: usize,
}

impl CnnFeatureExtractor {
    /// Builds an extractor with the given per-stage output channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or `in_channels == 0`.
    pub fn new<R: Rng + ?Sized>(in_channels: usize, channels: &[usize], rng: &mut R) -> Self {
        assert!(in_channels > 0, "need at least one input channel");
        assert!(!channels.is_empty(), "need at least one conv stage");
        let mut stages = Vec::with_capacity(channels.len());
        let mut c_in = in_channels;
        for &c_out in channels {
            let fan_in = c_in * 9;
            let w = init::kaiming_normal(&[c_out, c_in, 3, 3], fan_in, rng);
            let b = Tensor::zeros(&[c_out]);
            stages.push((w, b));
            c_in = c_out;
        }
        let packed = (0..stages.len()).map(|_| OnceLock::new()).collect();
        CnnFeatureExtractor {
            stages,
            packed,
            in_channels,
        }
    }

    /// Number of conv stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Output feature dimensionality (last stage's channels).
    pub fn feature_dim(&self) -> usize {
        self.stages.last().expect("non-empty").0.dims()[0]
    }

    /// Expected input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Extracts `[n, feature_dim]` features from `[n, c, h, w]` images
    /// under the session's default [`MathPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches or the spatial size
    /// collapses below the kernel before the last stage.
    pub fn features(&self, images: &Tensor) -> Tensor {
        self.features_with(images, default_math_policy())
    }

    /// [`CnnFeatureExtractor::features`] under an explicit
    /// [`MathPolicy`]. Each stage runs conv + bias + ReLU as one fused
    /// GEMM epilogue (bit-identical to the unfused sequence), so no
    /// intermediate pre-activation tensor is materialized.
    ///
    /// # Panics
    ///
    /// Panics if the channel count mismatches or the spatial size
    /// collapses below the kernel before the last stage.
    pub fn features_with(&self, images: &Tensor, policy: MathPolicy) -> Tensor {
        assert_eq!(images.shape().rank(), 4, "input must be NCHW");
        assert_eq!(images.dims()[1], self.in_channels, "channel count mismatch");
        let conv_spec = Conv2dSpec::new(3, 1, 1);
        let pool_spec = Conv2dSpec::new(2, 2, 0);
        let opts = ConvOpts {
            policy,
            fuse_relu: true,
            ..ConvOpts::default()
        };
        let mut h = images.clone();
        for (i, (w, b)) in self.stages.iter().enumerate() {
            let pw = self.packed[i].get_or_init(|| PackedConvWeight::pack(w));
            h = conv2d_prepacked_opts(&h, pw, Some(b), conv_spec, opts);
            // Pool between stages while the plane is big enough.
            if i + 1 < self.stages.len() && h.dims()[2] >= 2 && h.dims()[3] >= 2 {
                h = max_pool2d(&h, pool_spec);
            }
        }
        global_avg_pool(&h)
    }

    /// Parameter count (all frozen).
    pub fn param_count(&self) -> usize {
        self.stages.iter().map(|(w, b)| w.len() + b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let fe = CnnFeatureExtractor::new(3, &[8, 12, 16], &mut rng);
        assert_eq!(fe.n_stages(), 3);
        assert_eq!(fe.feature_dim(), 16);
        let x = Tensor::randn(&[4, 3, 16, 16], &mut rng);
        let f = fe.features(&x);
        assert_eq!(f.dims(), &[4, 16]);
        assert!(f.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_are_deterministic_replicas() {
        let mut rng = StdRng::seed_from_u64(2);
        let fe = CnnFeatureExtractor::new(1, &[4, 8], &mut rng);
        let replica = fe.clone();
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        assert_eq!(fe.features(&x).data(), replica.features(&x).data());
    }

    #[test]
    fn distinct_images_get_distinct_features() {
        let mut rng = StdRng::seed_from_u64(3);
        let fe = CnnFeatureExtractor::new(1, &[8], &mut rng);
        let a = Tensor::randn(&[1, 1, 8, 8], &mut rng);
        let b = Tensor::randn(&[1, 1, 8, 8], &mut rng);
        assert_ne!(fe.features(&a).data(), fe.features(&b).data());
    }

    #[test]
    fn param_count_matches_arithmetic() {
        let mut rng = StdRng::seed_from_u64(4);
        let fe = CnnFeatureExtractor::new(3, &[8], &mut rng);
        assert_eq!(fe.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn wrong_channels_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let fe = CnnFeatureExtractor::new(3, &[8], &mut rng);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let _ = fe.features(&x);
    }
}
