//! Optimizers for the trainable classifier tail.
//!
//! Fine-tuning in the paper's artifact runs on standard framework
//! optimizers; this module provides the two that matter — SGD with
//! momentum (the default everywhere in this reproduction) and Adam — as a
//! value type the training paths thread through.

/// A first-order optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// SGD with heavy-ball momentum: `v ← μv − lr·g; θ ← θ + v`.
    Sgd {
        /// Momentum coefficient `μ` in `[0, 1)`.
        momentum: f32,
    },
    /// Adam (Kingma & Ba): bias-corrected first/second moment estimates.
    Adam {
        /// First-moment decay `β₁`.
        beta1: f32,
        /// Second-moment decay `β₂`.
        beta2: f32,
        /// Numerical floor `ε`.
        eps: f32,
    },
}

impl Optimizer {
    /// SGD with the given momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `momentum ∈ [0, 1)`.
    pub fn sgd(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Optimizer::Sgd { momentum }
    }

    /// Adam with the standard defaults (0.9, 0.999, 1e-8).
    pub fn adam() -> Self {
        Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl Default for Optimizer {
    /// The reproduction's default: SGD with momentum 0.9.
    fn default() -> Self {
        Optimizer::sgd(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Optimizer::default(), Optimizer::Sgd { momentum: 0.9 });
        assert!(matches!(Optimizer::adam(), Optimizer::Adam { .. }));
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_rejected() {
        let _ = Optimizer::sgd(1.0);
    }
}
