//! Convergence analysis of pipelined FT-DMP (paper §5.2).
//!
//! The paper proves that splitting fine-tuning into `N_run` pipeline runs
//! over sub-datasets still converges, provided the classifier starts
//! δ-balanced (Arora et al.'s condition) and the sub-datasets are
//! similarly distributed. Two quantities drive the result:
//!
//! - **Lemma 5.2** — the inter-run loss jump is bounded with confidence
//!   `θ` by `Δ = sqrt(log(2P/θ) / (2m))` where `P` is the number of
//!   weights and `m` the number of training samples per run,
//! - **Theorem 5.1** — run `p+1` reaches loss `ε` within
//!   `T ≥ log((l_p + Δ)/ε) / (η · c^{2(N−1)/N})` iterations, where `η` is
//!   the learning rate, `c` the deficiency margin and `N` the number of
//!   classifier layers.
//!
//! This module computes both bounds and checks δ-balancedness of an
//! actual classifier stack, so experiments can verify the theory's
//! preconditions on the live model (Fig 17's empirical counterpart).

use crate::linear::Linear;
use tensor::linalg::Gemm;

/// Lemma 5.2's inter-run loss bound `Δ = sqrt(log(2P/θ) / (2m))`.
///
/// - `num_weights` — total trainable weights `P`,
/// - `num_samples` — training samples per run `m`,
/// - `confidence` — union-bound confidence `θ` in `(0, 1)`.
///
/// # Panics
///
/// Panics if any count is zero or `confidence` is outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use dnn::convergence::inter_run_loss_bound;
///
/// // More data per run → smaller jump between runs.
/// let few = inter_run_loss_bound(10_000, 1_000, 0.05);
/// let many = inter_run_loss_bound(10_000, 100_000, 0.05);
/// assert!(many < few);
/// ```
pub fn inter_run_loss_bound(num_weights: usize, num_samples: usize, confidence: f64) -> f64 {
    assert!(num_weights > 0, "need at least one weight");
    assert!(num_samples > 0, "need at least one sample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    ((2.0 * num_weights as f64 / confidence).ln() / (2.0 * num_samples as f64)).sqrt()
}

/// Theorem 5.1's iteration bound: the number of iterations after which the
/// next run's loss is guaranteed ≤ `target_loss`, starting from the
/// previous run's converged loss `prev_loss`.
///
/// - `lr` — learning rate `η`,
/// - `margin` — deficiency margin `c > 0`,
/// - `layers` — classifier depth `N ≥ 1`,
/// - `delta` — the Lemma 5.2 bound.
///
/// # Panics
///
/// Panics if `lr`, `margin` or `target_loss` is non-positive, `layers`
/// is zero, or `delta`/`prev_loss` is negative.
pub fn iteration_bound(
    lr: f64,
    margin: f64,
    layers: usize,
    prev_loss: f64,
    delta: f64,
    target_loss: f64,
) -> f64 {
    assert!(lr > 0.0, "learning rate must be positive");
    assert!(margin > 0.0, "deficiency margin must be positive");
    assert!(layers >= 1, "need at least one layer");
    assert!(prev_loss >= 0.0 && delta >= 0.0, "losses are non-negative");
    assert!(target_loss > 0.0, "target loss must be positive");
    let n = layers as f64;
    let rate = lr * margin.powf(2.0 * (n - 1.0) / n);
    (((prev_loss + delta) / target_loss).ln() / rate).max(0.0)
}

/// Maximum Gram-matrix imbalance `max_i ‖W_{i+1}ᵀW_{i+1} − W_i W_iᵀ‖_F`
/// across consecutive classifier layers — the δ of δ-balancedness.
///
/// Returns 0.0 for stacks of fewer than two layers (trivially balanced).
pub fn delta_balance(layers: &[Linear]) -> f64 {
    let mut worst = 0.0f64;
    for pair in layers.windows(2) {
        let wi = pair[0].weights();
        let wj = pair[1].weights();
        // W_{i+1}: [d2, d1], W_i: [d1, d0]; both Grams are [d1, d1].
        let gram_next = Gemm::new(wj, wj).transpose_a().run();
        let gram_this = Gemm::new(wi, wi).transpose_b().run();
        let diff = gram_next.sub(&gram_this).frobenius_norm() as f64;
        worst = worst.max(diff);
    }
    worst
}

/// Whether a classifier stack is δ-balanced for the given δ.
pub fn is_delta_balanced(layers: &[Linear], delta: f64) -> bool {
    delta_balance(layers) <= delta
}

/// Simulates the loss trajectory implied by the theory: each run decays
/// the loss exponentially at rate `η·c^{2(N−1)/N}` and run boundaries add
/// at most `Δ`. Returns the final loss after `runs` runs of
/// `iters_per_run` iterations starting from `initial_loss`.
///
/// Used by tests and the Fig 17 analysis to show that for reasonable
/// `N_run` the end loss stays near the unpipelined one.
///
/// # Panics
///
/// Panics if `runs` or `iters_per_run` is zero, or parameters violate the
/// bounds' preconditions.
pub fn pipelined_loss_trajectory(
    lr: f64,
    margin: f64,
    layers: usize,
    initial_loss: f64,
    delta: f64,
    runs: usize,
    iters_per_run: usize,
) -> Vec<f64> {
    assert!(runs > 0 && iters_per_run > 0, "need work to simulate");
    assert!(lr > 0.0 && margin > 0.0 && layers >= 1, "bad parameters");
    let n = layers as f64;
    let rate = lr * margin.powf(2.0 * (n - 1.0) / n);
    let mut loss = initial_loss;
    let mut trace = Vec::with_capacity(runs);
    for run in 0..runs {
        if run > 0 {
            loss += delta;
        }
        loss *= (-rate * iters_per_run as f64).exp();
        trace.push(loss);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delta_shrinks_with_more_samples() {
        let d1 = inter_run_loss_bound(1_000_000, 10_000, 0.05);
        let d2 = inter_run_loss_bound(1_000_000, 1_000_000, 0.05);
        assert!(d2 < d1);
        // Paper-scale: FC of ResNet50 (~2M weights), 400K images/run.
        let d = inter_run_loss_bound(2_049_000, 400_000, 0.05);
        assert!(d < 0.01, "Δ = {d} should be tiny at paper scale");
    }

    #[test]
    fn delta_grows_with_more_weights() {
        let small = inter_run_loss_bound(1_000, 10_000, 0.05);
        let big = inter_run_loss_bound(100_000_000, 10_000, 0.05);
        assert!(big > small);
    }

    #[test]
    fn iteration_bound_monotonicity() {
        // Lower target loss needs more iterations.
        let t1 = iteration_bound(0.1, 0.5, 2, 1.0, 0.01, 0.1);
        let t2 = iteration_bound(0.1, 0.5, 2, 1.0, 0.01, 0.01);
        assert!(t2 > t1);
        // Bigger learning rate converges faster.
        let t3 = iteration_bound(0.2, 0.5, 2, 1.0, 0.01, 0.1);
        assert!(t3 < t1);
        // Already-converged start needs zero iterations.
        let t4 = iteration_bound(0.1, 0.5, 2, 0.05, 0.0, 0.1);
        assert_eq!(t4, 0.0);
    }

    #[test]
    fn balanced_init_is_nearly_balanced() {
        let mut rng = StdRng::seed_from_u64(31);
        // Wide balanced-Gaussian layers have approximately equal Grams.
        let stack = vec![
            Linear::new(256, 256, &mut rng),
            Linear::new(256, 256, &mut rng),
        ];
        let d = delta_balance(&stack);
        // For balanced-Gaussian 256×256 layers the Gram difference
        // concentrates around sqrt(2·d) ≈ 22.6; anything far above that
        // would indicate a broken initializer.
        assert!(d < 30.0, "imbalance {d}");
        assert!(is_delta_balanced(&stack, 30.0));
    }

    #[test]
    fn grossly_unbalanced_stack_detected() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut a = Linear::new(8, 8, &mut rng);
        let b = Linear::new(8, 8, &mut rng);
        // Blow up the first layer's weights.
        a.set_weights(a.weights().scale(100.0), a.bias().clone());
        let d = delta_balance(&[a, b]);
        assert!(d > 100.0, "imbalance {d}");
    }

    #[test]
    fn single_layer_is_trivially_balanced() {
        let mut rng = StdRng::seed_from_u64(33);
        let stack = vec![Linear::new(16, 4, &mut rng)];
        assert_eq!(delta_balance(&stack), 0.0);
    }

    #[test]
    fn trajectory_matches_fig17_shape() {
        // With paper-scale Δ, splitting the same iteration budget into
        // 1, 2 or 3 runs lands at nearly the same loss; aggressive
        // splitting (tiny runs) hurts — the catastrophic-forgetting cliff
        // the paper sees at N_run = 4 with small sub-datasets.
        let total_iters = 3000;
        let delta_small = 0.004;
        let end = |runs: usize| {
            *pipelined_loss_trajectory(0.001, 0.8, 2, 1.0, delta_small, runs, total_iters / runs)
                .last()
                .unwrap()
        };
        let l1 = end(1);
        let l3 = end(3);
        assert!((l3 - l1).abs() < 0.05, "l1 {l1} vs l3 {l3}");
        // With a large Δ (dissimilar/small sub-datasets), many runs hurt.
        let end_big = |runs: usize| {
            *pipelined_loss_trajectory(0.001, 0.8, 2, 1.0, 0.5, runs, total_iters / runs)
                .last()
                .unwrap()
        };
        assert!(end_big(6) > end_big(1));
    }
}
