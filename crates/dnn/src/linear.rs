//! Fully-connected layer with hand-written backward pass.

use rand::Rng;
use std::sync::{Arc, Mutex, PoisonError};
use tensor::linalg::Gemm;
use tensor::pack::PackedB;
use tensor::quant::{self, QuantizedMatrix};
use tensor::{default_math_policy, init, MathPolicy, Tensor};

/// A dense layer `y = x Wᵀ + b` with SGD-with-momentum state.
///
/// Weights are stored `[out, in]`; inputs and outputs are row-major
/// batches `[n, in]` / `[n, out]`.
///
/// # Example
///
/// ```
/// use dnn::Linear;
/// use tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = Linear::new(4, 2, &mut rng);
/// let x = Tensor::zeros(&[3, 4]);
/// let y = layer.forward(&x);
/// assert_eq!(y.dims(), &[3, 2]);
/// ```
#[derive(Debug)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
    vw: Tensor,
    vb: Tensor,
    /// Adam state, allocated on first Adam step: (m_w, v_w, m_b, v_b, t).
    adam: Option<AdamState>,
    /// Version counter for `w`, bumped on every weight mutation. Keys the
    /// packed-forward-weight cache: frozen layers (never mutated) pack
    /// once and reuse the panels every batch.
    w_version: u64,
    /// Lazily prepared forward weights for [`Linear::forward_with`],
    /// keyed by the `(w_version, policy)` they were built for: f32
    /// panels for `Deterministic`/`Fast`, a quantized matrix for `Int8`.
    packed: Mutex<Option<(u64, MathPolicy, CachedW)>>,
}

/// Policy-specific prepared forward weights.
#[derive(Debug, Clone)]
enum CachedW {
    /// Packed `wᵀ` panels for the f32 kernel families.
    F32(Arc<PackedB>),
    /// Symmetrically quantized `w` for the int8 path.
    Int8(Arc<QuantizedMatrix>),
}

impl Clone for Linear {
    fn clone(&self) -> Self {
        let packed = self
            .packed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        Linear {
            w: self.w.clone(),
            b: self.b.clone(),
            vw: self.vw.clone(),
            vb: self.vb.clone(),
            adam: self.adam.clone(),
            w_version: self.w_version,
            packed: Mutex::new(packed),
        }
    }
}

#[derive(Debug, Clone)]
struct AdamState {
    mw: Tensor,
    vw: Tensor,
    mb: Tensor,
    vb: Tensor,
    t: u32,
}

/// Gradients of a [`Linear`] layer for one batch.
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// `∂L/∂W`, shape `[out, in]`.
    pub dw: Tensor,
    /// `∂L/∂b`, shape `[out]`.
    pub db: Tensor,
    /// `∂L/∂x`, shape `[n, in]` — propagate to the previous layer.
    pub dx: Tensor,
}

impl Linear {
    /// A new layer with δ-balanced Gaussian weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(d_in: usize, d_out: usize, rng: &mut R) -> Self {
        assert!(d_in > 0 && d_out > 0, "layer dimensions must be positive");
        Linear {
            w: init::balanced_linear(d_out, d_in, 1.0, rng),
            b: Tensor::zeros(&[d_out]),
            vw: Tensor::zeros(&[d_out, d_in]),
            vb: Tensor::zeros(&[d_out]),
            adam: None,
            w_version: 0,
            packed: Mutex::new(None),
        }
    }

    /// Marks the weights as changed, invalidating the packed cache.
    fn bump_version(&mut self) {
        self.w_version = self.w_version.wrapping_add(1);
    }

    /// The prepared forward weights for `policy`, rebuilt only when the
    /// weights changed since the last build or the cached representation
    /// does not fit the policy (the two f32 policies share one pack; the
    /// int8 path quantizes instead).
    fn packed_forward_weights(&self, policy: MathPolicy) -> CachedW {
        let want_int8 = policy == MathPolicy::Int8;
        let mut guard = self.packed.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((v, p, cached)) = guard.as_ref() {
            let compatible = (*p == MathPolicy::Int8) == want_int8;
            if *v == self.w_version && compatible {
                return cached.clone();
            }
        }
        let cached = if want_int8 {
            CachedW::Int8(Arc::new(quant::QuantizedMatrix::quantize(&self.w)))
        } else {
            CachedW::F32(Arc::new(PackedB::pack_nt(&self.w)))
        };
        *guard = Some((self.w_version, policy, cached.clone()));
        cached
    }

    /// Input dimensionality.
    pub fn d_in(&self) -> usize {
        self.w.dims()[1]
    }

    /// The layer's weight-version counter: bumped on every weight
    /// mutation, stable across clones. Keys both the packed-panel cache
    /// and the RPC server's published model snapshots.
    pub fn version(&self) -> u64 {
        self.w_version
    }

    /// Output dimensionality.
    pub fn d_out(&self) -> usize {
        self.w.dims()[0]
    }

    /// The weight matrix `[out, in]`.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.b
    }

    /// Overwrites the weights (used by model distribution / deltas).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn set_weights(&mut self, w: Tensor, b: Tensor) {
        assert_eq!(w.dims(), self.w.dims(), "weight shape mismatch");
        assert_eq!(b.dims(), self.b.dims(), "bias shape mismatch");
        self.w = w;
        self.b = b;
        self.bump_version();
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass over a batch `[n, in]` → `[n, out]` under the
    /// session's default [`MathPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from `d_in`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_with(x, default_math_policy())
    }

    /// Forward pass under an explicit [`MathPolicy`]. `Deterministic`
    /// and `Fast` run `x·wᵀ` over cached prepacked panels; `Int8`
    /// dynamically quantizes `x` against cached quantized weights.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from `d_in`.
    pub fn forward_with(&self, x: &Tensor, policy: MathPolicy) -> Tensor {
        assert_eq!(x.dims()[1], self.d_in(), "input width mismatch");
        match self.packed_forward_weights(policy) {
            CachedW::F32(pb) => Gemm::prepacked_b(x, &pb)
                .policy(policy)
                .run()
                .add_row_bias(&self.b),
            CachedW::Int8(wq) => quant::matmul_nt_quant(x, &wq).add_row_bias(&self.b),
        }
    }

    /// Backward pass: given the upstream gradient `dy` `[n, out]` and the
    /// cached input `x` `[n, in]`, computes all three gradients.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn backward(&self, x: &Tensor, dy: &Tensor) -> LinearGrads {
        assert_eq!(x.dims()[0], dy.dims()[0], "batch size mismatch");
        assert_eq!(dy.dims()[1], self.d_out(), "grad width mismatch");
        LinearGrads {
            dw: Gemm::new(dy, x).transpose_a().run(),
            db: dy.sum_rows(),
            dx: Gemm::new(dy, &self.w).run(),
        }
    }

    /// SGD-with-momentum update: `v ← μv − lr·g; θ ← θ + v`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or the gradient shapes differ.
    pub fn apply(&mut self, grads: &LinearGrads, lr: f32, momentum: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.vw = self.vw.scale(momentum);
        self.vw.axpy(-lr, &grads.dw);
        self.w = self.w.add(&self.vw);
        self.vb = self.vb.scale(momentum);
        self.vb.axpy(-lr, &grads.db);
        self.b = self.b.add(&self.vb);
        self.bump_version();
    }

    /// One update step under any [`crate::optim::Optimizer`]. For SGD this is exactly
    /// [`Linear::apply`]; Adam allocates its moment state lazily.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or gradient shapes differ.
    pub fn step(&mut self, grads: &LinearGrads, lr: f32, opt: crate::optim::Optimizer) {
        use crate::optim::Optimizer;
        match opt {
            Optimizer::Sgd { momentum } => self.apply(grads, lr, momentum),
            Optimizer::Adam { beta1, beta2, eps } => {
                assert!(lr > 0.0, "learning rate must be positive");
                let state = self.adam.get_or_insert_with(|| AdamState {
                    mw: Tensor::zeros(self.w.dims()),
                    vw: Tensor::zeros(self.w.dims()),
                    mb: Tensor::zeros(self.b.dims()),
                    vb: Tensor::zeros(self.b.dims()),
                    t: 0,
                });
                state.t += 1;
                let t = state.t as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                let adam_update =
                    |theta: &mut Tensor, m: &mut Tensor, v: &mut Tensor, g: &Tensor| {
                        for i in 0..g.len() {
                            let gi = g.data()[i];
                            let mi = beta1 * m.data()[i] + (1.0 - beta1) * gi;
                            let vi = beta2 * v.data()[i] + (1.0 - beta2) * gi * gi;
                            m.data_mut()[i] = mi;
                            v.data_mut()[i] = vi;
                            let m_hat = mi / bc1;
                            let v_hat = vi / bc2;
                            theta.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                        }
                    };
                adam_update(&mut self.w, &mut state.mw, &mut state.vw, &grads.dw);
                adam_update(&mut self.b, &mut state.mb, &mut state.vb, &grads.db);
                self.bump_version();
            }
        }
    }

    /// Resets momentum buffers and Adam state (used between pipeline
    /// runs).
    pub fn reset_momentum(&mut self) {
        self.vw = Tensor::zeros(self.vw.dims());
        self.vb = Tensor::zeros(self.vb.dims());
        self.adam = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::activation;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(5, 3, &mut rng);
        let x = Tensor::randn(&[7, 5], &mut rng);
        assert_eq!(l.forward(&x).dims(), &[7, 3]);
        assert_eq!(l.param_count(), 18);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(&[5, 4], &mut rng);
        let labels = [0usize, 1, 2, 0, 1];

        let loss = |l: &Linear| activation::cross_entropy(&l.forward(&x), &labels);
        let logits = l.forward(&x);
        let dy = activation::cross_entropy_grad(&logits, &labels);
        let grads = l.backward(&x, &dy);

        let eps = 1e-2;
        // Check a sample of weight entries.
        for &(i, j) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let orig = l.weights().at(&[i, j]);
            let mut wp = l.weights().clone();
            wp.set(&[i, j], orig + eps);
            let mut lp = l.clone();
            lp.set_weights(wp, l.bias().clone());
            let mut wm = l.weights().clone();
            wm.set(&[i, j], orig - eps);
            let mut lm = l.clone();
            lm.set_weights(wm, l.bias().clone());
            let num = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            let ana = grads.dw.at(&[i, j]);
            assert!((num - ana).abs() < 1e-2, "dW[{i},{j}]: {num} vs {ana}");
        }
        // Check bias gradient.
        let orig_b = l.bias().clone();
        let mut bp = orig_b.clone();
        bp.set(&[1], orig_b.at(&[1]) + eps);
        let mut lp = l.clone();
        lp.set_weights(l.weights().clone(), bp);
        let mut bm = orig_b.clone();
        bm.set(&[1], orig_b.at(&[1]) - eps);
        let mut lm = l.clone();
        lm.set_weights(l.weights().clone(), bm);
        let num = (loss(&lp) - loss(&lm)) / (2.0 * eps);
        assert!((num - grads.db.at(&[1])).abs() < 1e-2);
        // dx has the input's shape.
        assert_eq!(grads.dx.dims(), x.dims());
        let _ = &mut l;
    }

    #[test]
    fn sgd_descends_on_a_toy_problem() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        // Learn to classify x by sign of first coordinate.
        let x = Tensor::from_vec(vec![1.0, 0.3, -1.0, 0.1, 2.0, -0.5, -2.0, 0.8], &[4, 2]);
        let labels = [0usize, 1, 0, 1];
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for step in 0..200 {
            let logits = l.forward(&x);
            let loss = activation::cross_entropy(&logits, &labels);
            if step == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            let dy = activation::cross_entropy_grad(&logits, &labels);
            let g = l.backward(&x, &dy);
            l.apply(&g, 0.5, 0.9);
        }
        assert!(
            last_loss < first_loss * 0.1,
            "loss {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn adam_descends_on_a_toy_problem() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 0.3, -1.0, 0.1, 2.0, -0.5, -2.0, 0.8], &[4, 2]);
        let labels = [0usize, 1, 0, 1];
        let opt = crate::optim::Optimizer::adam();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..200 {
            let logits = l.forward(&x);
            let loss = activation::cross_entropy(&logits, &labels);
            if step == 0 {
                first = loss;
            }
            last = loss;
            let dy = activation::cross_entropy_grad(&logits, &labels);
            let g = l.backward(&x, &dy);
            l.step(&g, 0.05, opt);
        }
        assert!(last < first * 0.1, "adam loss {first} -> {last}");
    }

    #[test]
    fn adam_state_resets_with_momentum() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[2, 2], &mut rng);
        let dy = Tensor::randn(&[2, 2], &mut rng);
        let g = l.backward(&x, &dy);
        l.step(&g, 0.01, crate::optim::Optimizer::adam());
        assert!(l.adam.is_some());
        l.reset_momentum();
        assert!(l.adam.is_none());
    }

    #[test]
    fn packed_cache_invalidates_on_every_mutation_path() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 6], &mut rng);
        // Pack per call (same operand form as the cache) so the check is
        // bit-exact under every math policy.
        let fresh = |l: &Linear, x: &Tensor| {
            Gemm::prepacked_b(x, &PackedB::pack_nt(l.weights()))
                .run()
                .add_row_bias(l.bias())
        };
        // Populate the cache, then mutate through each path and check the
        // cached forward tracks the live weights bit-for-bit.
        assert_eq!(l.forward(&x), fresh(&l, &x));

        l.set_weights(l.weights().scale(2.0), l.bias().clone());
        assert_eq!(l.forward(&x), fresh(&l, &x), "after set_weights");

        let dy = Tensor::randn(&[3, 4], &mut rng);
        let g = l.backward(&x, &dy);
        l.apply(&g, 0.1, 0.9);
        assert_eq!(l.forward(&x), fresh(&l, &x), "after sgd apply");

        l.step(&g, 0.01, crate::optim::Optimizer::adam());
        assert_eq!(l.forward(&x), fresh(&l, &x), "after adam step");

        // Clones carry the cache but stay independent.
        let c = l.clone();
        l.set_weights(l.weights().scale(0.5), l.bias().clone());
        assert_eq!(c.forward(&x), fresh(&c, &x), "clone after parent mutation");
        assert_eq!(l.forward(&x), fresh(&l, &x), "parent after mutation");
    }

    #[test]
    fn forward_with_switches_policies_on_one_cache() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut l = Linear::new(8, 5, &mut rng);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let det = l.forward_with(&x, MathPolicy::Deterministic);
        // Int8 replaces the cached f32 pack; the result tracks the f32
        // product within the quantization error bound.
        let q = l.forward_with(&x, MathPolicy::Int8);
        assert_eq!(q.dims(), det.dims());
        let amax = x.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let wmax = l.weights().data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let (sa, sw) = (amax / 127.0, wmax / 127.0);
        let bound = 8.0 * (amax * sw / 2.0 + wmax * sa / 2.0 + sa * sw / 4.0) * 1.05 + 1e-6;
        for (a, b) in q.data().iter().zip(det.data()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
        // Switching back re-packs f32 and is bit-identical to the first
        // deterministic run; mutation still invalidates the int8 cache.
        assert_eq!(l.forward_with(&x, MathPolicy::Deterministic), det);
        let before = l.forward_with(&x, MathPolicy::Int8);
        l.set_weights(l.weights().scale(2.0), l.bias().clone());
        let after = l.forward_with(&x, MathPolicy::Int8);
        assert_ne!(before.data(), after.data(), "int8 cache went stale");
    }

    #[test]
    fn momentum_reset() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[2, 2], &mut rng);
        let dy = Tensor::randn(&[2, 2], &mut rng);
        let g = l.backward(&x, &dy);
        l.apply(&g, 0.1, 0.9);
        assert!(l.vw.frobenius_norm() > 0.0);
        l.reset_momentum();
        assert_eq!(l.vw.frobenius_norm(), 0.0);
    }
}
