//! Executable multi-layer perceptron with a feature/classifier split.
//!
//! The paper's fine-tuning setup (§2.1) freezes the feature-extraction
//! layers and trains the classifier tail. `Mlp` makes that split a
//! first-class concept: layers `0..split` are the *weight-freeze* feature
//! extractor, layers `split..` the *trainable* classifier. FT-DMP runs
//! [`Mlp::features`] on PipeStores and the classifier update on the Tuner.

use crate::linear::Linear;
use rand::Rng;
use tensor::{activation, default_math_policy, MathPolicy, Tensor};

/// An MLP with ReLU between layers and a feature/classifier boundary.
///
/// # Example
///
/// ```
/// use dnn::Mlp;
/// use tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // 8-dim input → [16, 12] features → 4 classes; classifier = last layer.
/// let m = Mlp::new(&[8, 16, 12, 4], 2, &mut rng);
/// let x = Tensor::zeros(&[3, 8]);
/// assert_eq!(m.forward(&x).dims(), &[3, 4]);
/// assert_eq!(m.features(&x).dims(), &[3, 12]);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    split: usize,
}

impl Mlp {
    /// Builds an MLP with the given layer widths.
    ///
    /// `dims = [in, h1, ..., out]` produces `dims.len() - 1` layers.
    /// `split` is the index of the first *trainable* (classifier) layer;
    /// `split == 0` means everything is trainable, `split == n_layers`
    /// would freeze everything and is rejected.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or `split` is out of range.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], split: usize, rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let n_layers = dims.len() - 1;
        assert!(
            split < n_layers,
            "split {split} leaves no trainable layer (of {n_layers})"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers, split }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Index of the first trainable (classifier) layer.
    pub fn split(&self) -> usize {
        self.split
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].d_in()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.layers.last().expect("non-empty").d_out()
    }

    /// Feature dimensionality at the freeze boundary.
    pub fn feature_dim(&self) -> usize {
        if self.split == 0 {
            self.input_dim()
        } else {
            self.layers[self.split - 1].d_out()
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Aggregate weights version: folds every layer's
    /// [`Linear::version`] so *any* weight mutation (full install, delta
    /// apply, optimizer step) changes the value. Keys arc-swap-style
    /// model-snapshot publication on the RPC server — equal versions mean
    /// a published `Arc<Mlp>` is still current.
    pub fn weights_version(&self) -> u64 {
        self.layers.iter().enumerate().fold(0u64, |acc, (i, l)| {
            acc.wrapping_mul(31)
                .wrapping_add(l.version())
                .wrapping_add(i as u64)
        })
    }

    /// Parameter count of the trainable classifier tail.
    pub fn classifier_param_count(&self) -> usize {
        self.layers[self.split..]
            .iter()
            .map(Linear::param_count)
            .sum()
    }

    /// The trainable classifier layers (for convergence checks and
    /// Check-N-Run deltas).
    pub fn classifier_layers(&self) -> &[Linear] {
        &self.layers[self.split..]
    }

    /// Mutable access to the classifier layers (for applying distributed
    /// weight deltas).
    pub fn classifier_layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers[self.split..]
    }

    /// Full forward pass: `[n, in]` → logits `[n, classes]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = activation::relu(&h);
            }
        }
        h
    }

    /// Feature extraction: the weight-freeze prefix only (what a PipeStore
    /// computes and ships to the Tuner). For `split == 0` this is the
    /// identity. Runs under the session's default [`MathPolicy`].
    pub fn features(&self, x: &Tensor) -> Tensor {
        self.features_with(x, default_math_policy())
    }

    /// [`Mlp::features`] under an explicit [`MathPolicy`]. The frozen
    /// prefix is exactly where the opt-in fast and int8 kernel families
    /// pay off: it never trains, so its packed (or quantized) weights are
    /// built once and reused every batch.
    pub fn features_with(&self, x: &Tensor, policy: MathPolicy) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers[..self.split] {
            h = activation::relu(&layer.forward_with(&h, policy));
        }
        h
    }

    /// Classifier-only forward from precomputed features (what the Tuner
    /// computes).
    pub fn classify_features(&self, features: &Tensor) -> Tensor {
        let mut h = features.clone();
        for (i, layer) in self.layers[self.split..].iter().enumerate() {
            h = layer.forward(&h);
            if self.split + i + 1 < self.layers.len() {
                h = activation::relu(&h);
            }
        }
        h
    }

    /// One SGD step training layers `freeze_below..`, back-propagating the
    /// cross-entropy loss. Returns the pre-update batch loss.
    ///
    /// - `freeze_below = 0` → full training,
    /// - `freeze_below = self.split()` → fine-tuning (FT-DMP's Tuner-side
    ///   update),
    ///
    /// # Panics
    ///
    /// Panics if `freeze_below >= n_layers` (nothing to train) or shapes
    /// mismatch.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        lr: f32,
        momentum: f32,
        freeze_below: usize,
    ) -> f32 {
        self.train_step_with(
            x,
            labels,
            lr,
            crate::optim::Optimizer::sgd(momentum),
            freeze_below,
        )
    }

    /// Like [`Mlp::train_step`] but under any [`crate::optim::Optimizer`]
    /// (e.g. Adam for the classifier tail).
    ///
    /// # Panics
    ///
    /// Panics if `freeze_below >= n_layers` or shapes mismatch.
    pub fn train_step_with(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        lr: f32,
        opt: crate::optim::Optimizer,
        freeze_below: usize,
    ) -> f32 {
        assert!(
            freeze_below < self.layers.len(),
            "freeze_below leaves no trainable layer"
        );
        // Forward with caches: inputs[i] is the input to layer i,
        // pre[i] its pre-activation output.
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(h.clone());
            let z = layer.forward(&h);
            pre.push(z.clone());
            h = if i + 1 < self.layers.len() {
                activation::relu(&z)
            } else {
                z
            };
        }
        let logits = h;
        let loss = activation::cross_entropy(&logits, labels);
        let mut dy = activation::cross_entropy_grad(&logits, labels);

        for i in (freeze_below..self.layers.len()).rev() {
            let grads = self.layers[i].backward(&inputs[i], &dy);
            self.layers[i].step(&grads, lr, opt);
            if i > freeze_below {
                // Gradient through the ReLU that preceded layer i.
                let mask = activation::relu_grad_mask(&pre[i - 1]);
                dy = grads.dx.mul(&mask);
            }
        }
        loss
    }

    /// One fine-tuning step from *precomputed features* (the Tuner-side
    /// path of FT-DMP: features arrive from PipeStores, only the
    /// classifier is updated). Returns the pre-update batch loss.
    pub fn tune_step_on_features(
        &mut self,
        features: &Tensor,
        labels: &[usize],
        lr: f32,
        momentum: f32,
    ) -> f32 {
        let split = self.split;
        let tail = self.layers.len() - split;
        let mut inputs = Vec::with_capacity(tail);
        let mut pre = Vec::with_capacity(tail);
        let mut h = features.clone();
        for (k, layer) in self.layers[split..].iter().enumerate() {
            inputs.push(h.clone());
            let z = layer.forward(&h);
            pre.push(z.clone());
            h = if split + k + 1 < self.layers.len() {
                activation::relu(&z)
            } else {
                z
            };
        }
        let loss = activation::cross_entropy(&h, labels);
        let mut dy = activation::cross_entropy_grad(&h, labels);
        for k in (0..tail).rev() {
            let grads = self.layers[split + k].backward(&inputs[k], &dy);
            self.layers[split + k].apply(&grads, lr, momentum);
            if k > 0 {
                let mask = activation::relu_grad_mask(&pre[k - 1]);
                dy = grads.dx.mul(&mask);
            }
        }
        loss
    }

    /// Widens the output layer to `new_classes`, preserving existing class
    /// weights and initializing the new rows near zero. This is how the
    /// model learns *emerging categories* without forgetting old ones.
    ///
    /// # Panics
    ///
    /// Panics if `new_classes` is smaller than the current class count.
    pub fn widen_classes<R: Rng + ?Sized>(&mut self, new_classes: usize, rng: &mut R) {
        let old = self.num_classes();
        assert!(new_classes >= old, "cannot drop classes");
        if new_classes == old {
            return;
        }
        let last = self.layers.last().expect("non-empty");
        let d_in = last.d_in();
        let mut fresh = Linear::new(d_in, new_classes, rng);
        // Copy old rows; scale fresh rows down so they start unconfident.
        let mut w = fresh.weights().scale(0.1);
        let mut b = Tensor::zeros(&[new_classes]);
        for r in 0..old {
            for c in 0..d_in {
                w.set(&[r, c], last.weights().at(&[r, c]));
            }
            b.set(&[r], last.bias().at(&[r]));
        }
        fresh.set_weights(w, b);
        *self.layers.last_mut().expect("non-empty") = fresh;
    }

    /// Resets momentum in all trainable layers (between pipeline runs).
    pub fn reset_momentum(&mut self) {
        for l in &mut self.layers {
            l.reset_momentum();
        }
    }

    /// Serializes the model (architecture + weights, not optimizer state)
    /// to a portable little-endian byte format, used for model
    /// distribution over the wire and for checkpoints.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"NDPM");
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.split as u32).to_le_bytes());
        for l in &self.layers {
            out.extend_from_slice(&(l.d_in() as u32).to_le_bytes());
            out.extend_from_slice(&(l.d_out() as u32).to_le_bytes());
            for &x in l.weights().data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
            for &x in l.bias().data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Reconstructs a model from [`Mlp::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first framing problem found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Mlp, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > bytes.len() {
                return Err(format!("model blob truncated at byte {pos}", pos = *pos));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != b"NDPM" {
            return Err("bad model magic".to_string());
        }
        let u32_at = |pos: &mut usize| -> Result<u32, String> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("fixed slice"),
            ))
        };
        let n_layers = u32_at(&mut pos)? as usize;
        let split = u32_at(&mut pos)? as usize;
        if n_layers == 0 || split >= n_layers {
            return Err("invalid layer count or split".to_string());
        }
        let mut layers: Vec<Linear> = Vec::with_capacity(n_layers);
        let mut rng = SerdeRng;
        for _ in 0..n_layers {
            let d_in = u32_at(&mut pos)? as usize;
            let d_out = u32_at(&mut pos)? as usize;
            if d_in == 0 || d_out == 0 {
                return Err("zero layer dimension".to_string());
            }
            // Layers must chain, or forward() would panic later.
            if let Some(prev) = layers.last() {
                if prev.d_out() != d_in {
                    return Err(format!(
                        "layer dimension mismatch: {} feeds {}",
                        prev.d_out(),
                        d_in
                    ));
                }
            }
            let read_f32s = |pos: &mut usize, n: usize| -> Result<Vec<f32>, String> {
                let raw = take(pos, n * 4)?;
                Ok(raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("fixed slice")))
                    .collect())
            };
            let w = Tensor::from_vec(read_f32s(&mut pos, d_out * d_in)?, &[d_out, d_in]);
            let b = Tensor::from_vec(read_f32s(&mut pos, d_out)?, &[d_out]);
            let mut layer = Linear::new(d_in, d_out, &mut rng);
            layer.set_weights(w, b);
            layers.push(layer);
        }
        if pos != bytes.len() {
            return Err("trailing bytes after model".to_string());
        }
        Ok(Mlp { layers, split })
    }
}

/// A trivial RNG for constructing layers that are immediately
/// overwritten during deserialization.
struct SerdeRng;

impl rand::RngCore for SerdeRng {
    fn next_u32(&mut self) -> u32 {
        0x9E3779B9
    }
    fn next_u64(&mut self) -> u64 {
        0x9E3779B97F4A7C15
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        dest.fill(0x5A);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_model(rng: &mut StdRng) -> Mlp {
        Mlp::new(&[4, 12, 8, 3], 2, rng)
    }

    #[test]
    fn shapes_and_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = toy_model(&mut rng);
        assert_eq!(m.n_layers(), 3);
        assert_eq!(m.split(), 2);
        assert_eq!(m.feature_dim(), 8);
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.param_count(), (4 * 12 + 12) + (12 * 8 + 8) + (8 * 3 + 3));
        assert_eq!(m.classifier_param_count(), 8 * 3 + 3);
    }

    #[test]
    fn features_then_classify_equals_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = toy_model(&mut rng);
        let x = Tensor::randn(&[5, 4], &mut rng);
        let direct = m.forward(&x);
        let via = m.classify_features(&m.features(&x));
        for (a, b) in direct.data().iter().zip(via.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn fine_tuning_leaves_features_frozen() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = toy_model(&mut rng);
        let x = Tensor::randn(&[8, 4], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let feats_before = m.features(&x);
        for _ in 0..5 {
            m.train_step(&x, &labels, 0.1, 0.9, m.split());
        }
        let feats_after = m.features(&x);
        assert_eq!(feats_before.data(), feats_after.data());
    }

    #[test]
    fn full_training_moves_features() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = toy_model(&mut rng);
        let x = Tensor::randn(&[8, 4], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let feats_before = m.features(&x);
        for _ in 0..5 {
            m.train_step(&x, &labels, 0.1, 0.9, 0);
        }
        let feats_after = m.features(&x);
        assert_ne!(feats_before.data(), feats_after.data());
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = toy_model(&mut rng);
        let x = Tensor::randn(&[30, 4], &mut rng);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let first = m.train_step(&x, &labels, 0.2, 0.9, 0);
        let mut last = first;
        for _ in 0..100 {
            last = m.train_step(&x, &labels, 0.2, 0.9, 0);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn tune_on_features_matches_train_step_semantics() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = toy_model(&mut rng);
        let mut b = a.clone();
        let x = Tensor::randn(&[10, 4], &mut rng);
        let labels: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let la = a.train_step(&x, &labels, 0.1, 0.0, a.split());
        let feats = b.features(&x);
        let lb = b.tune_step_on_features(&feats, &labels, 0.1, 0.0);
        assert!((la - lb).abs() < 1e-6, "{la} vs {lb}");
        // Resulting classifier weights agree.
        for (wa, wb) in a.classifier_layers().iter().zip(b.classifier_layers()) {
            for (x1, x2) in wa.weights().data().iter().zip(wb.weights().data()) {
                assert!((x1 - x2).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn widen_preserves_old_logits() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = toy_model(&mut rng);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let before = m.forward(&x);
        m.widen_classes(5, &mut rng);
        assert_eq!(m.num_classes(), 5);
        let after = m.forward(&x);
        for r in 0..4 {
            for c in 0..3 {
                assert!((before.at(&[r, c]) - after.at(&[r, c])).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no trainable layer")]
    fn split_must_leave_trainable_layers() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = Mlp::new(&[4, 4, 2], 2, &mut rng);
    }

    #[test]
    fn adam_trains_the_whole_stack() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = toy_model(&mut rng);
        let x = Tensor::randn(&[30, 4], &mut rng);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let opt = crate::optim::Optimizer::adam();
        let first = m.train_step_with(&x, &labels, 0.01, opt, 0);
        let mut last = first;
        for _ in 0..150 {
            last = m.train_step_with(&x, &labels, 0.01, opt, 0);
        }
        assert!(last < first * 0.5, "adam loss {first} -> {last}");
    }

    #[test]
    fn serialization_roundtrips_exactly() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = toy_model(&mut rng);
        let bytes = m.to_bytes();
        let back = Mlp::from_bytes(&bytes).expect("valid blob");
        assert_eq!(back.n_layers(), m.n_layers());
        assert_eq!(back.split(), m.split());
        let x = Tensor::randn(&[5, 4], &mut rng);
        assert_eq!(m.forward(&x).data(), back.forward(&x).data());
    }

    #[test]
    fn mismatched_layer_chain_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        // Serialize two models and splice layer records so dims don't chain.
        let a = Mlp::new(&[4, 6, 3], 1, &mut rng);
        let mut bytes = a.to_bytes();
        // Patch the second layer's d_in (offset: magic 4 + counts 8 +
        // layer0 header 8 + layer0 weights/bias (6*4+6)*4 bytes).
        let layer1_d_in = 4 + 8 + 8 + (6 * 4 + 6) * 4;
        bytes[layer1_d_in..layer1_d_in + 4].copy_from_slice(&9u32.to_le_bytes());
        let err = Mlp::from_bytes(&bytes).unwrap_err();
        assert!(
            err.contains("mismatch") || err.contains("truncated"),
            "{err}"
        );
    }

    #[test]
    fn corrupted_blobs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = toy_model(&mut rng);
        let bytes = m.to_bytes();
        assert!(Mlp::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Mlp::from_bytes(b"XXXX").is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Mlp::from_bytes(&extra).is_err());
        let mut bad_magic = bytes;
        bad_magic[0] = b'Z';
        assert!(Mlp::from_bytes(&bad_magic).is_err());
    }
}
