//! Training loop, evaluation metrics and the paper's stopping rule.

use crate::mlp::Mlp;
use ndpipe_data::LabeledDataset;
use rand::Rng;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Stop when accuracy improves by less than this (fraction, e.g.
    /// `1e-4` = 0.01 %) for [`TrainConfig::patience`] consecutive epochs —
    /// the paper's §6.3 stopping rule.
    pub min_improvement: f64,
    /// Consecutive low-improvement epochs tolerated before stopping.
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 0.1,
            momentum: 0.9,
            batch: 64,
            max_epochs: 30,
            min_improvement: 1e-4,
            patience: 3,
        }
    }
}

/// Top-1 / top-5 accuracy of a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    /// Fraction of examples whose argmax prediction is correct.
    pub top1: f64,
    /// Fraction whose label is among the five highest logits.
    pub top5: f64,
    /// Mean cross-entropy loss.
    pub loss: f64,
}

impl std::fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "top1 {:.2}% top5 {:.2}% loss {:.4}",
            self.top1 * 100.0,
            self.top5 * 100.0,
            self.loss
        )
    }
}

/// Record of one completed training run.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Per-epoch mean training loss.
    pub epoch_losses: Vec<f64>,
    /// Per-epoch held-out accuracy (if an eval set was provided).
    pub epoch_eval: Vec<EvalMetrics>,
    /// Epochs actually run (≤ `max_epochs` under early stopping).
    pub epochs_run: usize,
}

/// Drives SGD over a model with the paper's stopping rule.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// A trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Evaluates `model` on `data` without updating it.
    pub fn evaluate(model: &Mlp, data: &LabeledDataset) -> EvalMetrics {
        let logits = model.forward(data.features());
        metrics_from_logits(&logits, data.labels())
    }

    /// Trains layers `freeze_below..` of `model` on `train`, evaluating on
    /// `eval` after each epoch when provided. `freeze_below = 0` is full
    /// training; `freeze_below = model.split()` is fine-tuning.
    ///
    /// Data is reshuffled each epoch with `rng`.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        model: &mut Mlp,
        train: &LabeledDataset,
        eval: Option<&LabeledDataset>,
        freeze_below: usize,
        rng: &mut R,
    ) -> TrainHistory {
        let mut history = TrainHistory::default();
        let mut best_acc = f64::NEG_INFINITY;
        let mut stale = 0;
        for _epoch in 0..self.config.max_epochs {
            let shuffled = train.shuffled(rng);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for (x, y) in shuffled.batches(self.config.batch) {
                let loss =
                    model.train_step(&x, y, self.config.lr, self.config.momentum, freeze_below);
                loss_sum += loss as f64;
                batches += 1;
            }
            history.epoch_losses.push(loss_sum / batches.max(1) as f64);
            history.epochs_run += 1;

            if let Some(ev) = eval {
                let m = Self::evaluate(model, ev);
                history.epoch_eval.push(m);
                if m.top1 > best_acc + self.config.min_improvement {
                    best_acc = m.top1;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.patience {
                        break;
                    }
                }
            }
        }
        history
    }
}

/// Computes top-1/top-5/loss from logits and labels.
///
/// Labels outside the model's class space (emerging categories an
/// outdated model cannot name) count as guaranteed misses; the loss is
/// averaged over in-range labels only.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows.
pub fn metrics_from_logits(logits: &tensor::Tensor, labels: &[usize]) -> EvalMetrics {
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(rows, labels.len(), "one label per row");
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let mut loss_sum = 0.0f64;
    let mut loss_n = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        if y >= cols {
            continue; // unnameable class: automatic miss
        }
        let target = row[y];
        // Rank of the target = number of strictly larger logits.
        let larger = row.iter().filter(|&&v| v > target).count();
        if larger == 0 {
            top1 += 1;
        }
        if larger < 5 {
            top5 += 1;
        }
        // Per-row cross entropy: logsumexp(row) - row[y].
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        loss_sum += (lse - target) as f64;
        loss_n += 1;
    }
    EvalMetrics {
        top1: top1 as f64 / rows as f64,
        top5: top5 as f64 / rows as f64,
        loss: loss_sum / loss_n.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    fn toy_data(rng: &mut StdRng, n_per_class: usize) -> (LabeledDataset, LabeledDataset) {
        let u = ClassUniverse::new(16, 8, 6, 0.25, rng);
        let make = |u: &ClassUniverse, rng: &mut StdRng, n: usize| {
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for c in 0..u.classes() {
                for _ in 0..n {
                    rows.push(u.sample(c, rng));
                    labels.push(c);
                }
            }
            LabeledDataset::new(rows, labels, u.classes())
        };
        (make(&u, rng, n_per_class), make(&u, rng, n_per_class / 2))
    }

    #[test]
    fn metrics_on_known_logits() {
        let logits = Tensor::from_vec(
            vec![
                5.0, 1.0, 0.0, 0.0, 0.0, 0.0, // correct top1
                1.0, 5.0, 4.0, 3.0, 2.0, 0.5, // label 5 is rank 6 -> miss
            ],
            &[2, 6],
        );
        let m = metrics_from_logits(&logits, &[0, 5]);
        assert_eq!(m.top1, 0.5);
        assert_eq!(m.top5, 0.5);
    }

    #[test]
    fn top5_is_at_least_top1() {
        let mut rng = StdRng::seed_from_u64(21);
        let logits = Tensor::randn(&[40, 8], &mut rng);
        let labels: Vec<usize> = (0..40).map(|i| i % 8).collect();
        let m = metrics_from_logits(&logits, &labels);
        assert!(m.top5 >= m.top1);
    }

    #[test]
    fn training_learns_separable_classes() {
        let mut rng = StdRng::seed_from_u64(22);
        let (train, test) = toy_data(&mut rng, 40);
        let mut model = Mlp::new(&[16, 32, 24, 6], 2, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 25,
            ..TrainConfig::default()
        });
        let before = Trainer::evaluate(&model, &test);
        let hist = trainer.fit(&mut model, &train, Some(&test), 0, &mut rng);
        let after = Trainer::evaluate(&model, &test);
        assert!(hist.epochs_run >= 1);
        assert!(
            after.top1 > before.top1 + 0.3,
            "accuracy {:.3} -> {:.3}",
            before.top1,
            after.top1
        );
        assert!(after.top1 > 0.7, "final {:.3}", after.top1);
    }

    #[test]
    fn fine_tuning_beats_no_training_but_not_full() {
        let mut rng = StdRng::seed_from_u64(23);
        let (train, test) = toy_data(&mut rng, 40);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 15,
            ..TrainConfig::default()
        });

        let mut full = Mlp::new(&[16, 32, 24, 6], 2, &mut rng);
        let mut tuned = full.clone();
        trainer.fit(&mut full, &train, Some(&test), 0, &mut rng);
        let split = tuned.split();
        trainer.fit(&mut tuned, &train, Some(&test), split, &mut rng);

        let m_full = Trainer::evaluate(&full, &test);
        let m_tuned = Trainer::evaluate(&tuned, &test);
        // A random-feature classifier learns something but trails full
        // training on this nonlinear problem.
        assert!(m_tuned.top1 > 1.5 / 6.0, "tuned {:.3}", m_tuned.top1);
        assert!(m_full.top1 >= m_tuned.top1, "{m_full:?} vs {m_tuned:?}");
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let mut rng = StdRng::seed_from_u64(24);
        let (train, test) = toy_data(&mut rng, 30);
        let mut model = Mlp::new(&[16, 32, 24, 6], 2, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 200,
            ..TrainConfig::default()
        });
        let hist = trainer.fit(&mut model, &train, Some(&test), 0, &mut rng);
        assert!(
            hist.epochs_run < 200,
            "ran all {} epochs without converging",
            hist.epochs_run
        );
    }

    #[test]
    fn display_metrics() {
        let m = EvalMetrics {
            top1: 0.7375,
            top5: 0.9138,
            loss: 1.0,
        };
        let s = m.to_string();
        assert!(s.contains("73.75%"));
        assert!(s.contains("91.38%"));
    }
}
