//! Shard-aware object keys.
//!
//! With R-way replication a PipeStore no longer persists only its own
//! shard: rebalance copies park other nodes' photos in the same
//! [`crate::ObjectStore`]. The flat `2·photo` / `2·photo + 1` layout
//! cannot tell those apart, so keys now carry the owning placement
//! shard: `[shard:16][photo:47][kind:1]`, little-endian-packed into the
//! u64 key space. Shard 0 produces exactly the legacy keys (`shard`
//! bits zero), so single-shard stores written before this layout stay
//! readable.

use crate::StoreError;

/// Bits reserved for the photo id.
const PHOTO_BITS: u32 = 47;
/// Largest photo id the key layout can carry.
pub const MAX_PHOTO: u64 = (1 << PHOTO_BITS) - 1;
/// Largest shard id the key layout can carry.
pub const MAX_SHARD: u64 = (1 << 16) - 1;

fn pack(shard: u64, photo: u64, kind: u64) -> Result<u64, StoreError> {
    if shard > MAX_SHARD || photo > MAX_PHOTO {
        return Err(StoreError::KeyOutOfRange { shard, photo });
    }
    Ok((shard << (PHOTO_BITS + 1)) | (photo << 1) | kind)
}

/// Key of a photo's raw blob in `shard`'s keyspace.
///
/// # Errors
///
/// [`StoreError::KeyOutOfRange`] when `shard` or `photo` exceed their
/// bit budget.
pub fn blob(shard: u64, photo: u64) -> Result<u64, StoreError> {
    pack(shard, photo, 0)
}

/// Key of a photo's compressed preprocessed sidecar in `shard`'s
/// keyspace.
///
/// # Errors
///
/// [`StoreError::KeyOutOfRange`] when `shard` or `photo` exceed their
/// bit budget.
pub fn sidecar(shard: u64, photo: u64) -> Result<u64, StoreError> {
    pack(shard, photo, 1)
}

/// The placement shard a key belongs to.
pub fn shard_of(key: u64) -> u64 {
    key >> (PHOTO_BITS + 1)
}

/// The photo id inside a key.
pub fn photo_of(key: u64) -> u64 {
    (key >> 1) & MAX_PHOTO
}

/// Whether the key names a raw blob (as opposed to a sidecar).
pub fn is_blob(key: u64) -> bool {
    key & 1 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (shard, photo) in [(0u64, 0u64), (1, 1), (17, 93_241), (MAX_SHARD, MAX_PHOTO)] {
            let b = blob(shard, photo).expect("in range");
            let s = sidecar(shard, photo).expect("in range");
            assert_ne!(b, s);
            for key in [b, s] {
                assert_eq!(shard_of(key), shard);
                assert_eq!(photo_of(key), photo);
            }
            assert!(is_blob(b));
            assert!(!is_blob(s));
        }
    }

    #[test]
    fn shard_zero_matches_the_legacy_layout() {
        // Pre-placement stores used 2·photo / 2·photo + 1.
        assert_eq!(blob(0, 21).expect("in range"), 42);
        assert_eq!(sidecar(0, 21).expect("in range"), 43);
    }

    #[test]
    fn out_of_range_is_a_typed_error() {
        assert!(matches!(
            blob(MAX_SHARD + 1, 0),
            Err(StoreError::KeyOutOfRange { .. })
        ));
        assert!(matches!(
            sidecar(0, MAX_PHOTO + 1),
            Err(StoreError::KeyOutOfRange { .. })
        ));
    }

    #[test]
    fn distinct_shards_never_collide() {
        let a = blob(1, 5).expect("in range");
        let b = blob(2, 5).expect("in range");
        assert_ne!(a, b);
    }
}
