//! Haystack-style append-only object store for photo blobs.
//!
//! The paper's storage servers are production photo stores in the mold of
//! Facebook Haystack / f4 (§3.1 models the system after Google/Amazon
//! Photos). This crate implements that substrate for real:
//!
//! - [`needle`] — the on-disk record format: header, key, flags, payload,
//!   CRC-32 trailer,
//! - [`volume`] — an append-only log file with an in-memory index,
//!   crash recovery by scanning, tombstone deletes and compaction,
//! - [`store`] — a multi-volume store with write-volume rotation and a
//!   photo directory.
//!
//! PipeStores can keep their photo shards and compressed preprocessed
//! sidecars in an `ObjectStore`, which is what the near-data read path
//! (`Read` in Figs 6/12) actually reads from.
//!
//! # Example
//!
//! ```
//! use objstore::ObjectStore;
//!
//! # fn main() -> Result<(), objstore::StoreError> {
//! let dir = std::env::temp_dir().join(format!("objstore-doc-{}", std::process::id()));
//! let mut store = ObjectStore::open(&dir, 1 << 20)?;
//! store.put(42, b"jpeg bytes")?;
//! assert_eq!(store.get(42)?.as_deref(), Some(&b"jpeg bytes"[..]));
//! # std::fs::remove_dir_all(dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod keys;
pub mod needle;
pub mod store;
pub mod volume;

pub use needle::Needle;
pub use store::ObjectStore;
pub use volume::Volume;

/// Errors from the object store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A needle failed its checksum or framing validation.
    Corrupt {
        /// Byte offset of the bad record.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
    /// A shard or photo id does not fit the packed key layout
    /// ([`keys`]).
    KeyOutOfRange {
        /// Requested shard id.
        shard: u64,
        /// Requested photo id.
        photo: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "object store i/o error: {e}"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt needle at offset {offset}: {reason}")
            }
            StoreError::KeyOutOfRange { shard, photo } => {
                write!(f, "key out of range: shard {shard}, photo {photo}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } | StoreError::KeyOutOfRange { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), computed with a lazily built table.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFFFFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = StoreError::Corrupt {
            offset: 7,
            reason: "bad magic",
        };
        assert!(e.to_string().contains("offset 7"));
        assert!(e.source().is_none());
        let io = StoreError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
    }
}
