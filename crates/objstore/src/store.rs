//! Multi-volume object store with write rotation and a key directory.

use crate::volume::Volume;
use crate::StoreError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Handles into the process-wide telemetry registry, resolved once at
/// open so the per-I/O cost is one atomic add. Gauges are updated by
/// delta (and unwound on drop) so several co-existing stores sum
/// correctly.
#[derive(Debug)]
struct IoMetrics {
    puts: telemetry::Counter,
    gets: telemetry::Counter,
    deletes: telemetry::Counter,
    bytes_written: telemetry::Counter,
    bytes_read: telemetry::Counter,
    compact_reclaimed: telemetry::Counter,
    live_objects: telemetry::Gauge,
    volumes: telemetry::Gauge,
}

impl IoMetrics {
    fn resolve() -> IoMetrics {
        let g = telemetry::global();
        let op = |name: &'static str| {
            g.counter_with(
                "ndpipe_objstore_ops_total",
                &[("op", name)],
                "object-store operations",
            )
        };
        IoMetrics {
            puts: op("put"),
            gets: op("get"),
            deletes: op("delete"),
            bytes_written: g.counter(
                "ndpipe_objstore_bytes_written_total",
                "object payload bytes written",
            ),
            bytes_read: g.counter(
                "ndpipe_objstore_bytes_read_total",
                "object payload bytes read",
            ),
            compact_reclaimed: g.counter(
                "ndpipe_objstore_compact_reclaimed_bytes_total",
                "log bytes reclaimed by compaction",
            ),
            live_objects: g.gauge(
                "ndpipe_objstore_live_objects",
                "live objects across open stores",
            ),
            volumes: g.gauge("ndpipe_objstore_volumes", "volumes across open stores"),
        }
    }
}

/// A directory of volumes: writes go to the active volume and rotate to a
/// fresh one past `volume_limit` bytes; a key directory maps each object
/// to its volume (Haystack's "store" tier without the separate directory
/// service).
#[derive(Debug)]
pub struct ObjectStore {
    dir: PathBuf,
    volumes: Vec<Volume>,
    /// key → index into `volumes`.
    directory: HashMap<u64, usize>,
    volume_limit: u64,
    metrics: IoMetrics,
}

impl Drop for ObjectStore {
    fn drop(&mut self) {
        // Unwind this store's contribution to the shared gauges.
        self.metrics
            .live_objects
            .add(-(self.directory.len() as f64));
        self.metrics.volumes.add(-(self.volumes.len() as f64));
    }
}

impl ObjectStore {
    /// Opens (creating if needed) a store rooted at `dir`, recovering any
    /// existing volumes (`vol-*.log`, in numeric order).
    ///
    /// # Errors
    ///
    /// I/O errors or mid-file corruption in a volume.
    ///
    /// # Panics
    ///
    /// Panics if `volume_limit` is zero.
    pub fn open(dir: impl AsRef<Path>, volume_limit: u64) -> Result<ObjectStore, StoreError> {
        assert!(volume_limit > 0, "volume limit must be positive");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut ids: Vec<u32> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_prefix("vol-")?
                    .strip_suffix(".log")?
                    .parse()
                    .ok()
            })
            .collect();
        ids.sort_unstable();
        if ids.is_empty() {
            ids.push(0);
        }
        let mut volumes = Vec::with_capacity(ids.len());
        let mut directory = HashMap::new();
        for id in ids {
            let vol = Volume::open(dir.join(format!("vol-{id}.log")))?;
            let idx = volumes.len();
            for key in vol.keys() {
                directory.insert(key, idx);
            }
            volumes.push(vol);
        }
        let metrics = IoMetrics::resolve();
        metrics.live_objects.add(directory.len() as f64);
        metrics.volumes.add(volumes.len() as f64);
        Ok(ObjectStore {
            dir,
            volumes,
            directory,
            volume_limit,
            metrics,
        })
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Number of volumes.
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }

    /// Total log bytes across volumes.
    pub fn size_bytes(&self) -> u64 {
        self.volumes.iter().map(Volume::size_bytes).sum()
    }

    /// Stores (or overwrites) `key`.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn put(&mut self, key: u64, data: &[u8]) -> Result<(), StoreError> {
        // Rotate first: the tombstone decision below must compare against
        // the volume the new copy will actually land in, or an overwrite
        // that triggers rotation leaves an untombstoned stale copy that
        // resurrects on recovery.
        if self.volumes[self.volumes.len() - 1].size_bytes() >= self.volume_limit {
            let id = self.volumes.len() as u32;
            let vol = Volume::open(self.dir.join(format!("vol-{id}.log")))?;
            self.volumes.push(vol);
            if telemetry::enabled() {
                self.metrics.volumes.add(1.0);
            }
        }
        let active = self.volumes.len() - 1;
        // Overwrites into a different volume must tombstone the old copy
        // so recovery agrees with the directory.
        if let Some(&old) = self.directory.get(&key) {
            if old != active {
                self.volumes[old].delete(key)?;
            }
        }
        self.volumes[active].put(key, data)?;
        let fresh_key = self.directory.insert(key, active).is_none();
        if telemetry::enabled() {
            self.metrics.puts.inc();
            self.metrics.bytes_written.add(data.len() as u64);
            if fresh_key {
                self.metrics.live_objects.add(1.0);
            }
        }
        Ok(())
    }

    /// Fetches `key`'s payload.
    ///
    /// # Errors
    ///
    /// I/O errors or on-disk corruption.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(&idx) = self.directory.get(&key) else {
            return Ok(None);
        };
        let data = self.volumes[idx].get(key)?;
        if telemetry::enabled() {
            self.metrics.gets.inc();
            if let Some(d) = &data {
                self.metrics.bytes_read.add(d.len() as u64);
            }
        }
        Ok(data)
    }

    /// Deletes `key`. Returns whether it existed.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        let Some(idx) = self.directory.remove(&key) else {
            return Ok(false);
        };
        self.volumes[idx].delete(key)?;
        if telemetry::enabled() {
            self.metrics.deletes.inc();
            self.metrics.live_objects.add(-1.0);
        }
        Ok(true)
    }

    /// Compacts every volume whose garbage ratio exceeds `threshold`
    /// (0..1). Returns bytes reclaimed.
    ///
    /// # Errors
    ///
    /// I/O errors; volumes compacted before a failure stay compacted.
    pub fn compact(&mut self, threshold: f64) -> Result<u64, StoreError> {
        let mut reclaimed = 0;
        for idx in 0..self.volumes.len() {
            let v = &self.volumes[idx];
            let size = v.size_bytes();
            if size == 0 {
                continue;
            }
            if v.garbage_bytes() as f64 / size as f64 > threshold {
                let before = size;
                self.volumes[idx].compact()?;
                reclaimed += before - self.volumes[idx].size_bytes();
            }
        }
        if telemetry::enabled() {
            self.metrics.compact_reclaimed.add(reclaimed);
        }
        Ok(reclaimed)
    }

    /// Live keys across all volumes, unordered.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.directory.keys().copied()
    }

    /// Flushes all volumes.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        for v in &mut self.volumes {
            v.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ndpipe-store-{}-{}-{tag}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn basic_crud() {
        let dir = temp_dir("crud");
        let _c = Cleanup(dir.clone());
        let mut s = ObjectStore::open(&dir, 1 << 20).expect("open");
        assert!(s.is_empty());
        s.put(1, b"one").expect("put");
        s.put(2, b"two").expect("put");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).expect("get").as_deref(), Some(&b"one"[..]));
        assert!(s.delete(1).expect("delete"));
        assert_eq!(s.get(1).expect("get"), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn rotation_creates_new_volumes() {
        let dir = temp_dir("rot");
        let _c = Cleanup(dir.clone());
        let mut s = ObjectStore::open(&dir, 1024).expect("open");
        for i in 0..30u64 {
            s.put(i, &[0u8; 100]).expect("put");
        }
        assert!(s.volume_count() > 1, "no rotation happened");
        // Everything still readable across volumes.
        for i in 0..30u64 {
            assert!(s.get(i).expect("get").is_some(), "lost key {i}");
        }
    }

    #[test]
    fn reopen_recovers_directory_across_volumes() {
        let dir = temp_dir("reopen");
        let _c = Cleanup(dir.clone());
        {
            let mut s = ObjectStore::open(&dir, 512).expect("open");
            for i in 0..20u64 {
                s.put(i, format!("payload-{i}").as_bytes()).expect("put");
            }
            s.delete(3).expect("delete");
            s.sync().expect("sync");
        }
        let mut s = ObjectStore::open(&dir, 512).expect("reopen");
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(3).expect("get"), None);
        assert_eq!(s.get(7).expect("get").as_deref(), Some(&b"payload-7"[..]));
    }

    #[test]
    fn overwrite_across_volumes_keeps_one_live_copy() {
        let dir = temp_dir("owx");
        let _c = Cleanup(dir.clone());
        {
            let mut s = ObjectStore::open(&dir, 256).expect("open");
            s.put(42, &[1u8; 200]).expect("put v1");
            // Fill to force rotation, then overwrite key 42 in a new volume.
            for i in 100..105u64 {
                s.put(i, &[0u8; 200]).expect("fill");
            }
            s.put(42, b"fresh").expect("put v2");
            assert_eq!(s.get(42).expect("get").as_deref(), Some(&b"fresh"[..]));
        }
        // Recovery must agree (old copy was tombstoned).
        let mut s = ObjectStore::open(&dir, 256).expect("reopen");
        assert_eq!(s.get(42).expect("get").as_deref(), Some(&b"fresh"[..]));
    }

    #[test]
    fn compaction_reclaims_space() {
        let dir = temp_dir("cmp");
        let _c = Cleanup(dir.clone());
        let mut s = ObjectStore::open(&dir, 1 << 16).expect("open");
        for i in 0..100u64 {
            s.put(i, &[7u8; 64]).expect("put");
        }
        for i in 0..90u64 {
            s.delete(i).expect("delete");
        }
        let reclaimed = s.compact(0.3).expect("compact");
        assert!(reclaimed > 0);
        for i in 90..100u64 {
            assert!(s.get(i).expect("get").is_some());
        }
        assert_eq!(s.len(), 10);
    }
}
