//! An append-only volume file with an in-memory needle index.

use crate::needle::{Needle, HEADER_BYTES, TRAILER_BYTES};
use crate::StoreError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Location of a live needle's payload within a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Offset of the record start.
    offset: u64,
    /// Payload length.
    len: u32,
}

/// One append-only log file plus its in-memory key index.
///
/// Writes append needles; deletes append tombstones; reads seek straight
/// to the payload via the index. Opening an existing file *recovers* the
/// index by scanning, truncating any torn tail from a crash.
#[derive(Debug)]
pub struct Volume {
    path: PathBuf,
    file: File,
    index: HashMap<u64, Slot>,
    /// Bytes in the file (append position).
    size: u64,
    /// Bytes occupied by dead records (overwritten/tombstoned).
    garbage: u64,
}

impl Volume {
    /// Opens (or creates) a volume at `path`, recovering its index.
    ///
    /// # Errors
    ///
    /// I/O errors; a corrupt record mid-file is an error, but a torn tail
    /// (partial final record from a crash) is truncated away.
    pub fn open(path: impl AsRef<Path>) -> Result<Volume, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut index: HashMap<u64, Slot> = HashMap::new();
        let mut garbage = 0u64;
        let mut offset = 0u64;
        {
            let mut reader = BufReader::new(&mut file);
            reader.seek(SeekFrom::Start(0))?;
            loop {
                match Needle::read_from(&mut reader, offset) {
                    Ok(None) => break,
                    Ok(Some(n)) => {
                        let rec_len = (HEADER_BYTES + n.data.len() + TRAILER_BYTES) as u64;
                        if n.is_tombstone() {
                            if let Some(old) = index.remove(&n.key) {
                                garbage += record_len(old.len) + rec_len;
                            } else {
                                garbage += rec_len;
                            }
                        } else {
                            if let Some(old) = index.insert(
                                n.key,
                                Slot {
                                    offset,
                                    len: n.data.len() as u32,
                                },
                            ) {
                                garbage += record_len(old.len);
                            }
                        }
                        offset += rec_len;
                    }
                    Err(StoreError::Corrupt { reason, .. }) if is_torn_tail(reason) => {
                        // A record that runs off the end of the file is a
                        // torn append from a crash: drop it. In-place
                        // corruption (bad magic, checksum mismatch) is NOT
                        // truncated — valid records may follow, so surface
                        // it instead of silently discarding them.
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        file.set_len(offset)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Volume {
            path,
            file,
            index,
            size: offset,
            garbage,
        })
    }

    /// The volume's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.index.len()
    }

    /// Bytes in the log.
    pub fn size_bytes(&self) -> u64 {
        self.size
    }

    /// Bytes occupied by dead records.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage
    }

    /// Appends (or overwrites) `key` with `data`.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn put(&mut self, key: u64, data: &[u8]) -> Result<(), StoreError> {
        let needle = Needle::new(key, data.to_vec());
        let rec_len = needle.encoded_len() as u64;
        needle.write_to(&mut self.file)?;
        if let Some(old) = self.index.insert(
            key,
            Slot {
                offset: self.size,
                len: data.len() as u32,
            },
        ) {
            self.garbage += record_len(old.len);
        }
        self.size += rec_len;
        Ok(())
    }

    /// Reads the live payload for `key`, verifying its checksum.
    ///
    /// # Errors
    ///
    /// I/O errors or on-disk corruption.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(slot) = self.index.get(&key).copied() else {
            return Ok(None);
        };
        self.file.seek(SeekFrom::Start(slot.offset))?;
        let mut reader = BufReader::new(&mut self.file);
        let needle = Needle::read_from(&mut reader, slot.offset)?.ok_or(StoreError::Corrupt {
            offset: slot.offset,
            reason: "indexed record missing",
        })?;
        self.file.seek(SeekFrom::End(0))?;
        if needle.key != key {
            return Err(StoreError::Corrupt {
                offset: slot.offset,
                reason: "index points at wrong key",
            });
        }
        Ok(Some(needle.data))
    }

    /// Whether `key` is live.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Deletes `key` by appending a tombstone. Returns whether it existed.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        let existed = self.index.remove(&key);
        let tomb = Needle::tombstone(key);
        let rec_len = tomb.encoded_len() as u64;
        tomb.write_to(&mut self.file)?;
        if let Some(old) = existed {
            self.garbage += record_len(old.len) + rec_len;
        } else {
            self.garbage += rec_len;
        }
        self.size += rec_len;
        Ok(existed.is_some())
    }

    /// Live keys, unordered.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.keys().copied()
    }

    /// Rewrites the volume keeping only live records, reclaiming garbage.
    /// The new log is written beside the old file and atomically renamed
    /// over it.
    ///
    /// # Errors
    ///
    /// I/O errors; the original volume is untouched on failure.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let tmp_path = self.path.with_extension("compact");
        {
            let mut tmp = File::create(&tmp_path)?;
            let mut keys: Vec<u64> = self.index.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let data = self.get(key)?.ok_or(StoreError::Corrupt {
                    offset: 0,
                    reason: "live key vanished during compaction",
                })?;
                Needle::new(key, data).write_to(&mut tmp)?;
            }
            tmp.flush()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        let fresh = Volume::open(&self.path)?;
        *self = fresh;
        Ok(())
    }

    /// Flushes buffered writes to the OS.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.flush()?;
        Ok(())
    }
}

fn record_len(payload: u32) -> u64 {
    (HEADER_BYTES + payload as usize + TRAILER_BYTES) as u64
}

/// Whether a corruption reason indicates a record that ran off the end
/// of the file (a torn append), as opposed to in-place damage like a bad
/// checksum or magic, which must be surfaced rather than truncated away.
fn is_torn_tail(reason: &str) -> bool {
    reason.starts_with("torn") || reason.starts_with("truncated")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_volume(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ndpipe-vol-{}-{}-{tag}.log",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn put_get_delete() {
        let path = temp_volume("pgd");
        let _c = Cleanup(path.clone());
        let mut v = Volume::open(&path).expect("open");
        v.put(1, b"alpha").expect("put");
        v.put(2, b"beta").expect("put");
        assert_eq!(v.get(1).expect("get").as_deref(), Some(&b"alpha"[..]));
        assert_eq!(v.get(3).expect("get"), None);
        assert!(v.delete(1).expect("delete"));
        assert!(!v.delete(1).expect("delete"));
        assert_eq!(v.get(1).expect("get"), None);
        assert_eq!(v.live_count(), 1);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let path = temp_volume("ow");
        let _c = Cleanup(path.clone());
        let mut v = Volume::open(&path).expect("open");
        v.put(5, b"old").expect("put");
        v.put(5, b"new").expect("put");
        assert_eq!(v.get(5).expect("get").as_deref(), Some(&b"new"[..]));
        assert!(v.garbage_bytes() > 0);
    }

    #[test]
    fn recovery_rebuilds_index() {
        let path = temp_volume("rec");
        let _c = Cleanup(path.clone());
        {
            let mut v = Volume::open(&path).expect("open");
            v.put(1, b"one").expect("put");
            v.put(2, b"two").expect("put");
            v.delete(1).expect("delete");
            v.put(3, b"three").expect("put");
            v.sync().expect("sync");
        }
        let mut v = Volume::open(&path).expect("reopen");
        assert_eq!(v.live_count(), 2);
        assert_eq!(v.get(1).expect("get"), None);
        assert_eq!(v.get(2).expect("get").as_deref(), Some(&b"two"[..]));
        assert_eq!(v.get(3).expect("get").as_deref(), Some(&b"three"[..]));
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let path = temp_volume("torn");
        let _c = Cleanup(path.clone());
        {
            let mut v = Volume::open(&path).expect("open");
            v.put(1, b"complete record").expect("put");
            v.sync().expect("sync");
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open raw");
            f.write_all(&crate::needle::MAGIC.to_le_bytes())
                .expect("tear");
            f.write_all(&[1, 2, 3]).expect("tear");
        }
        let mut v = Volume::open(&path).expect("recover");
        assert_eq!(v.live_count(), 1);
        assert_eq!(
            v.get(1).expect("get").as_deref(),
            Some(&b"complete record"[..])
        );
        // The tail was dropped; appends keep working.
        v.put(2, b"after crash").expect("put");
        assert_eq!(v.get(2).expect("get").as_deref(), Some(&b"after crash"[..]));
    }

    #[test]
    fn mid_file_bit_flip_is_surfaced_not_truncated() {
        let path = temp_volume("flip");
        let _c = Cleanup(path.clone());
        {
            let mut v = Volume::open(&path).expect("open");
            v.put(1, b"first record payload").expect("put");
            v.put(2, b"second record payload").expect("put");
            v.sync().expect("sync");
        }
        // Flip one payload byte of the FIRST record.
        let mut bytes = std::fs::read(&path).expect("read raw");
        bytes[crate::needle::HEADER_BYTES + 2] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write raw");
        // Recovery must report corruption, not silently drop record 2.
        let err = Volume::open(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Corrupt {
                    reason: "checksum mismatch",
                    ..
                }
            ),
            "unexpected {err:?}"
        );
        // And the file is untouched (record 2 still present on disk).
        assert_eq!(std::fs::read(&path).expect("reread").len(), bytes.len());
    }

    #[test]
    fn compaction_reclaims_garbage() {
        let path = temp_volume("cmp");
        let _c = Cleanup(path.clone());
        let mut v = Volume::open(&path).expect("open");
        for i in 0..50u64 {
            v.put(i, &[i as u8; 100]).expect("put");
        }
        for i in 0..40u64 {
            v.delete(i).expect("delete");
        }
        let before = v.size_bytes();
        v.compact().expect("compact");
        assert!(
            v.size_bytes() < before / 3,
            "{} -> {}",
            before,
            v.size_bytes()
        );
        assert_eq!(v.garbage_bytes(), 0);
        assert_eq!(v.live_count(), 10);
        for i in 40..50u64 {
            assert_eq!(
                v.get(i).expect("get").as_deref(),
                Some(&vec![i as u8; 100][..])
            );
        }
    }

    #[test]
    fn keys_enumerates_live_objects() {
        let path = temp_volume("keys");
        let _c = Cleanup(path.clone());
        let mut v = Volume::open(&path).expect("open");
        v.put(10, b"x").expect("put");
        v.put(20, b"y").expect("put");
        v.delete(10).expect("delete");
        let mut keys: Vec<u64> = v.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![20]);
        assert!(v.contains(20));
        assert!(!v.contains(10));
    }
}
