//! The on-disk needle record (Haystack's unit of storage).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   u32  = 0x4E_44_50_4E ("NDPN")
//! key     u64
//! flags   u8   (bit 0 = tombstone)
//! size    u32  payload bytes
//! payload [u8; size]
//! crc32   u32  over key‖flags‖size‖payload
//! ```

use crate::{crc32, StoreError};
use std::io::{Read, Write};

/// Record magic ("NDPN").
pub const MAGIC: u32 = 0x4E44_504E;
/// Fixed header bytes before the payload.
pub const HEADER_BYTES: usize = 4 + 8 + 1 + 4;
/// Trailer bytes after the payload.
pub const TRAILER_BYTES: usize = 4;

/// Flag bit marking a deletion tombstone.
pub const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// One stored record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Needle {
    /// Object key (photo id).
    pub key: u64,
    /// Flag bits.
    pub flags: u8,
    /// Payload (empty for tombstones).
    pub data: Vec<u8>,
}

impl Needle {
    /// A live record.
    pub fn new(key: u64, data: Vec<u8>) -> Self {
        Needle {
            key,
            flags: 0,
            data,
        }
    }

    /// A deletion tombstone for `key`.
    pub fn tombstone(key: u64) -> Self {
        Needle {
            key,
            flags: FLAG_TOMBSTONE,
            data: Vec::new(),
        }
    }

    /// Whether this record deletes its key.
    pub fn is_tombstone(&self) -> bool {
        self.flags & FLAG_TOMBSTONE != 0
    }

    /// Total encoded size on disk.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + self.data.len() + TRAILER_BYTES
    }

    /// Serializes the needle to a writer.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.key.to_le_bytes());
        buf.push(self.flags);
        buf.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.data);
        let crc = crc32(&buf[4..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        w.write_all(&buf)?;
        Ok(())
    }

    /// Reads one needle from a reader positioned at `offset` (used only
    /// for error reporting).
    ///
    /// Returns `Ok(None)` at a clean end-of-file boundary.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on bad magic, truncated records or
    /// checksum mismatch.
    pub fn read_from<R: Read>(r: &mut R, offset: u64) -> Result<Option<Needle>, StoreError> {
        let mut magic = [0u8; 4];
        match r.read(&mut magic)? {
            0 => return Ok(None),
            4 => {}
            n => {
                // Partial magic: try to finish it; a torn tail is corrupt.
                if r.read(&mut magic[n..])? != 4 - n {
                    return Err(StoreError::Corrupt {
                        offset,
                        reason: "torn record header",
                    });
                }
            }
        }
        if u32::from_le_bytes(magic) != MAGIC {
            return Err(StoreError::Corrupt {
                offset,
                reason: "bad magic",
            });
        }
        let mut rest = [0u8; 8 + 1 + 4];
        r.read_exact(&mut rest).map_err(|_| StoreError::Corrupt {
            offset,
            reason: "truncated header",
        })?;
        let key = u64::from_le_bytes(rest[0..8].try_into().expect("fixed slice"));
        let flags = rest[8];
        let size = u32::from_le_bytes(rest[9..13].try_into().expect("fixed slice")) as usize;
        let mut data = vec![0u8; size];
        r.read_exact(&mut data).map_err(|_| StoreError::Corrupt {
            offset,
            reason: "truncated payload",
        })?;
        let mut crc_buf = [0u8; 4];
        r.read_exact(&mut crc_buf)
            .map_err(|_| StoreError::Corrupt {
                offset,
                reason: "truncated checksum",
            })?;
        let mut check = Vec::with_capacity(13 + size);
        check.extend_from_slice(&rest);
        check.extend_from_slice(&data);
        if crc32(&check) != u32::from_le_bytes(crc_buf) {
            return Err(StoreError::Corrupt {
                offset,
                reason: "checksum mismatch",
            });
        }
        Ok(Some(Needle { key, flags, data }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: &Needle) -> Needle {
        let mut buf = Vec::new();
        n.write_to(&mut buf).expect("write");
        assert_eq!(buf.len(), n.encoded_len());
        Needle::read_from(&mut buf.as_slice(), 0)
            .expect("read")
            .expect("some")
    }

    #[test]
    fn roundtrips() {
        let n = Needle::new(12345, b"photo payload".to_vec());
        assert_eq!(roundtrip(&n), n);
        let t = Needle::tombstone(99);
        assert!(t.is_tombstone());
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn empty_payload_ok() {
        let n = Needle::new(0, Vec::new());
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn eof_is_none() {
        let empty: &[u8] = &[];
        assert!(Needle::read_from(&mut &*empty, 0)
            .expect("clean eof")
            .is_none());
    }

    #[test]
    fn flipped_payload_bit_detected() {
        let n = Needle::new(7, vec![1, 2, 3, 4]);
        let mut buf = Vec::new();
        n.write_to(&mut buf).expect("write");
        buf[HEADER_BYTES + 1] ^= 0x40;
        let err = Needle::read_from(&mut buf.as_slice(), 0).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Corrupt {
                reason: "checksum mismatch",
                ..
            }
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let n = Needle::new(7, vec![1]);
        let mut buf = Vec::new();
        n.write_to(&mut buf).expect("write");
        buf[0] = 0;
        let err = Needle::read_from(&mut buf.as_slice(), 0).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Corrupt {
                reason: "bad magic",
                ..
            }
        ));
    }

    #[test]
    fn truncation_detected() {
        let n = Needle::new(7, vec![9; 100]);
        let mut buf = Vec::new();
        n.write_to(&mut buf).expect("write");
        buf.truncate(buf.len() - 10);
        let err = Needle::read_from(&mut buf.as_slice(), 0).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }
}
