//! Model-based property testing: the object store must behave exactly
//! like a `HashMap<u64, Vec<u8>>` under any operation sequence, including
//! across close/reopen boundaries and compactions.

use objstore::ObjectStore;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..20, prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u64..20).prop_map(Op::Delete),
        2 => (0u64..20).prop_map(Op::Get),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn temp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "objstore-model-{}-{}-{tag}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_agrees_with_hashmap(ops in prop::collection::vec(op_strategy(), 1..60), tag in any::<u64>()) {
        let dir = temp_dir(tag);
        let _c = Cleanup(dir.clone());
        // Small volumes force rotation mid-sequence.
        let mut store = ObjectStore::open(&dir, 512).expect("open");
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(k, &v).expect("put");
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let existed = store.delete(k).expect("delete");
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let got = store.get(k).expect("get");
                    prop_assert_eq!(got, model.get(&k).cloned());
                }
                Op::Compact => {
                    store.compact(0.0).expect("compact");
                }
                Op::Reopen => {
                    store.sync().expect("sync");
                    drop(store);
                    store = ObjectStore::open(&dir, 512).expect("reopen");
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
        // Final full sweep.
        for (k, v) in &model {
            let got = store.get(*k).expect("get");
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
    }
}
