//! Discrete-event simulation kernel for the NDPipe reproduction.
//!
//! The cluster-level experiments of the paper (training timelines, inference
//! scaling, energy integration) are reproduced on a small, deterministic
//! simulation substrate:
//!
//! - [`SimTime`] — virtual time in seconds with total ordering,
//! - [`EventQueue`] — a time-ordered queue with stable FIFO tie-breaking,
//! - [`Resource`] — a FIFO server that tracks busy intervals, used to model
//!   GPUs, CPU pools, disks and network links,
//! - [`stats`] — online statistics and busy-time accounting used for
//!   utilization, power and energy numbers.
//!
//! The kernel is deliberately process-free: model code advances explicit
//! timelines by asking resources when work can start and recording when it
//! ends. This keeps simulations deterministic, allocation-light and easy to
//! test.
//!
//! # Example
//!
//! ```
//! use simkit::{Resource, SimTime};
//!
//! // A single-server GPU; two batches arrive at t=0.
//! let mut gpu = Resource::new("gpu");
//! let b1 = gpu.serve(SimTime::ZERO, SimTime::from_secs(2.0));
//! let b2 = gpu.serve(SimTime::ZERO, SimTime::from_secs(2.0));
//! assert_eq!(b1.end, SimTime::from_secs(2.0));
//! assert_eq!(b2.start, SimTime::from_secs(2.0)); // queued behind b1
//! assert_eq!(gpu.busy_time(), SimTime::from_secs(4.0));
//! ```

pub mod event;
pub mod resource;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use resource::{Interval, Resource};
pub use time::SimTime;
