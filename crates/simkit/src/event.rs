//! Time-ordered event queue with stable FIFO tie-breaking.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: fires at `at`, carrying `payload`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Firing time.
    pub at: SimTime,
    /// Event payload.
    pub payload: E,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A min-heap of events ordered by time, breaking ties by insertion order.
///
/// # Example
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.schedule(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock (causality).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Schedules `payload` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event and advances the clock to its time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = e.at;
            Scheduled {
                at: e.at,
                payload: e.payload,
            }
        })
    }

    /// Peeks at the earliest pending event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(SimTime::from_secs(t), t as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), "first");
        q.pop();
        q.schedule_in(SimTime::from_secs(0.5), "second");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.5)));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn causality_enforced() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
    }
}
