//! Online statistics used by the simulation reports.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simkit::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    under: u64,
    over: u64,
}

impl Histogram {
    /// A histogram with `buckets` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            under: 0,
            over: 0,
        }
    }

    /// Records a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.under += 1;
        } else if x >= self.hi {
            self.over += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of samples recorded, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.under + self.over
    }

    /// Bucket counts (in range order).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate `q`-quantile (0..=1) from bucket midpoints.
    ///
    /// Returns `None` if no in-range samples exist.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * w);
            }
        }
        Some(self.hi - 0.5 * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 100.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 2); // 0.5, 1.5
        assert_eq!(h.buckets()[1], 1); // 2.5
        assert_eq!(h.buckets()[4], 1); // 9.9
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!(q50 < q90);
        assert!((q50 - 50.0).abs() < 2.0);
        assert!((q90 - 90.0).abs() < 2.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }
}
