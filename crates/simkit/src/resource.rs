//! FIFO resources with busy-time accounting.

use crate::SimTime;

/// A closed service interval `[start, end)` on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// When service began.
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Interval {
    /// Duration of the interval.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// A single-server FIFO resource (a GPU, a disk, a network link, a CPU-core
/// pool modeled as one server with scaled service times).
///
/// Jobs are served in the order [`Resource::serve`] is called; each job
/// starts at `max(arrival, previous job's end)`. The resource accumulates
/// total busy time so utilization and energy can be derived after a run.
///
/// # Example
///
/// ```
/// use simkit::{Resource, SimTime};
///
/// let mut link = Resource::new("10Gbps link");
/// let a = link.serve(SimTime::ZERO, SimTime::from_secs(1.0));
/// let b = link.serve(SimTime::from_secs(0.5), SimTime::from_secs(1.0));
/// assert_eq!(a.end, SimTime::from_secs(1.0));
/// assert_eq!(b.start, SimTime::from_secs(1.0)); // waited 0.5s in queue
/// assert!((link.utilization(SimTime::from_secs(2.0)) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    free_at: SimTime,
    busy: SimTime,
    jobs: u64,
}

impl Resource {
    /// A new, idle resource. The name is used only for diagnostics.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            jobs: 0,
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serves a job arriving at `arrival` that needs `service` time,
    /// returning the interval during which it actually ran.
    pub fn serve(&mut self, arrival: SimTime, service: SimTime) -> Interval {
        let start = arrival.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.jobs += 1;
        Interval { start, end }
    }

    /// Earliest time a new arrival could begin service.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time spent serving jobs.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Fraction of `[0, horizon)` spent busy. Clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "utilization needs a horizon");
        (self.busy.as_secs() / horizon.as_secs()).min(1.0)
    }

    /// Resets the resource to idle at time zero, clearing statistics.
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.busy = SimTime::ZERO;
        self.jobs = 0;
    }
}

/// A pool of `n` identical FIFO servers with least-loaded dispatch.
///
/// Models multi-core CPU sections (e.g. the eight decompression cores of
/// SRV-C) and multi-GPU hosts.
#[derive(Debug, Clone)]
pub struct Pool {
    servers: Vec<Resource>,
}

impl Pool {
    /// A pool of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(name: &str, n: usize) -> Self {
        assert!(n > 0, "pool must have at least one server");
        Pool {
            servers: (0..n)
                .map(|i| Resource::new(format!("{name}[{i}]")))
                .collect(),
        }
    }

    /// Number of servers.
    pub fn size(&self) -> usize {
        self.servers.len()
    }

    /// Serves a job on the server that can start it earliest.
    pub fn serve(&mut self, arrival: SimTime, service: SimTime) -> Interval {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at().max(arrival))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        self.servers[idx].serve(arrival, service)
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> SimTime {
        self.servers.iter().map(|s| s.busy_time()).sum()
    }

    /// Mean utilization across servers over `[0, horizon)`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.servers
            .iter()
            .map(|s| s.utilization(horizon))
            .sum::<f64>()
            / self.servers.len() as f64
    }

    /// Earliest time any server becomes free.
    pub fn earliest_free(&self) -> SimTime {
        self.servers
            .iter()
            .map(|s| s.free_at())
            .min()
            .expect("pool is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_queueing() {
        let mut r = Resource::new("disk");
        let a = r.serve(SimTime::ZERO, SimTime::from_secs(3.0));
        let b = r.serve(SimTime::from_secs(1.0), SimTime::from_secs(2.0));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::from_secs(3.0));
        assert_eq!(b.end, SimTime::from_secs(5.0));
        assert_eq!(r.jobs_served(), 2);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut r = Resource::new("gpu");
        r.serve(SimTime::ZERO, SimTime::from_secs(1.0));
        r.serve(SimTime::from_secs(5.0), SimTime::from_secs(1.0));
        assert_eq!(r.busy_time(), SimTime::from_secs(2.0));
        assert!((r.utilization(SimTime::from_secs(10.0)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn interval_duration() {
        let i = Interval {
            start: SimTime::from_secs(1.0),
            end: SimTime::from_secs(3.5),
        };
        assert_eq!(i.duration(), SimTime::from_secs(2.5));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("x");
        r.serve(SimTime::ZERO, SimTime::from_secs(2.0));
        r.reset();
        assert_eq!(r.busy_time(), SimTime::ZERO);
        assert_eq!(r.free_at(), SimTime::ZERO);
        assert_eq!(r.jobs_served(), 0);
    }

    #[test]
    fn pool_parallelism() {
        let mut p = Pool::new("cores", 2);
        let a = p.serve(SimTime::ZERO, SimTime::from_secs(2.0));
        let b = p.serve(SimTime::ZERO, SimTime::from_secs(2.0));
        let c = p.serve(SimTime::ZERO, SimTime::from_secs(2.0));
        // First two run in parallel, third queues behind one of them.
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        assert_eq!(c.start, SimTime::from_secs(2.0));
        assert_eq!(p.busy_time(), SimTime::from_secs(6.0));
    }

    #[test]
    fn pool_least_loaded_dispatch() {
        let mut p = Pool::new("cores", 2);
        p.serve(SimTime::ZERO, SimTime::from_secs(10.0)); // server 0 long job
        let b = p.serve(SimTime::from_secs(1.0), SimTime::from_secs(1.0));
        assert_eq!(b.start, SimTime::from_secs(1.0)); // went to idle server 1
        assert_eq!(p.earliest_free(), SimTime::from_secs(2.0));
    }
}
