//! Virtual simulation time.

use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in seconds.
///
/// `SimTime` wraps a non-negative, finite `f64` and provides a total order,
/// so it can live inside ordered collections such as the event queue.
///
/// # Example
///
/// ```
/// use simkit::SimTime;
///
/// let t = SimTime::from_secs(1.5) + SimTime::from_millis(500.0);
/// assert_eq!(t.as_secs(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_secs(ms / 1e3)
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimTime::from_secs(us / 1e6)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Saturating subtraction: returns zero instead of going negative.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

// SimTime is always finite (checked at construction), so f64 comparison is
// total over the values that can exist.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`SimTime::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 60.0 {
            write!(f, "{:.2}min", self.0 / 60.0)
        } else if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else {
            write!(f, "{:.3}ms", self.0 * 1e3)
        }
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_units() {
        let t = SimTime::from_millis(1500.0);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!((t + t).as_secs(), 3.0);
        assert_eq!((t - SimTime::from_secs(0.5)).as_secs(), 1.0);
        assert_eq!((t * 2.0).as_secs(), 3.0);
        assert_eq!((t / 3.0).as_secs(), 0.5);
        assert_eq!(SimTime::from_micros(2500.0).as_millis(), 2.5);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_secs(1.0));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_secs(120.0).to_string(), "2.00min");
        assert_eq!(SimTime::from_secs(2.5).to_string(), "2.500s");
        assert_eq!(SimTime::from_millis(1.5).to_string(), "1.500ms");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }
}
