//! Property tests of the simulation kernel.

use proptest::prelude::*;
use simkit::resource::Pool;
use simkit::{EventQueue, Resource, SimTime};

proptest! {
    /// A FIFO resource conserves work: busy time equals the sum of
    /// service times, and completions never overlap.
    #[test]
    fn resource_conserves_work(jobs in prop::collection::vec((0u32..100, 1u32..50), 1..40)) {
        let mut r = Resource::new("r");
        let mut total = 0.0;
        let mut last_end = SimTime::ZERO;
        for &(arrival, service) in &jobs {
            let iv = r.serve(
                SimTime::from_secs(arrival as f64),
                SimTime::from_secs(service as f64),
            );
            total += service as f64;
            // Start no earlier than arrival, no earlier than prior end.
            prop_assert!(iv.start >= SimTime::from_secs(arrival as f64));
            prop_assert!(iv.start >= last_end);
            prop_assert_eq!(iv.duration(), SimTime::from_secs(service as f64));
            last_end = iv.end;
        }
        prop_assert!((r.busy_time().as_secs() - total).abs() < 1e-9);
        prop_assert_eq!(r.jobs_served(), jobs.len() as u64);
    }

    /// A k-server pool is never slower than a single server and never
    /// faster than k ideal servers.
    #[test]
    fn pool_bounds(
        k in 1usize..6,
        jobs in prop::collection::vec(1u32..20, 1..30),
    ) {
        let mut single = Resource::new("one");
        let mut pool = Pool::new("pool", k);
        let mut single_end = SimTime::ZERO;
        let mut pool_end = SimTime::ZERO;
        let mut total = 0.0;
        for &service in &jobs {
            let s = SimTime::from_secs(service as f64);
            single_end = single.serve(SimTime::ZERO, s).end;
            pool_end = pool_end.max(pool.serve(SimTime::ZERO, s).end);
            total += service as f64;
        }
        prop_assert!(pool_end <= single_end);
        // Lower bound: total work / k.
        prop_assert!(pool_end.as_secs() + 1e-9 >= total / k as f64);
    }

    /// The event queue clock is monotone over any schedule.
    #[test]
    fn clock_monotone(times in prop::collection::vec(0u32..1000, 1..60)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_secs(t as f64), ());
        }
        let mut last = SimTime::ZERO;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last);
            prop_assert_eq!(q.now(), e.at);
            last = e.at;
        }
    }

    /// Interleaving schedule/pop maintains causality: every popped event
    /// fires no earlier than the event that preceded it.
    #[test]
    fn interleaved_schedule_pop(script in prop::collection::vec((0u32..50, any::<bool>()), 1..50)) {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for &(delay, do_pop) in &script {
            q.schedule_in(SimTime::from_secs(delay as f64), ());
            if do_pop {
                if let Some(e) = q.pop() {
                    prop_assert!(e.at >= last);
                    last = e.at;
                }
            }
        }
    }
}
