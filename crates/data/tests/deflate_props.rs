//! Property tests of the DEFLATE codec over adversarial input families.

use ndpipe_data::deflate::{
    compress, compress_chunked_with, compress_stored, decompress, decompress_framed_with,
    Compressor, FRAME_MAGIC,
};
use proptest::prelude::*;

/// Input families that stress different codec paths.
fn structured_inputs() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        prop::collection::vec(any::<u8>(), 0..2048),
        // Long runs (RLE path / overlapping matches).
        (any::<u8>(), 1usize..4096).prop_map(|(b, n)| vec![b; n]),
        // Repeated short phrases (dictionary matches).
        (prop::collection::vec(any::<u8>(), 1..16), 1usize..256)
            .prop_map(|(phrase, reps)| phrase.repeat(reps)),
        // Two-phase data: compressible prefix + random tail.
        (1usize..512, prop::collection::vec(any::<u8>(), 0..512)).prop_map(|(n, tail)| {
            let mut v = vec![0xAB; n];
            v.extend(tail);
            v
        }),
        // Ascending counters (few matches, many distinct literals).
        (0usize..2048).prop_map(|n| (0..n).map(|i| (i % 251) as u8).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every input family round-trips exactly.
    #[test]
    fn roundtrip_structured(data in structured_inputs()) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).expect("valid"), data);
    }

    /// Stored-block encoding also round-trips (the fallback path).
    #[test]
    fn roundtrip_stored(data in prop::collection::vec(any::<u8>(), 0..70_000)) {
        let packed = compress_stored(&data);
        prop_assert_eq!(decompress(&packed).expect("valid"), data);
    }

    /// Decompressing arbitrary garbage never panics — it either errors
    /// or produces some bytes, but must not crash.
    #[test]
    fn decompress_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&garbage);
    }

    /// Compression is deterministic.
    #[test]
    fn deterministic(data in prop::collection::vec(any::<u8>(), 0..1024)) {
        prop_assert_eq!(compress(&data), compress(&data));
    }

    /// Truncating a valid stream never yields the original data.
    #[test]
    fn truncation_detected(data in prop::collection::vec(any::<u8>(), 8..512), cut in 1usize..8) {
        let packed = compress(&data);
        prop_assume!(packed.len() > cut);
        let truncated = &packed[..packed.len() - cut];
        match decompress(truncated) {
            Err(_) => {}
            Ok(out) => prop_assert_ne!(out, data),
        }
    }

    /// Framed chunked codec round-trips across chunk sizes and thread
    /// counts, including the empty, single-chunk, and exact-boundary
    /// cases; the bytes are invariant to the worker count.
    #[test]
    fn framed_roundtrip(
        data in structured_inputs(),
        chunk_exp in 6u32..12, // chunk sizes 64..2048 bytes
        threads in 1usize..5,
    ) {
        let chunk_size = 1usize << chunk_exp;
        let framed = compress_chunked_with(&data, chunk_size, threads);
        // Thread-count invariance.
        prop_assert_eq!(&framed, &compress_chunked_with(&data, chunk_size, 1));
        // Single-chunk inputs must stay byte-compatible with plain deflate.
        if data.len() <= chunk_size {
            prop_assert_eq!(&framed, &compress(&data));
        } else {
            prop_assert_eq!(&framed[..4], &FRAME_MAGIC[..]);
        }
        prop_assert_eq!(decompress_framed_with(&framed, threads).expect("valid"), data);
    }

    /// Chunk-boundary lengths (n*chunk - 1, n*chunk, n*chunk + 1) all
    /// round-trip through the framed codec.
    #[test]
    fn framed_boundary_lengths(chunks in 1usize..5, delta in 0usize..3, fill in any::<u8>()) {
        let chunk_size = 256usize;
        let len = (chunks * chunk_size + delta).saturating_sub(1);
        let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add((i % 7) as u8)).collect();
        let framed = compress_chunked_with(&data, chunk_size, 3);
        prop_assert_eq!(decompress_framed_with(&framed, 3).expect("valid"), data);
    }

    /// A reused compressor emits the same bytes as a fresh one for every
    /// input in a sequence (the epoch-tagged scratch never leaks state).
    #[test]
    fn reused_compressor_is_stateless(
        inputs in prop::collection::vec(structured_inputs(), 1..6)
    ) {
        let mut shared = Compressor::new();
        for data in &inputs {
            prop_assert_eq!(shared.compress(data), Compressor::new().compress(data));
        }
    }

    /// Framed decoding of arbitrary garbage (magic-prefixed or not) never
    /// panics.
    #[test]
    fn framed_decode_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress_framed_with(&garbage, 2);
        let mut tagged = garbage.clone();
        if tagged.len() >= 4 {
            tagged[..4].copy_from_slice(&FRAME_MAGIC);
            let _ = decompress_framed_with(&tagged, 2);
        }
    }
}
