//! Property tests of the DEFLATE codec over adversarial input families.

use ndpipe_data::deflate::{compress, compress_stored, decompress};
use proptest::prelude::*;

/// Input families that stress different codec paths.
fn structured_inputs() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        prop::collection::vec(any::<u8>(), 0..2048),
        // Long runs (RLE path / overlapping matches).
        (any::<u8>(), 1usize..4096).prop_map(|(b, n)| vec![b; n]),
        // Repeated short phrases (dictionary matches).
        (prop::collection::vec(any::<u8>(), 1..16), 1usize..256)
            .prop_map(|(phrase, reps)| phrase.repeat(reps)),
        // Two-phase data: compressible prefix + random tail.
        (1usize..512, prop::collection::vec(any::<u8>(), 0..512)).prop_map(|(n, tail)| {
            let mut v = vec![0xAB; n];
            v.extend(tail);
            v
        }),
        // Ascending counters (few matches, many distinct literals).
        (0usize..2048).prop_map(|n| (0..n).map(|i| (i % 251) as u8).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every input family round-trips exactly.
    #[test]
    fn roundtrip_structured(data in structured_inputs()) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).expect("valid"), data);
    }

    /// Stored-block encoding also round-trips (the fallback path).
    #[test]
    fn roundtrip_stored(data in prop::collection::vec(any::<u8>(), 0..70_000)) {
        let packed = compress_stored(&data);
        prop_assert_eq!(decompress(&packed).expect("valid"), data);
    }

    /// Decompressing arbitrary garbage never panics — it either errors
    /// or produces some bytes, but must not crash.
    #[test]
    fn decompress_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&garbage);
    }

    /// Compression is deterministic.
    #[test]
    fn deterministic(data in prop::collection::vec(any::<u8>(), 0..1024)) {
        prop_assert_eq!(compress(&data), compress(&data));
    }

    /// Truncating a valid stream never yields the original data.
    #[test]
    fn truncation_detected(data in prop::collection::vec(any::<u8>(), 8..512), cut in 1usize..8) {
        let packed = compress(&data);
        prop_assume!(packed.len() > cut);
        let truncated = &packed[..packed.len() - cut];
        match decompress(truncated) {
            Err(_) => {}
            Ok(out) => prop_assert_ne!(out, data),
        }
    }
}
