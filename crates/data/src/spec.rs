//! Dataset presets shaped like the paper's benchmarks.
//!
//! The paper uses CIFAR-100 (100 classes), ImageNet-1K (1000 classes) and
//! ImageNet-21K (21 841 classes). Running synthetic equivalents at full
//! class counts would add nothing but wall-time, so the presets scale the
//! class counts down while preserving the property that matters for
//! Table 2: *difficulty ordering*. CIFAR-100-like is the easiest
//! (separable prototypes), ImageNet-1K-like is mid, ImageNet-21K-like is
//! hard (many overlapping classes), so absolute accuracies land in
//! distinct bands just as the paper's do (≈77 % / ≈74 % / ≈36 % top-1 for
//! ResNet50).

/// Parameters of a synthetic dataset family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Rendered input ("image") dimensionality.
    pub input_dim: usize,
    /// Latent prototype dimensionality.
    pub latent_dim: usize,
    /// Classes in the initial label space.
    pub initial_classes: usize,
    /// Class-overlap noise (bigger = harder).
    pub noise_sigma: f32,
    /// Size of each freshly drawn test set.
    pub test_samples: usize,
    /// Daily prototype random-walk rate.
    pub daily_drift: f32,
}

impl DatasetSpec {
    /// CIFAR-100-like: 100 classes, well separated.
    pub fn cifar100() -> Self {
        DatasetSpec {
            name: "cifar100-like",
            input_dim: 64,
            latent_dim: 24,
            initial_classes: 100,
            noise_sigma: 1.08,
            test_samples: 2500,
            daily_drift: 0.08,
        }
    }

    /// ImageNet-1K-like: more classes, moderate overlap.
    pub fn imagenet_1k() -> Self {
        DatasetSpec {
            name: "imagenet1k-like",
            input_dim: 64,
            latent_dim: 24,
            initial_classes: 150,
            noise_sigma: 1.0,
            test_samples: 2500,
            daily_drift: 0.08,
        }
    }

    /// ImageNet-21K-like: many heavily overlapping classes.
    pub fn imagenet_21k() -> Self {
        DatasetSpec {
            name: "imagenet21k-like",
            input_dim: 64,
            latent_dim: 24,
            initial_classes: 300,
            noise_sigma: 1.32,
            test_samples: 2500,
            daily_drift: 0.08,
        }
    }

    /// A tiny spec for unit tests: hard enough that drift is measurable.
    pub fn tiny() -> Self {
        DatasetSpec {
            name: "tiny",
            input_dim: 16,
            latent_dim: 8,
            initial_classes: 10,
            noise_sigma: 0.85,
            test_samples: 400,
            daily_drift: 0.1,
        }
    }

    /// All three paper-shaped presets, in the order Table 2 lists them.
    pub fn paper_benchmarks() -> [DatasetSpec; 3] {
        [
            DatasetSpec::cifar100(),
            DatasetSpec::imagenet_1k(),
            DatasetSpec::imagenet_21k(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_ordering_matches_paper() {
        // Difficulty (class count × overlap) rises CIFAR → 1K → 21K so the
        // Base accuracies land in distinct bands like Table 2's.
        let [c, i1, i21] = DatasetSpec::paper_benchmarks();
        assert!(c.initial_classes < i1.initial_classes);
        assert!(i1.initial_classes < i21.initial_classes);
        assert!(i1.noise_sigma < i21.noise_sigma);
        let hardness = |s: &DatasetSpec| s.noise_sigma * (s.initial_classes as f32).ln();
        assert!(hardness(&c) < hardness(&i1));
        assert!(hardness(&i1) < hardness(&i21));
    }

    #[test]
    fn names_are_distinct() {
        let [a, b, c] = DatasetSpec::paper_benchmarks();
        assert_ne!(a.name, b.name);
        assert_ne!(b.name, c.name);
    }
}
