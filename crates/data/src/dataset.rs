//! Labeled datasets and the day-by-day drift scenario of §3.

use crate::synth::ClassUniverse;
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// A labeled dataset: a `[n, input_dim]` feature matrix plus one integer
/// label per row, over a label space of `num_classes`.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl LabeledDataset {
    /// Builds a dataset from rows and labels.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, lengths mismatch, or a label is out of
    /// range.
    pub fn new(rows: Vec<Tensor>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert!(!rows.is_empty(), "dataset cannot be empty");
        assert_eq!(rows.len(), labels.len(), "one label per row required");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        LabeledDataset {
            features: Tensor::stack_rows(&rows),
            labels,
            num_classes,
        }
    }

    /// Builds a dataset directly from a stacked feature matrix.
    ///
    /// # Panics
    ///
    /// Panics if `features` is not rank 2, lengths mismatch, or a label is
    /// out of range.
    pub fn from_matrix(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.shape().rank(), 2, "features must be a matrix");
        assert_eq!(features.dims()[0], labels.len(), "one label per row");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        LabeledDataset {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no examples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.features.dims()[1]
    }

    /// Size of the label space.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The stacked `[n, input_dim]` feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// The labels, one per row.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(features, labels)` mini-batches of size `batch`.
    ///
    /// The final batch may be smaller. Batches preserve row order; shuffle
    /// first for SGD.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = (Tensor, &[usize])> + '_ {
        assert!(batch > 0, "batch size must be positive");
        let n = self.len();
        let dim = self.input_dim();
        (0..n).step_by(batch).map(move |start| {
            let end = (start + batch).min(n);
            let rows = end - start;
            let slice = self.features.data()[start * dim..end * dim].to_vec();
            (
                Tensor::from_vec(slice, &[rows, dim]),
                &self.labels[start..end],
            )
        })
    }

    /// Returns a shuffled copy.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> LabeledDataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.select(&order)
    }

    /// Returns the rows at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> LabeledDataset {
        assert!(!indices.is_empty(), "selection cannot be empty");
        let dim = self.input_dim();
        let mut data = Vec::with_capacity(indices.len() * dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            data.extend_from_slice(&self.features.data()[i * dim..(i + 1) * dim]);
            labels.push(self.labels[i]);
        }
        LabeledDataset {
            features: Tensor::from_vec(data, &[indices.len(), dim]),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `k` nearly equal contiguous shards (for distributing
    /// local batches across PipeStores, and for the `N_run` sub-datasets
    /// of pipelined FT-DMP).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > len`.
    pub fn shards(&self, k: usize) -> Vec<LabeledDataset> {
        assert!(k > 0, "need at least one shard");
        assert!(k <= self.len(), "more shards than examples");
        let n = self.len();
        let base = n / k;
        let rem = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0;
        for s in 0..k {
            let size = base + usize::from(s < rem);
            let idx: Vec<usize> = (start..start + size).collect();
            out.push(self.select(&idx));
            start += size;
        }
        out
    }

    /// Concatenates datasets over the same feature space. The label space
    /// becomes the maximum of the parts'.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or feature dims differ.
    pub fn concat(parts: &[LabeledDataset]) -> LabeledDataset {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let dim = parts[0].input_dim();
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut classes = 0;
        for p in parts {
            assert_eq!(p.input_dim(), dim, "feature dim mismatch");
            data.extend_from_slice(p.features.data());
            labels.extend_from_slice(&p.labels);
            classes = classes.max(p.num_classes);
        }
        let n = labels.len();
        LabeledDataset {
            features: Tensor::from_vec(data, &[n, dim]),
            labels,
            num_classes: classes,
        }
    }

    /// Re-labels the dataset into a wider label space.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is smaller than the current label space.
    pub fn widened(&self, num_classes: usize) -> LabeledDataset {
        assert!(
            num_classes >= self.num_classes,
            "cannot narrow the label space"
        );
        LabeledDataset {
            features: self.features.clone(),
            labels: self.labels.clone(),
            num_classes,
        }
    }
}

/// Day-by-day data evolution following §3.2 of the paper:
///
/// - the photo pool grows by [`DriftScenario::DAILY_GROWTH`] per day,
/// - [`DriftScenario::NEW_CATEGORY_FRAC`] of newly added photos belong to
///   categories outside the initial label space,
/// - the underlying distribution random-walks a little every day.
///
/// # Example
///
/// ```
/// use ndpipe_data::{DriftScenario, DatasetSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut sc = DriftScenario::new(DatasetSpec::tiny(), 200, &mut rng);
/// let before = sc.pool_size();
/// sc.advance_day(&mut rng);
/// assert!(sc.pool_size() > before);
/// ```
#[derive(Debug)]
pub struct DriftScenario {
    universe: ClassUniverse,
    initial_classes: usize,
    /// All (class, feature) pairs stored so far, in upload order.
    pool: Vec<(usize, Tensor)>,
    day: usize,
    samples_per_test: usize,
    drift_rate: f32,
}

impl DriftScenario {
    /// Daily growth of the stored-photo pool (paper: 1.78 %).
    pub const DAILY_GROWTH: f64 = 0.0178;
    /// Fraction of newly added photos in brand-new categories (paper: 5.3 %).
    pub const NEW_CATEGORY_FRAC: f64 = 0.053;

    /// Creates a scenario with an initial pool of `initial_pool` photos
    /// drawn uniformly over the spec's initial classes.
    ///
    /// # Panics
    ///
    /// Panics if `initial_pool` is zero.
    pub fn new<R: Rng + ?Sized>(
        spec: crate::spec::DatasetSpec,
        initial_pool: usize,
        rng: &mut R,
    ) -> Self {
        assert!(initial_pool > 0, "initial pool cannot be empty");
        let universe = ClassUniverse::new(
            spec.input_dim,
            spec.latent_dim,
            spec.initial_classes,
            spec.noise_sigma,
            rng,
        );
        let mut pool = Vec::with_capacity(initial_pool);
        for i in 0..initial_pool {
            let class = i % spec.initial_classes;
            let x = universe.sample(class, rng);
            pool.push((class, x));
        }
        DriftScenario {
            universe,
            initial_classes: spec.initial_classes,
            pool,
            day: 0,
            samples_per_test: spec.test_samples,
            drift_rate: spec.daily_drift,
        }
    }

    /// The current day (0 = scenario start).
    pub fn day(&self) -> usize {
        self.day
    }

    /// Number of photos stored so far.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// The `i`-th stored item: `(ground-truth class, features)`. Items
    /// are indexed in upload order, which systems use as the photo id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn pool_item(&self, i: usize) -> (usize, &Tensor) {
        let (class, x) = &self.pool[i];
        (*class, x)
    }

    /// Number of classes in the initial label space.
    pub fn initial_classes(&self) -> usize {
        self.initial_classes
    }

    /// Number of classes that exist today (initial + emerged).
    pub fn current_classes(&self) -> usize {
        self.universe.classes()
    }

    /// Read access to the evolving universe.
    pub fn universe(&self) -> &ClassUniverse {
        &self.universe
    }

    /// Advances one day: drift the distribution, then add
    /// `ceil(pool × 1.78 %)` new photos, 5.3 % of them in new categories.
    pub fn advance_day<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.day += 1;
        self.universe.drift(self.drift_rate, rng);
        let added = ((self.pool.len() as f64 * Self::DAILY_GROWTH).ceil() as usize).max(1);
        for _ in 0..added {
            // Each upload is an emerging-category photo with prob 5.3 %,
            // so the rate holds at any pool scale.
            let class = if rng.gen_bool(Self::NEW_CATEGORY_FRAC) {
                if self.universe.classes() > self.initial_classes && rng.gen_bool(0.7) {
                    // Usually another photo of an already-emerged class.
                    rng.gen_range(self.initial_classes..self.universe.classes())
                } else {
                    self.universe.add_class(rng)
                }
            } else {
                rng.gen_range(0..self.universe.classes())
            };
            let x = self.universe.sample(class, rng);
            self.pool.push((class, x));
        }
    }

    /// The training set visible at scenario start (the paper's "initial
    /// model trains with 78 % of the total dataset" setup is expressed by
    /// choosing `initial_pool` accordingly).
    pub fn train_set(&self) -> LabeledDataset {
        self.dataset_over(&self.pool)
    }

    /// The most recent `n` uploads (for fine-tuning on fresh data).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn recent_train_set(&self, n: usize) -> LabeledDataset {
        assert!(n > 0, "need at least one example");
        let start = self.pool.len().saturating_sub(n);
        self.dataset_over(&self.pool[start..])
    }

    /// Draws a fresh test set reflecting *today's* class mix: classes are
    /// sampled in proportion to their share of the stored pool, features
    /// from today's (drifted) distribution.
    pub fn test_set<R: Rng + ?Sized>(&self, rng: &mut R) -> LabeledDataset {
        let mut rows = Vec::with_capacity(self.samples_per_test);
        let mut labels = Vec::with_capacity(self.samples_per_test);
        for _ in 0..self.samples_per_test {
            let &(class, _) = &self.pool[rng.gen_range(0..self.pool.len())];
            rows.push(self.universe.sample(class, rng));
            labels.push(class);
        }
        LabeledDataset::new(rows, labels, self.universe.classes())
    }

    fn dataset_over(&self, items: &[(usize, Tensor)]) -> LabeledDataset {
        let rows: Vec<Tensor> = items.iter().map(|(_, x)| x.clone()).collect();
        let labels: Vec<usize> = items.iter().map(|(c, _)| *c).collect();
        LabeledDataset::new(rows, labels, self.universe.classes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> LabeledDataset {
        let rows: Vec<Tensor> = (0..10)
            .map(|i| Tensor::from_vec(vec![i as f32, (i * 2) as f32], &[2]))
            .collect();
        let labels = (0..10).map(|i| i % 3).collect();
        LabeledDataset::new(rows, labels, 3)
    }

    #[test]
    fn construction_invariants() {
        let d = small();
        assert_eq!(d.len(), 10);
        assert_eq!(d.input_dim(), 2);
        assert_eq!(d.num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let rows = vec![Tensor::zeros(&[2])];
        let _ = LabeledDataset::new(rows, vec![5], 3);
    }

    #[test]
    fn batches_cover_everything() {
        let d = small();
        let mut seen = 0;
        for (x, y) in d.batches(3) {
            assert_eq!(x.dims()[0], y.len());
            seen += y.len();
        }
        assert_eq!(seen, 10);
        // Last batch is the remainder.
        let sizes: Vec<usize> = d.batches(3).map(|(_, y)| y.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn shards_partition_the_data() {
        let d = small();
        let shards = d.shards(3);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, d.len());
        // Sizes differ by at most one.
        let min = shards.iter().map(|s| s.len()).min().unwrap();
        let max = shards.iter().map(|s| s.len()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn select_and_shuffle_preserve_pairing() {
        let d = small();
        let mut rng = StdRng::seed_from_u64(3);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        // Every (feature, label) pair in the shuffle exists in the source.
        for i in 0..s.len() {
            let row = s.features().row(i);
            let found =
                (0..d.len()).any(|j| d.features().row(j) == row && d.labels()[j] == s.labels()[i]);
            assert!(found, "row {i} lost its label");
        }
    }

    #[test]
    fn concat_and_widen() {
        let d = small();
        let c = LabeledDataset::concat(&[d.clone(), d.clone()]);
        assert_eq!(c.len(), 20);
        let w = d.widened(10);
        assert_eq!(w.num_classes(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot narrow")]
    fn widen_cannot_narrow() {
        let _ = small().widened(2);
    }

    #[test]
    fn scenario_grows_and_adds_classes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sc = DriftScenario::new(DatasetSpec::tiny(), 300, &mut rng);
        let classes0 = sc.current_classes();
        for _ in 0..14 {
            sc.advance_day(&mut rng);
        }
        assert_eq!(sc.day(), 14);
        // ~1.78%/day over 14 days ≈ 28% growth.
        let grown = sc.pool_size() as f64 / 300.0;
        assert!((1.2..1.4).contains(&grown), "growth factor {grown}");
        assert!(sc.current_classes() > classes0, "no classes emerged");
    }

    #[test]
    fn test_set_reflects_new_classes_eventually() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut sc = DriftScenario::new(DatasetSpec::tiny(), 500, &mut rng);
        for _ in 0..20 {
            sc.advance_day(&mut rng);
        }
        let t = sc.test_set(&mut rng);
        assert_eq!(t.num_classes(), sc.current_classes());
        // With 20 days of additions some test labels should be emerging
        // classes (not guaranteed per-sample; check label space grew).
        assert!(t.num_classes() > sc.initial_classes());
    }

    #[test]
    fn recent_train_set_takes_tail() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut sc = DriftScenario::new(DatasetSpec::tiny(), 100, &mut rng);
        sc.advance_day(&mut rng);
        let recent = sc.recent_train_set(10);
        assert_eq!(recent.len(), 10);
    }
}
