//! Drifting class-prototype generator.
//!
//! Classes are Gaussian prototypes in a latent space; an "image" is a
//! latent sample pushed through a fixed random nonlinear rendering map.
//! A feature extractor must (approximately) invert the rendering, which is
//! what makes full training meaningfully better than classifier-only
//! fine-tuning — exactly the gap the paper's Table 2 shows between `Full`
//! and `NDPipe`.
//!
//! Drift has the two ingredients of §2.2:
//! - *input-distribution drift*: prototypes perform a random walk,
//! - *new categories*: emerging classes outside the initial label space.

use rand::Rng;
use tensor::Tensor;

/// A universe of classes over a latent space with a fixed rendering map.
///
/// # Example
///
/// ```
/// use ndpipe_data::ClassUniverse;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let u = ClassUniverse::new(16, 8, 10, 0.3, &mut rng);
/// let x = u.sample(3, &mut rng);
/// assert_eq!(x.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ClassUniverse {
    input_dim: usize,
    latent_dim: usize,
    noise_sigma: f32,
    prototypes: Vec<Tensor>,
    /// Fixed rendering matrix `[input_dim, latent_dim]`.
    render: Tensor,
    /// Fixed rendering bias `[input_dim]`.
    render_bias: Tensor,
}

impl ClassUniverse {
    /// Creates a universe of `classes` prototypes.
    ///
    /// `noise_sigma` controls class overlap: small values give separable
    /// (CIFAR-100-like) problems, large values give hard
    /// (ImageNet-21K-like) problems.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero, or
    /// `noise_sigma` is negative.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        latent_dim: usize,
        classes: usize,
        noise_sigma: f32,
        rng: &mut R,
    ) -> Self {
        assert!(
            input_dim > 0 && latent_dim > 0,
            "dimensions must be positive"
        );
        assert!(classes > 0, "need at least one class");
        assert!(noise_sigma >= 0.0, "noise must be non-negative");
        let prototypes = (0..classes)
            .map(|_| Tensor::randn(&[latent_dim], rng))
            .collect();
        let render =
            Tensor::randn(&[input_dim, latent_dim], rng).scale(1.0 / (latent_dim as f32).sqrt());
        let render_bias = Tensor::randn(&[input_dim], rng).scale(0.1);
        ClassUniverse {
            input_dim,
            latent_dim,
            noise_sigma,
            prototypes,
            render,
            render_bias,
        }
    }

    /// Number of classes currently in the universe.
    pub fn classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Input ("image") dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Draws one rendered sample of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Tensor {
        assert!(class < self.prototypes.len(), "class {class} out of range");
        let mut z = self.prototypes[class].clone();
        let eps = Tensor::randn(&[self.latent_dim], rng).scale(self.noise_sigma);
        z.axpy(1.0, &eps);
        self.render_latent(&z)
    }

    /// Renders a latent vector to input space: `tanh(A z + b)`.
    fn render_latent(&self, z: &Tensor) -> Tensor {
        let zm = z
            .reshape(&[self.latent_dim, 1])
            .expect("latent is a vector");
        let x = tensor::linalg::Gemm::new(&self.render, &zm)
            .run()
            .reshape(&[self.input_dim])
            .expect("render output is a vector");
        x.add(&self.render_bias).map(f32::tanh)
    }

    /// Random-walks every prototype by `rate` (input-distribution drift).
    pub fn drift<R: Rng + ?Sized>(&mut self, rate: f32, rng: &mut R) {
        for p in &mut self.prototypes {
            let step = Tensor::randn(&[self.latent_dim], rng).scale(rate);
            p.axpy(1.0, &step);
        }
    }

    /// Adds a brand-new class (an emerging category) and returns its id.
    pub fn add_class<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        self.prototypes.push(Tensor::randn(&[self.latent_dim], rng));
        self.prototypes.len() - 1
    }

    /// Euclidean distance between two class prototypes (a proxy for how
    /// confusable they are).
    ///
    /// # Panics
    ///
    /// Panics if either class is out of range.
    pub fn prototype_distance(&self, a: usize, b: usize) -> f32 {
        self.prototypes[a].sub(&self.prototypes[b]).frobenius_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe(sigma: f32) -> (ClassUniverse, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let u = ClassUniverse::new(32, 12, 8, sigma, &mut rng);
        (u, rng)
    }

    #[test]
    fn samples_have_input_dim_and_bounded_range() {
        let (u, mut rng) = universe(0.3);
        let x = u.sample(0, &mut rng);
        assert_eq!(x.len(), 32);
        assert!(x.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn same_class_samples_are_closer_than_cross_class() {
        let (u, mut rng) = universe(0.2);
        let mut within = 0.0;
        let mut across = 0.0;
        let n = 30;
        for _ in 0..n {
            let a = u.sample(1, &mut rng);
            let b = u.sample(1, &mut rng);
            let c = u.sample(5, &mut rng);
            within += a.sub(&b).frobenius_norm();
            across += a.sub(&c).frobenius_norm();
        }
        assert!(
            within < across,
            "within {within} should be < across {across}"
        );
    }

    #[test]
    fn drift_moves_prototypes() {
        let (mut u, mut rng) = universe(0.2);
        let before = u.prototypes[0].clone();
        u.drift(0.5, &mut rng);
        let moved = u.prototypes[0].sub(&before).frobenius_norm();
        assert!(moved > 0.0);
    }

    #[test]
    fn zero_drift_is_identity_scale() {
        let (mut u, mut rng) = universe(0.2);
        let before = u.prototypes[0].clone();
        u.drift(0.0, &mut rng);
        assert_eq!(u.prototypes[0], before);
    }

    #[test]
    fn add_class_extends_universe() {
        let (mut u, mut rng) = universe(0.2);
        let n = u.classes();
        let id = u.add_class(&mut rng);
        assert_eq!(id, n);
        assert_eq!(u.classes(), n + 1);
        // Samples of the new class are valid.
        let x = u.sample(id, &mut rng);
        assert_eq!(x.len(), 32);
    }

    #[test]
    fn noisier_universe_has_more_overlap() {
        let (clean, mut rng1) = universe(0.05);
        let (noisy, mut rng2) = universe(1.5);
        // Ratio of within-class spread to prototype distance grows with sigma.
        let spread = |u: &ClassUniverse, rng: &mut StdRng| {
            let a = u.sample(0, rng);
            let b = u.sample(0, rng);
            a.sub(&b).frobenius_norm()
        };
        let s_clean: f32 = (0..20).map(|_| spread(&clean, &mut rng1)).sum();
        let s_noisy: f32 = (0..20).map(|_| spread(&noisy, &mut rng2)).sum();
        assert!(s_noisy > s_clean);
    }
}
