//! Photo blobs and preprocessed-binary sidecars.
//!
//! The paper's photos are ~2.7 MB JPEGs (already compressed, so nearly
//! incompressible) and the NPE stores ~0.59 MB preprocessed binaries per
//! photo, deflate-compressed (§5.4). This module synthesizes both kinds of
//! blob with the right *compressibility*: JPEG-like payloads deflate at
//! ≈1×, preprocessed tensors (smooth spatial data) deflate at several ×.
//!
//! Blob sizes are configurable via a scale factor so unit tests can run on
//! kilobyte-scale photos while experiments use paper-scale sizes.

use bytes::Bytes;
use rand::Rng;

/// Unique photo identifier within a storage deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhotoId(pub u64);

impl std::fmt::Display for PhotoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "photo-{:08}", self.0)
    }
}

/// A stored photo: the raw blob plus upload metadata.
#[derive(Debug, Clone)]
pub struct Photo {
    /// Identifier.
    pub id: PhotoId,
    /// Ground-truth class in the synthetic universe (used to score labels).
    pub class: usize,
    /// Upload day (scenario time).
    pub day: usize,
    /// The raw "JPEG" payload.
    pub blob: Bytes,
}

impl Photo {
    /// Size of the raw blob in bytes.
    pub fn size(&self) -> usize {
        self.blob.len()
    }
}

/// Generates photo blobs with a configurable size distribution.
#[derive(Debug, Clone)]
pub struct PhotoFactory {
    mean_bytes: usize,
    next_id: u64,
}

impl PhotoFactory {
    /// A factory producing blobs around `mean_bytes` (±25 % uniform).
    ///
    /// Use `mean_bytes = 2_700_000` for paper-scale photos, small values
    /// for tests.
    ///
    /// # Panics
    ///
    /// Panics if `mean_bytes < 16` (blobs carry a 16-byte header).
    pub fn new(mean_bytes: usize) -> Self {
        assert!(mean_bytes >= 16, "photos must be at least 16 bytes");
        PhotoFactory {
            mean_bytes,
            next_id: 0,
        }
    }

    /// Synthesizes one photo of class `class` uploaded on `day`.
    ///
    /// The payload mimics JPEG entropy-coded data: pseudo-random bytes
    /// that DEFLATE cannot compress (ratio ≈ 1.0), behind a small
    /// structured header.
    pub fn make<R: Rng + ?Sized>(&mut self, class: usize, day: usize, rng: &mut R) -> Photo {
        let id = PhotoId(self.next_id);
        self.next_id += 1;
        let jitter = self.mean_bytes / 4;
        let size = self.mean_bytes - jitter + rng.gen_range(0..=2 * jitter);
        let mut blob = Vec::with_capacity(size);
        // JPEG-ish magic + class/day metadata.
        blob.extend_from_slice(&[0xFF, 0xD8, 0xFF, 0xE0]);
        blob.extend_from_slice(&(class as u32).to_le_bytes());
        blob.extend_from_slice(&(day as u32).to_le_bytes());
        blob.extend_from_slice(&(size as u32).to_le_bytes());
        while blob.len() < size {
            blob.push(rng.gen());
        }
        Photo {
            id,
            class,
            day,
            blob: Bytes::from(blob),
        }
    }

    /// Number of photos created so far.
    pub fn count(&self) -> u64 {
        self.next_id
    }
}

/// Builds the preprocessed binary for a photo: a quantized tensor with the
/// smooth spatial structure of a decoded, resized, normalized image.
///
/// Smoothness is what makes real preprocessed images deflate well; the
/// generator interpolates a coarse random grid so the DEFLATE codec finds
/// long, repetitive byte runs.
///
/// # Panics
///
/// Panics if `bytes` is zero.
pub fn preprocessed_binary<R: Rng + ?Sized>(bytes: usize, rng: &mut R) -> Vec<u8> {
    assert!(bytes > 0, "preprocessed binary cannot be empty");
    let mut out = Vec::with_capacity(bytes);
    // Quantized natural-image planes are mostly flat regions (sky, walls,
    // bokeh) with occasional gradients; mimic that segment structure.
    let mut level: i32 = rng.gen_range(0..=255);
    while out.len() < bytes {
        let seg = rng.gen_range(32..=256usize).min(bytes - out.len());
        if rng.gen_bool(0.6) {
            // Flat region.
            out.extend(std::iter::repeat_n(level as u8, seg));
        } else {
            // Linear gradient toward a new level.
            let target: i32 = (level + rng.gen_range(-48..=48)).clamp(0, 255);
            for k in 0..seg {
                let v = level + (target - level) * k as i32 / seg as i32;
                out.push(v as u8);
            }
            level = target;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn photos_have_unique_increasing_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = PhotoFactory::new(1024);
        let a = f.make(0, 0, &mut rng);
        let b = f.make(1, 0, &mut rng);
        assert!(a.id < b.id);
        assert_eq!(f.count(), 2);
    }

    #[test]
    fn photo_sizes_cluster_around_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = PhotoFactory::new(10_000);
        let sizes: Vec<usize> = (0..50).map(|i| f.make(i, 0, &mut rng).size()).collect();
        let mean = sizes.iter().sum::<usize>() / sizes.len();
        assert!((7_000..13_000).contains(&mean), "mean {mean}");
        assert!(sizes.iter().all(|&s| (7_400..=12_600).contains(&s)));
    }

    #[test]
    fn jpeg_like_blobs_are_incompressible() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = PhotoFactory::new(50_000);
        let p = f.make(0, 0, &mut rng);
        let r = deflate::ratio(&p.blob);
        assert!(r < 1.1, "JPEG-like blob compressed {r}x");
    }

    #[test]
    fn preprocessed_binaries_compress_severalfold() {
        let mut rng = StdRng::seed_from_u64(4);
        let bin = preprocessed_binary(60_000, &mut rng);
        assert_eq!(bin.len(), 60_000);
        let r = deflate::ratio(&bin);
        assert!(r > 2.0, "preprocessed binary only compressed {r}x");
    }

    #[test]
    fn preprocessed_roundtrips_through_deflate() {
        let mut rng = StdRng::seed_from_u64(5);
        let bin = preprocessed_binary(10_000, &mut rng);
        let c = deflate::compress(&bin);
        assert_eq!(deflate::decompress(&c).unwrap(), bin);
    }

    #[test]
    fn display_id() {
        assert_eq!(PhotoId(7).to_string(), "photo-00000007");
    }
}
