//! Synthetic photo-storage datasets and codecs for the NDPipe reproduction.
//!
//! The paper evaluates on ImageNet-1K/-21K and CIFAR-100 with real JPEG
//! photos. Neither the datasets nor the images are available here, so this
//! crate provides the closest synthetic equivalents that exercise the same
//! code paths (see `DESIGN.md §Substitution policy`):
//!
//! - [`synth`] — drifting class-prototype feature generator: classes are
//!   Gaussian prototypes, data distributions shift daily, and new
//!   categories appear over time, reproducing the *outdated model* and
//!   *outdated label* dynamics of §3,
//! - [`dataset`] — labeled datasets, splits, and the day-by-day
//!   [`dataset::DriftScenario`] (growth 1.78 %/day, 5.3 % new categories),
//! - [`photo`] — photo blobs with realistic size distributions plus
//!   preprocessed-binary sidecars,
//! - [`deflate`] — a from-scratch RFC 1951 DEFLATE codec (LZ77 + fixed
//!   Huffman + stored blocks) used by the NPE compression path and
//!   Check-N-Run delta distribution,
//! - [`spec`] — dataset presets shaped like CIFAR-100, ImageNet-1K and
//!   ImageNet-21K (class counts scaled to laptop scale).

pub mod dataset;
pub mod deflate;
pub mod photo;
pub mod spec;
pub mod synth;

pub use dataset::{DriftScenario, LabeledDataset};
pub use photo::{Photo, PhotoId};
pub use spec::DatasetSpec;
pub use synth::ClassUniverse;
