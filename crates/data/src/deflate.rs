//! A from-scratch RFC 1951 DEFLATE codec.
//!
//! NDPipe's near-data processing engine stores preprocessed image binaries
//! compressed "using a deflate algorithm" (§5.4), and the Check-N-Run
//! model-distribution path ships compressed weight deltas. This module
//! implements the subset of DEFLATE those paths need, from scratch:
//!
//! - **compression**: greedy LZ77 with hash-chain match finding (32 KiB
//!   window, lazy one-step evaluation) emitted with the *fixed* Huffman
//!   code of RFC 1951 §3.2.6, falling back to *stored* blocks whenever
//!   that would be smaller,
//! - **decompression**: stored and fixed-Huffman blocks (everything the
//!   compressor can emit).
//!
//! The format on the wire is valid DEFLATE; an external `inflate` can
//! decode it. Dynamic-Huffman decoding is intentionally out of scope —
//! the system only ever inflates its own output.
//!
//! # Example
//!
//! ```
//! use ndpipe_data::deflate::{compress, decompress};
//!
//! let text = b"photo storage photo storage photo storage".to_vec();
//! let packed = compress(&text);
//! assert!(packed.len() < text.len());
//! assert_eq!(decompress(&packed).unwrap(), text);
//! ```

/// Sliding-window size (RFC 1951).
const WINDOW: usize = 32 * 1024;
/// Minimum LZ77 match length worth encoding.
const MIN_MATCH: usize = 3;
/// Maximum LZ77 match length.
const MAX_MATCH: usize = 258;
/// Hash-chain table size (power of two).
const HASH_SIZE: usize = 1 << 15;
/// Cap on chain walks per position; bounds worst-case compression time.
const MAX_CHAIN: usize = 64;

/// Errors produced while decoding a DEFLATE stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeflateError {
    /// Input ended in the middle of a block.
    UnexpectedEof,
    /// A stored block's length check failed (`LEN != !NLEN`).
    StoredLengthMismatch,
    /// A block used the reserved BTYPE=11 encoding.
    ReservedBlockType,
    /// The stream used dynamic Huffman codes, which this decoder does not
    /// implement (the paired compressor never emits them).
    DynamicHuffmanUnsupported,
    /// A back-reference pointed before the start of the output.
    BadDistance,
    /// An invalid symbol was decoded.
    BadSymbol,
    /// A chunked frame's directory or payload was inconsistent.
    BadFrame,
    /// A decompression pool worker panicked; the output is unusable.
    WorkerPanicked,
}

impl std::fmt::Display for DeflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeflateError::UnexpectedEof => write!(f, "unexpected end of deflate stream"),
            DeflateError::StoredLengthMismatch => write!(f, "stored block length check failed"),
            DeflateError::ReservedBlockType => write!(f, "reserved block type 11"),
            DeflateError::DynamicHuffmanUnsupported => {
                write!(f, "dynamic huffman blocks are not supported")
            }
            DeflateError::BadDistance => write!(f, "back-reference distance out of range"),
            DeflateError::BadSymbol => write!(f, "invalid symbol in deflate stream"),
            DeflateError::BadFrame => write!(f, "chunked frame directory is corrupt"),
            DeflateError::WorkerPanicked => write!(f, "decompression worker panicked"),
        }
    }
}

impl std::error::Error for DeflateError {}

// ---------------------------------------------------------------------------
// Bit I/O (DEFLATE packs bits LSB-first; Huffman codes go MSB-first).
// ---------------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    bit_buf: u32,
    bit_count: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Writes `n` bits of `value`, LSB first (for extra bits / headers).
    fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 24);
        self.bit_buf |= value << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes an `n`-bit Huffman code MSB-first, per RFC 1951 §3.1.1.
    fn write_huffman(&mut self, code: u32, n: u32) {
        let mut rev = 0u32;
        for i in 0..n {
            rev |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.write_bits(rev, n);
    }

    /// Pads to a byte boundary with zero bits.
    fn align_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    bit_buf: u32,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    fn new(input: &'a [u8]) -> Self {
        BitReader {
            input,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn read_bits(&mut self, n: u32) -> Result<u32, DeflateError> {
        while self.bit_count < n {
            let byte = *self
                .input
                .get(self.pos)
                .ok_or(DeflateError::UnexpectedEof)?;
            self.pos += 1;
            self.bit_buf |= (byte as u32) << self.bit_count;
            self.bit_count += 8;
        }
        let value = self.bit_buf & ((1u32 << n) - 1);
        self.bit_buf >>= n;
        self.bit_count -= n;
        Ok(value)
    }

    /// Reads one bit and appends it to `code` as the new LSB (codes are
    /// MSB-first on the wire).
    fn read_code_bit(&mut self, code: u32) -> Result<u32, DeflateError> {
        Ok((code << 1) | self.read_bits(1)?)
    }

    fn align_byte(&mut self) {
        self.bit_buf = 0;
        self.bit_count = 0;
    }

    fn read_u16_le(&mut self) -> Result<u16, DeflateError> {
        let raw = self.read_raw(2)?;
        match *raw {
            [lo, hi] => Ok(u16::from_le_bytes([lo, hi])),
            _ => Err(DeflateError::UnexpectedEof),
        }
    }

    fn read_raw(&mut self, n: usize) -> Result<&'a [u8], DeflateError> {
        let end = self.pos.checked_add(n).ok_or(DeflateError::UnexpectedEof)?;
        let s = self
            .input
            .get(self.pos..end)
            .ok_or(DeflateError::UnexpectedEof)?;
        self.pos = end;
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Length / distance code tables (RFC 1951 §3.2.5).
// ---------------------------------------------------------------------------

/// (base length, extra bits) for length codes 257..=285.
const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn length_to_code(len: usize) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    for (i, &(base, extra)) in LENGTH_TABLE.iter().enumerate().rev() {
        if len as u16 >= base {
            return (257 + i, len as u16 - base, extra);
        }
    }
    unreachable!("length {len} below minimum")
}

fn dist_to_code(dist: usize) -> (usize, u16, u8) {
    debug_assert!((1..=WINDOW).contains(&dist));
    for (i, &(base, extra)) in DIST_TABLE.iter().enumerate().rev() {
        if dist >= base as usize {
            return (i, (dist - base as usize) as u16, extra);
        }
    }
    unreachable!("distance {dist} out of range")
}

/// Fixed-Huffman code for a literal/length symbol (RFC 1951 §3.2.6).
fn fixed_litlen_code(sym: usize) -> (u32, u32) {
    match sym {
        0..=143 => (0b00110000 + sym as u32, 8),
        144..=255 => (0b110010000 + (sym - 144) as u32, 9),
        256..=279 => ((sym - 256) as u32, 7),
        280..=287 => (0b11000000 + (sym - 280) as u32, 8),
        _ => unreachable!("bad litlen symbol {sym}"),
    }
}

// ---------------------------------------------------------------------------
// LZ77 token stream.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add(data[i + 2] as u32);
    (h as usize) & (HASH_SIZE - 1)
}

fn match_length(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Chain-end sentinel in the positional scratch tables.
const NIL: u32 = u32::MAX;

/// A DEFLATE compressor with reusable match-finder scratch.
///
/// `compress` as a free function must rebuild the 32 Ki-entry hash-chain
/// head table (and a `prev` link per input byte) on every call; on the
/// NPE hot path — thousands of small preprocessed sidecars per relabel
/// pass — that allocation and zeroing dominates. A `Compressor` keeps the
/// tables across calls and invalidates stale heads with an epoch tag
/// instead of clearing, so per-call setup is O(1).
///
/// The emitted bytes are identical to the free [`compress`] function's.
pub struct Compressor {
    /// Most recent position for each hash bucket (valid iff the matching
    /// `head_epoch` entry equals `epoch`).
    head: Vec<u32>,
    head_epoch: Vec<u32>,
    /// Previous position in the chain, indexed by position. Never cleared:
    /// entries are always written before they can be reached via `head`.
    prev: Vec<u32>,
    epoch: u32,
    tokens: Vec<Token>,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// Creates a compressor with empty scratch (grown on first use).
    pub fn new() -> Self {
        Compressor {
            head: vec![NIL; HASH_SIZE],
            head_epoch: vec![0; HASH_SIZE],
            prev: Vec::new(),
            epoch: 0,
            tokens: Vec::new(),
        }
    }

    fn begin_input(&mut self, len: usize) {
        assert!(len < NIL as usize, "input too large for u32 positions");
        if self.epoch == u32::MAX {
            // Epoch wrap: one real clear every 2^32 - 1 calls.
            self.head_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.prev.len() < len {
            self.prev.resize(len, NIL);
        }
    }

    #[inline]
    fn chain_head(&self, h: usize) -> u32 {
        if self.head_epoch[h] == self.epoch {
            self.head[h]
        } else {
            NIL
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        let h = hash3(data, pos);
        self.prev[pos] = self.chain_head(h);
        self.head[h] = pos as u32;
        self.head_epoch[h] = self.epoch;
    }

    /// Greedy LZ77 tokenizer with hash chains; fills `self.tokens`.
    fn tokenize(&mut self, data: &[u8]) {
        self.tokens.clear();
        if data.len() < MIN_MATCH {
            self.tokens.extend(data.iter().map(|&b| Token::Literal(b)));
            return;
        }
        self.begin_input(data.len());
        let mut i = 0;
        while i < data.len() {
            if i + MIN_MATCH > data.len() {
                self.tokens.push(Token::Literal(data[i]));
                i += 1;
                continue;
            }
            let h = hash3(data, i);
            let mut candidate = self.chain_head(h);
            let max_len = (data.len() - i).min(MAX_MATCH);
            let mut best_len = 0;
            let mut best_dist = 0;
            let mut chain = 0;
            while candidate != NIL && chain < MAX_CHAIN {
                let dist = i - candidate as usize;
                if dist > WINDOW {
                    break;
                }
                let l = match_length(data, candidate as usize, i, max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == max_len {
                        break;
                    }
                }
                candidate = self.prev[candidate as usize];
                chain += 1;
            }
            // Insert current position into the chain.
            self.insert(data, i);
            if best_len >= MIN_MATCH {
                self.tokens.push(Token::Match {
                    len: best_len,
                    dist: best_dist,
                });
                // Insert the skipped positions so later matches can find
                // them.
                for k in i + 1..(i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                    self.insert(data, k);
                }
                i += best_len;
            } else {
                self.tokens.push(Token::Literal(data[i]));
                i += 1;
            }
        }
    }

    /// Compresses `data` into a raw DEFLATE stream, reusing this
    /// compressor's scratch tables. Output is byte-identical to the free
    /// [`compress`] function.
    pub fn compress(&mut self, data: &[u8]) -> Vec<u8> {
        // Try fixed-Huffman first.
        self.tokenize(data);
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b01, 2); // BTYPE = fixed Huffman
        for t in &self.tokens {
            match *t {
                Token::Literal(b) => {
                    let (code, n) = fixed_litlen_code(b as usize);
                    w.write_huffman(code, n);
                }
                Token::Match { len, dist } => {
                    let (sym, lextra, lbits) = length_to_code(len);
                    let (code, n) = fixed_litlen_code(sym);
                    w.write_huffman(code, n);
                    w.write_bits(lextra as u32, lbits as u32);
                    let (dsym, dextra, dbits) = dist_to_code(dist);
                    w.write_huffman(dsym as u32, 5);
                    w.write_bits(dextra as u32, dbits as u32);
                }
            }
        }
        let (eob, eobn) = fixed_litlen_code(256);
        w.write_huffman(eob, eobn);
        let fixed = w.into_bytes();

        if fixed.len() <= stored_size(data.len()) {
            fixed
        } else {
            compress_stored(data)
        }
    }
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

thread_local! {
    static SHARED_COMPRESSOR: std::cell::RefCell<Compressor> =
        std::cell::RefCell::new(Compressor::new());
}

/// Compresses `data` into a raw DEFLATE stream (no zlib/gzip wrapper).
///
/// Emits a single fixed-Huffman block, or stored blocks when the input is
/// incompressible (so the output never exceeds the input by more than the
/// stored-block framing overhead: 5 bytes per 64 KiB plus one byte).
///
/// Uses a thread-local [`Compressor`] so repeated calls skip the
/// hash-table setup cost.
pub fn compress(data: &[u8]) -> Vec<u8> {
    SHARED_COMPRESSOR.with(|c| c.borrow_mut().compress(data))
}

fn stored_size(n: usize) -> usize {
    // Each stored block: 1 byte header (after align) + 4 bytes LEN/NLEN.
    let blocks = n.div_ceil(u16::MAX as usize).max(1);
    n + blocks * 5
}

/// Emits `data` as uncompressed stored blocks (BTYPE=00).
pub fn compress_stored(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[]]
    } else {
        data.chunks(u16::MAX as usize).collect()
    };
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i + 1 == chunks.len();
        w.write_bits(last as u32, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.out.extend_from_slice(&len.to_le_bytes());
        w.out.extend_from_slice(&(!len).to_le_bytes());
        w.out.extend_from_slice(chunk);
    }
    w.into_bytes()
}

/// Decompresses a raw DEFLATE stream produced by [`compress`] (stored and
/// fixed-Huffman blocks).
///
/// # Errors
///
/// Returns a [`DeflateError`] if the stream is truncated, corrupt, or uses
/// dynamic Huffman blocks.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DeflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => {
                r.align_byte();
                let len = r.read_u16_le()? as usize;
                let nlen = r.read_u16_le()?;
                if !(len as u16) != nlen {
                    return Err(DeflateError::StoredLengthMismatch);
                }
                out.extend_from_slice(r.read_raw(len)?);
            }
            0b01 => decode_fixed_block(&mut r, &mut out)?,
            0b10 => return Err(DeflateError::DynamicHuffmanUnsupported),
            _ => return Err(DeflateError::ReservedBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn decode_fixed_litlen(r: &mut BitReader<'_>) -> Result<usize, DeflateError> {
    // Canonical fixed code: 7-bit codes 0..=0x17 are 256..=279; extend to
    // 8 bits for 0x30..=0xBF (0..=143) and 0xC0..=0xC7 (280..=287); extend
    // to 9 bits for 0x190..=0x1FF (144..=255).
    let mut code = 0u32;
    for _ in 0..7 {
        code = r.read_code_bit(code)?;
    }
    if code <= 0x17 {
        return Ok(256 + code as usize);
    }
    code = r.read_code_bit(code)?;
    if (0x30..=0xBF).contains(&code) {
        return Ok(code as usize - 0x30);
    }
    if (0xC0..=0xC7).contains(&code) {
        return Ok(280 + code as usize - 0xC0);
    }
    code = r.read_code_bit(code)?;
    if (0x190..=0x1FF).contains(&code) {
        return Ok(144 + code as usize - 0x190);
    }
    Err(DeflateError::BadSymbol)
}

fn decode_fixed_block(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), DeflateError> {
    loop {
        let sym = decode_fixed_litlen(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let &(base, extra) = LENGTH_TABLE.get(sym - 257).ok_or(DeflateError::BadSymbol)?;
                let len = base as usize + r.read_bits(extra as u32)? as usize;
                // Distance: 5-bit fixed code, MSB-first.
                let mut dcode = 0u32;
                for _ in 0..5 {
                    dcode = r.read_code_bit(dcode)?;
                }
                let &(dbase, dextra) = DIST_TABLE
                    .get(dcode as usize)
                    .ok_or(DeflateError::BadSymbol)?;
                let dist = dbase as usize + r.read_bits(dextra as u32)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DeflateError::BadDistance);
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = *out.get(start + k).ok_or(DeflateError::BadDistance)?;
                    out.push(b);
                }
            }
            _ => return Err(DeflateError::BadSymbol),
        }
    }
}

/// Compression ratio (`original / compressed`) achieved by [`compress`].
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn ratio(data: &[u8]) -> f64 {
    assert!(!data.is_empty(), "ratio of empty input is undefined");
    data.len() as f64 / compress(data).len() as f64
}

// ---------------------------------------------------------------------------
// Framed chunked codec (parallel DEFLATE).
// ---------------------------------------------------------------------------

/// Magic prefix of a chunked frame.
///
/// `0x9F` has low bits `0b111` = BFINAL=1 + BTYPE=11 (reserved), a byte no
/// valid plain DEFLATE stream from this codec can start with (our
/// compressor opens with BTYPE 00 or 01), so frames are unambiguously
/// distinguishable from plain streams and [`decompress_framed`] can fall
/// back transparently.
pub const FRAME_MAGIC: [u8; 4] = [0x9F, b'N', b'D', b'F'];

/// Default chunk granularity for [`compress_chunked`]: one DEFLATE window.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Worker count for parallel codec paths: `NDPIPE_THREADS` if set (min 1),
/// else the machine's available parallelism.
pub fn configured_threads() -> usize {
    match std::env::var("NDPIPE_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Compresses `data` as independent DEFLATE members of `chunk_size` raw
/// bytes each, compressed in parallel across [`configured_threads`]
/// workers and wrapped in a self-describing frame.
///
/// Inputs of at most one chunk are emitted as a plain [`compress`] stream
/// (byte-compatible with the unframed codec). Because chunks are
/// compressed independently and concatenated in index order, the output
/// bytes are identical regardless of worker count.
///
/// # Panics
///
/// Panics if `chunk_size` is zero or `data` needs more than `u32::MAX`
/// chunks.
pub fn compress_chunked(data: &[u8], chunk_size: usize) -> Vec<u8> {
    compress_chunked_with(data, chunk_size, configured_threads())
}

/// [`compress_chunked`] with an explicit worker count.
pub fn compress_chunked_with(data: &[u8], chunk_size: usize, threads: usize) -> Vec<u8> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    if data.len() <= chunk_size {
        return compress(data);
    }
    let chunks: Vec<&[u8]> = data.chunks(chunk_size).collect();
    assert!(
        chunks.len() <= u32::MAX as usize,
        "too many chunks for frame directory"
    );
    let mut packed: Vec<Vec<u8>> = vec![Vec::new(); chunks.len()];
    let workers = threads.clamp(1, chunks.len());
    if workers == 1 {
        let mut c = Compressor::new();
        for (slot, chunk) in packed.iter_mut().zip(&chunks) {
            *slot = c.compress(chunk);
        }
    } else {
        // Bands of chunks run on the shared worker pool; each band
        // reuses one Compressor and writes its own output slots, so the
        // emitted bytes are identical regardless of worker count.
        let per = chunks.len().div_ceil(workers);
        let bands: Vec<std::sync::Mutex<(usize, &mut [Vec<u8>])>> = packed
            .chunks_mut(per)
            .enumerate()
            .map(|(i, band)| std::sync::Mutex::new((i * per, band)))
            .collect();
        tensor::pool::run(workers, bands.len(), &|t| {
            if let Some(slot) = bands.get(t) {
                let mut guard = slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let (lo, band) = &mut *guard;
                let band_chunks = &chunks[*lo..*lo + band.len()];
                let mut c = Compressor::new();
                for (out, chunk) in band.iter_mut().zip(band_chunks) {
                    *out = c.compress(chunk);
                }
            }
        })
        .unwrap_or_else(|e| panic!("chunked compression worker panicked: {e}"));
    }

    let payload: usize = packed.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(8 + chunks.len() * 8 + payload);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for (comp, raw) in packed.iter().zip(&chunks) {
        out.extend_from_slice(&(comp.len() as u32).to_le_bytes());
        out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    }
    for comp in &packed {
        out.extend_from_slice(comp);
    }
    out
}

/// Decompresses either a chunked frame (chunks inflated in parallel) or,
/// when the magic prefix is absent, a plain DEFLATE stream.
///
/// # Errors
///
/// Returns [`DeflateError::BadFrame`] if the frame directory is
/// inconsistent with the payload, or any [`DeflateError`] from inflating a
/// member stream.
pub fn decompress_framed(data: &[u8]) -> Result<Vec<u8>, DeflateError> {
    decompress_framed_with(data, configured_threads())
}

/// Reads a little-endian u32 from the frame directory without panicking
/// on truncated input.
fn frame_u32(data: &[u8], at: usize) -> Result<u32, DeflateError> {
    let end = at.checked_add(4).ok_or(DeflateError::BadFrame)?;
    let b: [u8; 4] = data
        .get(at..end)
        .ok_or(DeflateError::BadFrame)?
        .try_into()
        .map_err(|_| DeflateError::BadFrame)?;
    Ok(u32::from_le_bytes(b))
}

/// [`decompress_framed`] with an explicit worker count.
pub fn decompress_framed_with(data: &[u8], threads: usize) -> Result<Vec<u8>, DeflateError> {
    if data.len() < 8 || !data.starts_with(&FRAME_MAGIC) {
        return decompress(data);
    }
    let count = frame_u32(data, 4)? as usize;
    let dir_end = 8usize
        .checked_add(count.checked_mul(8).ok_or(DeflateError::BadFrame)?)
        .ok_or(DeflateError::BadFrame)?;
    if data.len() < dir_end {
        return Err(DeflateError::BadFrame);
    }
    // Parse the directory into (payload offset, comp_len, raw_len).
    let mut entries = Vec::with_capacity(count);
    let mut offset = dir_end;
    for i in 0..count {
        let e = 8 + i * 8;
        let comp_len = frame_u32(data, e)? as usize;
        let raw_len = frame_u32(data, e + 4)? as usize;
        entries.push((offset, comp_len, raw_len));
        offset = offset.checked_add(comp_len).ok_or(DeflateError::BadFrame)?;
    }
    if offset != data.len() {
        return Err(DeflateError::BadFrame);
    }

    let inflate_one = |&(off, comp_len, raw_len): &(usize, usize, usize)| {
        let end = off.checked_add(comp_len).ok_or(DeflateError::BadFrame)?;
        let member = data.get(off..end).ok_or(DeflateError::BadFrame)?;
        let chunk = decompress(member)?;
        if chunk.len() != raw_len {
            return Err(DeflateError::BadFrame);
        }
        Ok(chunk)
    };

    let workers = threads.clamp(1, count.max(1));
    let mut results: Vec<Result<Vec<u8>, DeflateError>> = Vec::new();
    if workers <= 1 || count < 2 {
        results.extend(entries.iter().map(inflate_one));
    } else {
        results.resize_with(count, || Ok(Vec::new()));
        let per = count.div_ceil(workers);
        let run_result = {
            let bands: Vec<
                std::sync::Mutex<(
                    &mut [Result<Vec<u8>, DeflateError>],
                    &[(usize, usize, usize)],
                )>,
            > = results
                .chunks_mut(per)
                .zip(entries.chunks(per))
                .map(std::sync::Mutex::new)
                .collect();
            tensor::pool::run(workers, bands.len(), &|t| {
                if let Some(slot) = bands.get(t) {
                    let mut guard = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let (band, band_entries) = &mut *guard;
                    for (out, entry) in band.iter_mut().zip(band_entries.iter()) {
                        *out = inflate_one(entry);
                    }
                }
            })
        };
        // A corrupt member surfaces as Err in its result slot; an actual
        // worker panic (engine bug) is contained by the pool to a typed
        // error instead of unwinding into the NPE pipeline.
        if run_result.is_err() {
            return Err(DeflateError::WorkerPanicked);
        }
    }

    let total: usize = entries.iter().map(|&(_, _, r)| r).sum();
    let mut out = Vec::with_capacity(total);
    for r in results {
        out.extend_from_slice(&r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
    }

    #[test]
    fn tiny_inputs() {
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"near-data processing ".repeat(500);
        roundtrip(&data);
        assert!(ratio(&data) > 10.0, "ratio {}", ratio(&data));
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
        // Perfectly periodic: should compress.
        assert!(ratio(&data) > 3.0);
    }

    #[test]
    fn random_data_falls_back_to_stored() {
        // Pseudo-random bytes are incompressible; output must stay within
        // the stored-block overhead bound.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 5 * 3 + 1, "len {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_runs_use_max_matches() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 1000, "run-length output {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaa..." forces dist=1, len>1 overlapping copies.
        let data = vec![b'a'; 300];
        roundtrip(&data);
    }

    #[test]
    fn stored_block_roundtrip() {
        let data: Vec<u8> = (0..70_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let c = compress_stored(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        let c = compress(b"hello world hello world");
        let result = decompress(&c[..c.len() - 1]);
        // Either EOF or a bad symbol, but never a wrong answer or panic.
        assert!(result.is_err() || result.unwrap() != b"hello world hello world");
    }

    #[test]
    fn corrupt_stored_length_detected() {
        let mut c = compress_stored(b"abcdef");
        c[2] ^= 0xFF; // flip NLEN
        assert_eq!(decompress(&c), Err(DeflateError::StoredLengthMismatch));
    }

    #[test]
    fn dynamic_block_rejected() {
        // BFINAL=1, BTYPE=10 -> first byte 0b101 = 5.
        assert_eq!(
            decompress(&[0b101]),
            Err(DeflateError::DynamicHuffmanUnsupported)
        );
    }

    #[test]
    fn length_code_table_covers_all_lengths() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (sym, extra, bits) = length_to_code(len);
            assert!((257..=285).contains(&sym));
            let (base, eb) = LENGTH_TABLE[sym - 257];
            assert_eq!(eb, bits);
            assert_eq!(base as usize + extra as usize, len);
        }
    }

    #[test]
    fn dist_code_table_covers_window() {
        for dist in [1usize, 2, 3, 4, 5, 100, 1024, 8192, 32768] {
            let (sym, extra, _) = dist_to_code(dist);
            let (base, _) = DIST_TABLE[sym];
            assert_eq!(base as usize + extra as usize, dist);
        }
    }

    #[test]
    fn error_display() {
        assert!(DeflateError::BadDistance.to_string().contains("distance"));
    }

    #[test]
    fn reused_compressor_matches_free_function() {
        let mut c = Compressor::new();
        let inputs: Vec<Vec<u8>> = vec![
            b"near-data processing ".repeat(200),
            vec![b'a'; 300],
            (0..=255u8).cycle().take(4096).collect(),
            Vec::new(),
            b"xyz".to_vec(),
        ];
        for data in &inputs {
            // Same output on every reuse, identical to a fresh compressor.
            assert_eq!(c.compress(data), compress(data));
            assert_eq!(c.compress(data), Compressor::new().compress(data));
        }
    }

    #[test]
    fn chunked_small_input_is_plain_deflate() {
        let data = b"fits in one chunk".to_vec();
        let framed = compress_chunked_with(&data, DEFAULT_CHUNK_SIZE, 4);
        assert_eq!(
            framed,
            compress(&data),
            "single-chunk output must be unframed"
        );
        assert_eq!(decompress_framed(&framed).unwrap(), data);
    }

    #[test]
    fn chunked_roundtrip_multi_chunk() {
        let data: Vec<u8> = b"NDPipe offloads feature extraction to PipeStores. ".repeat(3000);
        for threads in [1, 2, 4] {
            let framed = compress_chunked_with(&data, 8 * 1024, threads);
            assert_eq!(framed[..4], FRAME_MAGIC);
            assert_eq!(
                decompress_framed_with(&framed, threads).unwrap(),
                data,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunked_output_is_thread_count_invariant() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 257) as u8).collect();
        let one = compress_chunked_with(&data, DEFAULT_CHUNK_SIZE, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                compress_chunked_with(&data, DEFAULT_CHUNK_SIZE, threads),
                one,
                "threads={threads}"
            );
        }
        assert_eq!(decompress_framed_with(&one, 4).unwrap(), data);
    }

    #[test]
    fn chunked_exact_boundary() {
        // Exactly 2 chunks, the second of full size.
        let data = vec![7u8; 2 * 1024];
        let framed = compress_chunked_with(&data, 1024, 2);
        assert_eq!(framed[..4], FRAME_MAGIC);
        assert_eq!(decompress_framed(&framed).unwrap(), data);
        // One byte over a chunk: 2 chunks, second is 1 byte.
        let data = vec![7u8; 1025];
        let framed = compress_chunked_with(&data, 1024, 2);
        assert_eq!(decompress_framed(&framed).unwrap(), data);
    }

    #[test]
    fn corrupt_frame_directory_detected() {
        let data = vec![42u8; 4096];
        let mut framed = compress_chunked_with(&data, 1024, 2);
        assert_eq!(framed[..4], FRAME_MAGIC);
        // Truncated payload.
        let cut = framed.len() - 3;
        assert!(decompress_framed(&framed[..cut]).is_err());
        // Inflate a chunk's claimed raw length.
        framed[8 + 4] ^= 0x01; // first directory entry's raw_len
        assert_eq!(decompress_framed(&framed), Err(DeflateError::BadFrame));
    }

    #[test]
    fn plain_streams_pass_through_framed_decoder() {
        let data: Vec<u8> = b"legacy delta blob ".repeat(100);
        let plain = compress(&data);
        assert_eq!(decompress_framed(&plain).unwrap(), data);
        let stored = compress_stored(&data);
        assert_eq!(decompress_framed(&stored).unwrap(), data);
    }
}
