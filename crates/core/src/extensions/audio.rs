//! Audio content: spectrogram transformation (§7.1).
//!
//! "NDPipe can be adapted for audio formats through audio spectrogram
//! transformation (AST), converting audio frequency data into visual
//! representations" — then the image pipeline takes over.

use tensor::Tensor;

/// Short-time Fourier transform parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StftSpec {
    /// Window length in samples (also the DFT size).
    pub window: usize,
    /// Hop between windows in samples.
    pub hop: usize,
}

impl StftSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `hop` is zero.
    pub fn new(window: usize, hop: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(hop > 0, "hop must be positive");
        StftSpec { window, hop }
    }

    /// Number of frames produced for `n` samples (zero if too short).
    pub fn frames(&self, n: usize) -> usize {
        if n < self.window {
            0
        } else {
            (n - self.window) / self.hop + 1
        }
    }

    /// Number of frequency bins (one-sided spectrum).
    pub fn bins(&self) -> usize {
        self.window / 2 + 1
    }
}

/// Computes a log-magnitude spectrogram of `samples`: Hann-windowed
/// frames, naive DFT, one-sided power, `ln(1 + |X|²)`.
///
/// Returns a `[frames, bins]` tensor — the "image" the CNN pipeline
/// consumes.
///
/// # Panics
///
/// Panics if `samples` is shorter than one window.
pub fn spectrogram(samples: &[f32], spec: StftSpec) -> Tensor {
    let frames = spec.frames(samples.len());
    assert!(frames > 0, "signal shorter than one window");
    let bins = spec.bins();
    let n = spec.window;
    // Precompute the Hann window.
    let hann: Vec<f32> = (0..n)
        .map(|i| {
            let x = std::f32::consts::PI * i as f32 / (n as f32 - 1.0).max(1.0);
            (x.sin()) * (x.sin())
        })
        .collect();
    let mut out = vec![0.0f32; frames * bins];
    for f in 0..frames {
        let start = f * spec.hop;
        for k in 0..bins {
            let mut re = 0.0f32;
            let mut im = 0.0f32;
            for (i, &h) in hann.iter().enumerate() {
                let x = samples[start + i] * h;
                let phase = -2.0 * std::f32::consts::PI * (k * i) as f32 / n as f32;
                re += x * phase.cos();
                im += x * phase.sin();
            }
            out[f * bins + k] = (1.0 + re * re + im * im).ln();
        }
    }
    Tensor::from_vec(out, &[frames, bins])
}

/// Synthesizes a test tone: `amplitude · sin(2π · freq · t / rate)`.
pub fn sine_wave(freq: f32, rate: f32, amplitude: f32, samples: usize) -> Vec<f32> {
    (0..samples)
        .map(|i| amplitude * (2.0 * std::f32::consts::PI * freq * i as f32 / rate).sin())
        .collect()
}

/// Flattens a spectrogram into the fixed-width vector the photo pipeline
/// expects, mean-pooling time so clips of any length map to `bins` dims.
pub fn spectrogram_embedding(spec_image: &Tensor) -> Tensor {
    let frames = spec_image.dims()[0] as f32;
    spec_image.sum_rows().scale(1.0 / frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_arithmetic() {
        let s = StftSpec::new(64, 32);
        assert_eq!(s.frames(64), 1);
        assert_eq!(s.frames(128), 3);
        assert_eq!(s.frames(10), 0);
        assert_eq!(s.bins(), 33);
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        // 1 kHz tone at 8 kHz sampling with a 64-point DFT: bin = 8.
        let wave = sine_wave(1000.0, 8000.0, 1.0, 512);
        let spec = spectrogram(&wave, StftSpec::new(64, 32));
        let bins = 33;
        // Check the first frame's argmax (skip DC).
        let frame = &spec.data()[..bins];
        let peak = frame
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(peak, 8, "frame {frame:?}");
    }

    #[test]
    fn louder_signals_have_more_energy() {
        let quiet = sine_wave(500.0, 8000.0, 0.1, 256);
        let loud = sine_wave(500.0, 8000.0, 1.0, 256);
        let s = StftSpec::new(64, 64);
        assert!(spectrogram(&loud, s).sum() > spectrogram(&quiet, s).sum());
    }

    #[test]
    fn silence_is_near_zero() {
        let silence = vec![0.0f32; 256];
        let spec = spectrogram(&silence, StftSpec::new(64, 64));
        assert!(spec.max() < 1e-6);
    }

    #[test]
    fn embedding_is_fixed_width_regardless_of_length() {
        let s = StftSpec::new(64, 32);
        let short = spectrogram(&sine_wave(440.0, 8000.0, 1.0, 128), s);
        let long = spectrogram(&sine_wave(440.0, 8000.0, 1.0, 2048), s);
        let e1 = spectrogram_embedding(&short);
        let e2 = spectrogram_embedding(&long);
        assert_eq!(e1.dims(), e2.dims());
        // Same tone → similar embeddings despite different lengths.
        let cos = tensor::linalg::dot(&e1, &e2) / (e1.frobenius_norm() * e2.frobenius_norm());
        assert!(cos > 0.95, "cosine {cos}");
    }

    #[test]
    fn different_tones_embed_differently() {
        let s = StftSpec::new(64, 32);
        let a = spectrogram_embedding(&spectrogram(&sine_wave(500.0, 8000.0, 1.0, 512), s));
        let b = spectrogram_embedding(&spectrogram(&sine_wave(2000.0, 8000.0, 1.0, 512), s));
        let cos = tensor::linalg::dot(&a, &b) / (a.frobenius_norm() * b.frobenius_norm());
        assert!(cos < 0.9, "cosine {cos}");
    }

    #[test]
    #[should_panic(expected = "shorter than one window")]
    fn short_signals_rejected() {
        let _ = spectrogram(&[0.0; 8], StftSpec::new(64, 32));
    }
}
