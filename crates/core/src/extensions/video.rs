//! Video content: key-frame extraction and clip summarization (§7.1).
//!
//! "One of the solutions ... is frame extraction, which extracts key
//! frames from videos for analysis. These key frames are analyzed using a
//! CNN model to label content, creating a summary vector for further
//! video analysis."

use dnn::cnn::CnnFeatureExtractor;
use tensor::Tensor;

/// A video clip: a sequence of same-shaped `[c, h, w]` frames.
#[derive(Debug, Clone)]
pub struct VideoClip {
    frames: Vec<Tensor>,
}

impl VideoClip {
    /// Wraps frames into a clip.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or shapes differ.
    pub fn new(frames: Vec<Tensor>) -> Self {
        assert!(!frames.is_empty(), "a clip needs at least one frame");
        let dims = frames[0].dims().to_vec();
        assert_eq!(dims.len(), 3, "frames must be [c, h, w]");
        assert!(
            frames.iter().all(|f| f.dims() == dims.as_slice()),
            "all frames must share a shape"
        );
        VideoClip { frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The frames.
    pub fn frames(&self) -> &[Tensor] {
        &self.frames
    }
}

/// Selects key frames: the first frame, plus every frame whose mean
/// absolute difference from the previously *selected* frame exceeds
/// `threshold` (smart frame selection, paper reference 39).
///
/// Returns indices into the clip, always non-empty.
pub fn key_frame_indices(clip: &VideoClip, threshold: f32) -> Vec<usize> {
    let mut selected = vec![0usize];
    let mut last = &clip.frames[0];
    for (i, frame) in clip.frames.iter().enumerate().skip(1) {
        let diff = frame.sub(last).map(f32::abs).mean();
        if diff > threshold {
            selected.push(i);
            last = frame;
        }
    }
    selected
}

/// A clip summary: per-key-frame features and their mean vector.
#[derive(Debug, Clone)]
pub struct ClipSummary {
    /// Indices of the selected key frames.
    pub key_frames: Vec<usize>,
    /// `[k, feature_dim]` features, one row per key frame.
    pub frame_features: Tensor,
    /// `[feature_dim]` mean summary vector for the clip.
    pub summary: Tensor,
}

/// Summarizes a clip near the data: select key frames, run the frozen
/// CNN over them, and average into one summary vector — the only thing
/// that leaves the PipeStore.
///
/// # Panics
///
/// Panics if frame channels mismatch the extractor.
pub fn summarize_clip(
    clip: &VideoClip,
    extractor: &CnnFeatureExtractor,
    threshold: f32,
) -> ClipSummary {
    let key_frames = key_frame_indices(clip, threshold);
    let dims = clip.frames[0].dims();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let mut data = Vec::with_capacity(key_frames.len() * c * h * w);
    for &i in &key_frames {
        data.extend_from_slice(clip.frames[i].data());
    }
    let batch = Tensor::from_vec(data, &[key_frames.len(), c, h, w]);
    let frame_features = extractor.features(&batch);
    let k = key_frames.len() as f32;
    let summary = frame_features.sum_rows().scale(1.0 / k);
    ClipSummary {
        key_frames,
        frame_features,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn static_clip(n: usize) -> VideoClip {
        VideoClip::new(vec![Tensor::full(&[1, 8, 8], 0.5); n])
    }

    #[test]
    fn static_video_keeps_one_key_frame() {
        let clip = static_clip(30);
        assert_eq!(key_frame_indices(&clip, 0.05), vec![0]);
    }

    #[test]
    fn scene_cuts_are_detected() {
        // Three "scenes" of constant brightness.
        let mut frames = Vec::new();
        for scene in 0..3 {
            for _ in 0..10 {
                frames.push(Tensor::full(&[1, 8, 8], scene as f32));
            }
        }
        let clip = VideoClip::new(frames);
        let keys = key_frame_indices(&clip, 0.5);
        assert_eq!(keys, vec![0, 10, 20]);
    }

    #[test]
    fn summary_has_feature_dim_and_is_frame_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let extractor = CnnFeatureExtractor::new(1, &[6, 12], &mut rng);
        let mut frames = vec![Tensor::full(&[1, 8, 8], 0.0); 5];
        frames.push(Tensor::full(&[1, 8, 8], 5.0));
        let clip = VideoClip::new(frames);
        let s = summarize_clip(&clip, &extractor, 0.5);
        assert_eq!(s.key_frames.len(), 2);
        assert_eq!(s.frame_features.dims(), &[2, 12]);
        assert_eq!(s.summary.dims(), &[12]);
        // Summary = mean of the two feature rows.
        let manual = s
            .frame_features
            .row(0)
            .add(&s.frame_features.row(1))
            .scale(0.5);
        for (a, b) in s.summary.data().iter().zip(manual.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn summary_is_tiny_compared_to_the_clip() {
        let mut rng = StdRng::seed_from_u64(2);
        let extractor = CnnFeatureExtractor::new(1, &[8], &mut rng);
        let clip = static_clip(100);
        let s = summarize_clip(&clip, &extractor, 0.1);
        let clip_bytes = clip.len() * 64 * 4;
        let summary_bytes = s.summary.len() * 4;
        assert!(summary_bytes * 100 < clip_bytes);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn mismatched_frames_rejected() {
        let _ = VideoClip::new(vec![Tensor::zeros(&[1, 8, 8]), Tensor::zeros(&[1, 4, 4])]);
    }
}
