//! Document content: embedding extraction near the data (§7.1).
//!
//! "NDPipe uses NLP techniques for enhanced document storage, converting
//! text into analyzable embedding vectors ... These embeddings then serve
//! as inputs for various downstream tasks, such as document classification
//! and sentiment analysis, conducted by Tuner. This approach can reduce
//! data transfer costs by converting large documents into small embedding
//! vectors."
//!
//! The embedding here is a hashed bag-of-n-grams (feature hashing): a
//! fixed-width, training-free representation a storage server can compute
//! cheaply — the document analogue of a frozen feature extractor.

use tensor::Tensor;

/// A hashed bag-of-words/bigram document embedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocEmbedder {
    dim: usize,
}

impl DocEmbedder {
    /// An embedder producing `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        DocEmbedder { dim }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds a document: lowercase word unigrams and bigrams hashed into
    /// `dim` signed buckets, then L2-normalized.
    ///
    /// Empty or punctuation-only text embeds to the zero vector.
    pub fn embed(&self, text: &str) -> Tensor {
        let mut v = vec![0.0f32; self.dim];
        let words: Vec<String> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(|w| w.to_lowercase())
            .collect();
        let mut bump = |token: &str| {
            let h = fnv1a(token.as_bytes());
            let bucket = (h % self.dim as u64) as usize;
            // Second hash bit decides the sign (standard feature hashing,
            // keeps bucket collisions from only accumulating).
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        };
        for w in &words {
            bump(w);
        }
        for pair in words.windows(2) {
            bump(&format!("{} {}", pair[0], pair[1]));
        }
        let mut t = Tensor::from_vec(v, &[self.dim]);
        let norm = t.frobenius_norm();
        if norm > 0.0 {
            t = t.scale(1.0 / norm);
        }
        t
    }

    /// Embeds a batch of documents into `[n, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty.
    pub fn embed_batch(&self, docs: &[&str]) -> Tensor {
        assert!(!docs.is_empty(), "need at least one document");
        let rows: Vec<Tensor> = docs.iter().map(|d| self.embed(d)).collect();
        Tensor::stack_rows(&rows)
    }
}

/// FNV-1a, enough hash for feature bucketing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Cosine similarity of two embeddings (0 when either is zero).
pub fn cosine(a: &Tensor, b: &Tensor) -> f32 {
    let na = a.frobenius_norm();
    let nb = b.frobenius_norm();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        tensor::linalg::dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_unit_norm() {
        let e = DocEmbedder::new(64);
        let v = e.embed("near data processing for photo storage");
        assert!((v.frobenius_norm() - 1.0).abs() < 1e-5);
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn embedding_is_deterministic_and_case_insensitive() {
        let e = DocEmbedder::new(64);
        let a = e.embed("Deep Learning Storage");
        let b = e.embed("deep learning storage");
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn similar_documents_are_closer_than_unrelated_ones() {
        let e = DocEmbedder::new(128);
        let a = e.embed("the cat sat on the warm mat in the sun");
        let b = e.embed("a cat sat on a mat enjoying warm sun");
        let c = e.embed("kernel scheduler preemption latency quantum cgroups");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = DocEmbedder::new(32);
        let v = e.embed("...!!!");
        assert_eq!(v.frobenius_norm(), 0.0);
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn embedding_shrinks_large_documents() {
        let e = DocEmbedder::new(128);
        let long_doc = "storage ".repeat(10_000);
        let v = e.embed(&long_doc);
        let doc_bytes = long_doc.len();
        let vec_bytes = v.len() * 4;
        assert!(vec_bytes * 10 < doc_bytes, "no transfer saving");
    }

    #[test]
    fn batch_embeds_each_row() {
        let e = DocEmbedder::new(32);
        let batch = e.embed_batch(&["alpha beta", "gamma delta"]);
        assert_eq!(batch.dims(), &[2, 32]);
        assert_eq!(batch.row(0).data(), e.embed("alpha beta").data());
    }

    #[test]
    fn bigrams_matter() {
        let e = DocEmbedder::new(256);
        // Same unigrams, different order → different bigrams.
        let a = e.embed("storage near data");
        let b = e.embed("data near storage");
        assert_ne!(a.data(), b.data());
    }
}
