//! NPE: the near-data processing engine (§5.4, Fig 12, Fig 19).
//!
//! NPE makes one PipeStore fast through four cumulative techniques:
//!
//! 1. **3-stage pipelining** — data loading (disk), preprocessing /
//!    decompression (CPU) and FE&Cl (GPU) run concurrently on different
//!    hardware; throughput becomes `1 / max(stage)` instead of
//!    `1 / sum(stages)`.
//! 2. **+Offload** — preprocessing moves to the inference server at
//!    upload time; PipeStores read preprocessed binaries.
//! 3. **+Comp** — binaries are stored DEFLATE-compressed, shrinking both
//!    storage overhead and I/O time, at the cost of ≤2 CPU cores of
//!    decompression.
//! 4. **+Batch** — batch enlargement (e.g. 128 for ResNet50) keeps the
//!    GPU efficient; bounded by device memory (Fig 19's OOM).
//!
//! The capacity model here produces Fig 12's per-task times and Fig 19's
//! batch sweep; the *functional* compression path (real DEFLATE over real
//! blobs) lives in [`crate::pipestore`], and the executable threaded
//! 3-stage pipeline that actually runs it lives in [`engine`].

pub mod engine;

pub use engine::{run_pipeline, EngineConfig, PipelineStats, StageStats};

use dnn::ModelProfile;
use hw::{GpuSpec, InstanceSpec, COMPRESSED_IMAGE_BYTES, PREPROC_IMAGE_BYTES, RAW_IMAGE_BYTES};

/// Cumulative NPE optimization levels, in the order Fig 12 plots them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NpeLevel {
    /// No optimizations: raw reads, on-store preprocessing (1 core),
    /// small batches.
    Naive,
    /// + preprocessing offloaded to the inference server.
    Offload,
    /// + compressed preprocessed binaries (2 decompression cores).
    Comp,
    /// + enlarged batch size (the reference 128).
    Batch,
}

impl NpeLevel {
    /// All levels in ablation order.
    pub fn all() -> [NpeLevel; 4] {
        [
            NpeLevel::Naive,
            NpeLevel::Offload,
            NpeLevel::Comp,
            NpeLevel::Batch,
        ]
    }

    /// Label as Fig 12 prints it.
    pub fn label(&self) -> &'static str {
        match self {
            NpeLevel::Naive => "Naive",
            NpeLevel::Offload => "+Offload",
            NpeLevel::Comp => "+Comp",
            NpeLevel::Batch => "+Batch",
        }
    }
}

/// Which near-data task is being profiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NpeTask {
    /// Feature extraction for FT-DMP (preprocessed inputs, no
    /// preprocessing stage).
    FineTune,
    /// Offline inference over stored photos (raw inputs at `Naive`).
    OfflineInference,
}

/// Per-image stage times on one PipeStore, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimes {
    /// Disk read.
    pub read: f64,
    /// CPU preprocessing (zero once offloaded).
    pub preproc: f64,
    /// CPU decompression (zero until `+Comp`).
    pub decomp: f64,
    /// GPU feature extraction (+ classification / classifier training).
    pub fe: f64,
}

impl StageTimes {
    /// Serial per-image time (no pipelining).
    pub fn serial_total(&self) -> f64 {
        self.read + self.preproc + self.decomp + self.fe
    }

    /// Throughput with 3-stage pipelining: the slowest stage governs.
    /// Both CPU stages share the CPU, so they form one pipeline stage.
    pub fn pipelined_ips(&self) -> f64 {
        1.0 / self.read.max(self.preproc + self.decomp).max(self.fe)
    }
}

/// Batch size used before the `+Batch` optimization.
const SMALL_BATCH: usize = 8;

/// Per-image stage breakdown for `task` at optimization `level`
/// (Fig 12's bars).
pub fn stage_times(model: &ModelProfile, task: NpeTask, level: NpeLevel) -> StageTimes {
    let store = InstanceSpec::pipestore();
    stage_times_on(model, task, level, &store, reference_batch(level))
}

fn reference_batch(level: NpeLevel) -> usize {
    if level >= NpeLevel::Batch {
        128
    } else {
        SMALL_BATCH
    }
}

/// Stage breakdown with explicit hardware and batch size (Fig 19 sweeps
/// the batch; Fig 20 swaps the accelerator).
pub fn stage_times_on(
    model: &ModelProfile,
    task: NpeTask,
    level: NpeLevel,
    store: &InstanceSpec,
    batch: usize,
) -> StageTimes {
    let gpu_ips =
        model.t4_inference_ips() * store.total_dnn_factor() * ModelProfile::batch_efficiency(batch);

    let raw_input = task == NpeTask::OfflineInference && level < NpeLevel::Offload;
    let (read_bytes, preproc, decomp) = match (raw_input, level >= NpeLevel::Comp) {
        // Raw JPEGs: full preprocessing on one storage-server core.
        (true, _) => (RAW_IMAGE_BYTES, 1.0 / store.cpu.preprocess_ips(1), 0.0),
        // Preprocessed, uncompressed binaries.
        (false, false) => (PREPROC_IMAGE_BYTES, 0.0, 0.0),
        // Compressed binaries + 2 decompression cores.
        (false, true) => (
            COMPRESSED_IMAGE_BYTES,
            0.0,
            COMPRESSED_IMAGE_BYTES / store.cpu.decompress_bps(2),
        ),
    };

    StageTimes {
        read: read_bytes / store.disk.read_bps,
        preproc,
        decomp,
        fe: 1.0 / gpu_ips,
    }
}

/// Throughput of one PipeStore at a given batch size, with the Fig 19
/// OOM guard: `None` when the batch no longer fits in device memory.
pub fn throughput_at_batch(
    model: &ModelProfile,
    store: &InstanceSpec,
    batch: usize,
) -> Option<f64> {
    let gpu = store.gpus.first()?;
    if !gpu.fits_batch(
        model.total_param_bytes(),
        model.activation_bytes_per_image(),
        batch,
    ) {
        return None;
    }
    let t = stage_times_on(
        model,
        NpeTask::OfflineInference,
        NpeLevel::Batch,
        store,
        batch,
    );
    Some(t.pipelined_ips())
}

/// Convenience: throughput on the standard T4 PipeStore.
pub fn t4_throughput_at_batch(model: &ModelProfile, batch: usize) -> Option<f64> {
    throughput_at_batch(model, &InstanceSpec::pipestore(), batch)
}

/// The accelerator spec a PipeStore would use, by name (used by the
/// Fig 20 bench to swap in Inferentia).
pub fn accelerator(name: &str) -> Option<GpuSpec> {
    match name {
        "t4" => Some(GpuSpec::tesla_t4()),
        "v100" => Some(GpuSpec::tesla_v100()),
        "inferentia" => Some(GpuSpec::neuron_core_v1()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12b_naive_inference_is_preprocessing_bound() {
        let m = ModelProfile::resnet50();
        let t = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Naive);
        assert!(t.preproc > t.fe, "{t:?}");
        assert!(t.preproc > t.read, "{t:?}");
    }

    #[test]
    fn fig12_offload_removes_preprocessing() {
        let m = ModelProfile::resnet50();
        let naive = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Naive);
        let off = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Offload);
        assert_eq!(off.preproc, 0.0);
        assert!(off.serial_total() < naive.serial_total());
        // Reading 0.59 MB instead of 2.7 MB also shrinks I/O.
        assert!(off.read < naive.read);
    }

    #[test]
    fn fig12_comp_trades_io_for_cpu() {
        let m = ModelProfile::resnet50();
        let off = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Offload);
        let comp = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Comp);
        assert!(comp.read < off.read);
        assert!(comp.decomp > 0.0);
        // Decompression hides behind FE under pipelining (§5.4).
        assert!(comp.decomp < comp.fe, "{comp:?}");
    }

    #[test]
    fn fig12_batch_shrinks_fe() {
        let m = ModelProfile::resnet50();
        let comp = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Comp);
        let batch = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Batch);
        assert!(batch.fe < comp.fe);
        // After all optimizations the per-store throughput reaches the
        // Fig 13 anchor.
        let ips = batch.pipelined_ips();
        assert!((1900.0..2200.0).contains(&ips), "ips {ips}");
    }

    #[test]
    fn fine_tune_path_never_preprocesses() {
        let m = ModelProfile::resnet50();
        for level in NpeLevel::all() {
            let t = stage_times(&m, NpeTask::FineTune, level);
            assert_eq!(t.preproc, 0.0, "{level:?}");
        }
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let m = ModelProfile::resnet50();
        let t = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Batch);
        assert!(t.pipelined_ips() > 1.0 / t.serial_total());
    }

    #[test]
    fn fig19_throughput_saturates_with_batch() {
        let m = ModelProfile::inception_v3();
        let ips: Vec<f64> = [1usize, 8, 32, 128, 256]
            .iter()
            .map(|&b| t4_throughput_at_batch(&m, b).unwrap())
            .collect();
        // Monotone non-decreasing...
        for w in ips.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{ips:?}");
        }
        // ...but with diminishing returns past 128 (decompression or
        // saturation binds).
        let gain_small = ips[2] / ips[0];
        let gain_large = ips[4] / ips[3];
        assert!(gain_small > 5.0, "{ips:?}");
        assert!(gain_large < 1.2, "{ips:?}");
    }

    #[test]
    fn fig19_vit_oom_at_large_batches() {
        let vit = ModelProfile::vit_b16();
        assert!(t4_throughput_at_batch(&vit, 128).is_some());
        assert!(t4_throughput_at_batch(&vit, 512).is_none());
    }

    #[test]
    fn levels_never_regress_and_strictly_improve_overall() {
        let m = ModelProfile::resnet50();
        let mut last = 0.0;
        for level in NpeLevel::all() {
            let ips = stage_times(&m, NpeTask::OfflineInference, level).pipelined_ips();
            assert!(ips >= last, "{level:?} regressed: {ips} < {last}");
            last = ips;
        }
        // Serial per-image cost strictly decreases at every level (+Comp
        // pays decompression but saves more I/O), and the fully
        // optimized engine is far faster than naive.
        let mut serial = f64::INFINITY;
        for level in NpeLevel::all() {
            let t = stage_times(&m, NpeTask::OfflineInference, level).serial_total();
            assert!(t < serial, "{level:?} serial regressed");
            serial = t;
        }
        let naive = stage_times(&m, NpeTask::OfflineInference, NpeLevel::Naive).pipelined_ips();
        assert!(last > naive * 10.0, "end-to-end gain too small");
    }

    #[test]
    fn accelerator_lookup() {
        assert!(accelerator("t4").is_some());
        assert!(accelerator("inferentia").is_some());
        assert!(accelerator("tpu").is_none());
    }
}
