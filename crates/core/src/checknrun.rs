//! Check-N-Run-style model distribution (§5, paper reference 29).
//!
//! After every fine-tuning round the updated model must reach every
//! PipeStore. Shipping whole models is wasteful: fine-tuning only touches
//! the trainable tail. Following Check-N-Run, [`ModelDelta`] encodes the
//! *difference* between two models — only layers that changed, quantized
//! to 8 bits with a per-tensor scale, DEFLATE-compressed — achieving
//! traffic reductions of hundreds of × versus full-model distribution.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dnn::Mlp;
use ndpipe_data::deflate;
use tensor::Tensor;

/// Errors applying a delta to a model replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The replica's classifier shape differs from the delta's source
    /// (e.g. the master was widened for new classes — distribute the full
    /// model instead).
    ShapeMismatch,
    /// The encoded payload failed to decompress or parse.
    Corrupt,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::ShapeMismatch => write!(f, "delta does not match replica shape"),
            DeltaError::Corrupt => write!(f, "delta payload is corrupt"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A compressed, quantized diff between two fine-tuned models.
///
/// # Example
///
/// ```
/// use dnn::Mlp;
/// use ndpipe::ModelDelta;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let old = Mlp::new(&[8, 16, 4], 1, &mut rng);
/// let new = old.clone(); // unchanged model -> near-empty delta
/// let delta = ModelDelta::between(&old, &new);
/// assert!(delta.wire_bytes() < 128);
/// ```
#[derive(Debug, Clone)]
pub struct ModelDelta {
    payload: Bytes,
    /// Bytes a full-model distribution would have moved.
    full_model_bytes: usize,
    /// Tuner model version this delta upgrades *from* (0 = unstamped).
    base_version: u64,
    /// Tuner model version this delta upgrades *to* (0 = unstamped).
    target_version: u64,
}

/// Quantization: i8 with symmetric per-tensor scale.
fn quantize(delta: &Tensor, out: &mut BytesMut) {
    let max_abs = delta.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
    out.put_f32_le(scale);
    for &x in delta.data() {
        let q = if scale > 0.0 {
            (x / scale).round().clamp(-127.0, 127.0) as i8
        } else {
            0
        };
        out.put_i8(q);
    }
}

fn dequantize(buf: &mut impl Buf, n: usize) -> Result<Vec<f32>, DeltaError> {
    if buf.remaining() < 4 + n {
        return Err(DeltaError::Corrupt);
    }
    let scale = buf.get_f32_le();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_i8() as f32 * scale);
    }
    Ok(out)
}

impl ModelDelta {
    /// Encodes the difference `new − old` over the classifier layers.
    ///
    /// Weight-freeze layers are bit-identical between fine-tuned models
    /// and are skipped entirely; changed layers are quantized to 8 bits
    /// and the whole payload is DEFLATE-compressed.
    ///
    /// # Panics
    ///
    /// Panics if the two models have different architectures.
    pub fn between(old: &Mlp, new: &Mlp) -> Self {
        assert_eq!(old.n_layers(), new.n_layers(), "architecture mismatch");
        assert_eq!(old.split(), new.split(), "split mismatch");
        let old_cls = old.classifier_layers();
        let new_cls = new.classifier_layers();
        let mut raw = BytesMut::new();
        raw.put_u32_le(new_cls.len() as u32);
        for (o, n) in old_cls.iter().zip(new_cls) {
            assert_eq!(o.weights().dims(), n.weights().dims(), "shape mismatch");
            let dims = n.weights().dims();
            raw.put_u32_le(dims[0] as u32);
            raw.put_u32_le(dims[1] as u32);
            let dw = n.weights().sub(o.weights());
            let db = n.bias().sub(o.bias());
            quantize(&dw, &mut raw);
            quantize(&db, &mut raw);
        }
        // Chunked frame: large deltas compress across cores; small ones
        // fall back to a plain stream automatically.
        let payload = Bytes::from(deflate::compress_chunked(&raw, deflate::DEFAULT_CHUNK_SIZE));
        if telemetry::enabled() {
            let g = telemetry::global();
            g.counter(
                "ndpipe_checknrun_deltas_total",
                "Check-N-Run deltas encoded",
            )
            .inc();
            g.counter(
                "ndpipe_checknrun_delta_bytes_total",
                "compressed delta payload bytes encoded",
            )
            .add(payload.len() as u64);
            g.counter(
                "ndpipe_checknrun_full_model_bytes_total",
                "bytes a full-model distribution would have moved",
            )
            .add((new.param_count() * 4) as u64);
            g.histogram(
                "ndpipe_checknrun_traffic_reduction",
                "full-model bytes over delta bytes, per encoded delta",
            )
            .observe((new.param_count() * 4) as f64 / payload.len().max(1) as f64);
        }
        ModelDelta {
            payload,
            full_model_bytes: new.param_count() * 4,
            base_version: 0,
            target_version: 0,
        }
    }

    /// Stamps the Tuner model-version span this delta covers
    /// (`w_version` before → after the fine-tuning round), so replicas
    /// and schedulers can audit how stale an in-flight distribution is.
    #[must_use]
    pub fn with_versions(mut self, base: u64, target: u64) -> Self {
        self.base_version = base;
        self.target_version = target;
        self
    }

    /// The stamped `(base, target)` Tuner version span; `(0, 0)` when
    /// the delta was never stamped.
    pub fn versions(&self) -> (u64, u64) {
        (self.base_version, self.target_version)
    }

    /// Bytes this delta puts on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Serializes the delta for network transport:
    /// `[full_model_bytes u64][base_version u64][target_version u64]`
    /// then the compressed payload, all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.payload.len());
        out.extend_from_slice(&(self.full_model_bytes as u64).to_le_bytes());
        out.extend_from_slice(&self.base_version.to_le_bytes());
        out.extend_from_slice(&self.target_version.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Reconstructs a delta from [`ModelDelta::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`DeltaError::Corrupt`] if the framing is too short.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelDelta, DeltaError> {
        if bytes.len() < 24 {
            return Err(DeltaError::Corrupt);
        }
        let u64_at = |i: usize| {
            bytes
                .get(i..i + 8)
                .and_then(|s| <[u8; 8]>::try_from(s).ok())
                .map(u64::from_le_bytes)
                .ok_or(DeltaError::Corrupt)
        };
        Ok(ModelDelta {
            payload: Bytes::copy_from_slice(&bytes[24..]),
            full_model_bytes: u64_at(0)? as usize,
            base_version: u64_at(8)?,
            target_version: u64_at(16)?,
        })
    }

    /// Traffic reduction versus shipping the full model
    /// (`full_model_bytes / wire_bytes`). The paper reports up to 427.4×.
    pub fn traffic_reduction(&self) -> f64 {
        self.full_model_bytes as f64 / self.payload.len().max(1) as f64
    }

    /// Applies the delta to a replica of the *old* model, upgrading its
    /// classifier in place.
    ///
    /// # Errors
    ///
    /// [`DeltaError::ShapeMismatch`] if the replica's classifier differs
    /// from the encoded shapes; [`DeltaError::Corrupt`] on a bad payload.
    pub fn apply(&self, replica: &mut Mlp) -> Result<(), DeltaError> {
        // `decompress_framed` also accepts legacy plain-deflate deltas.
        let raw = deflate::decompress_framed(&self.payload).map_err(|_| DeltaError::Corrupt)?;
        let mut buf = Bytes::from(raw);
        if buf.remaining() < 4 {
            return Err(DeltaError::Corrupt);
        }
        let n_layers = buf.get_u32_le() as usize;
        if n_layers != replica.classifier_layers().len() {
            return Err(DeltaError::ShapeMismatch);
        }
        for layer in replica.classifier_layers_mut() {
            if buf.remaining() < 8 {
                return Err(DeltaError::Corrupt);
            }
            let d_out = buf.get_u32_le() as usize;
            let d_in = buf.get_u32_le() as usize;
            if d_out != layer.d_out() || d_in != layer.d_in() {
                return Err(DeltaError::ShapeMismatch);
            }
            let dw = dequantize(&mut buf, d_out * d_in)?;
            let db = dequantize(&mut buf, d_out)?;
            let mut w = layer.weights().clone();
            for (t, d) in w.data_mut().iter_mut().zip(&dw) {
                *t += d;
            }
            let mut b = layer.bias().clone();
            for (t, d) in b.data_mut().iter_mut().zip(&db) {
                *t += d;
            }
            layer.set_weights(w, b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fine_tuned_pair(rng: &mut StdRng) -> (Mlp, Mlp) {
        // A model with a large frozen body and a small trainable head,
        // like ResNet50's FC over its conv stack.
        let old = Mlp::new(&[64, 256, 256, 64, 10], 3, rng);
        let mut new = old.clone();
        let x = tensor::Tensor::randn(&[32, 64], rng);
        let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
        for _ in 0..10 {
            new.train_step(&x, &labels, 0.1, 0.9, new.split());
        }
        (old, new)
    }

    #[test]
    fn delta_is_far_smaller_than_full_model() {
        let mut rng = StdRng::seed_from_u64(61);
        let (old, new) = fine_tuned_pair(&mut rng);
        let delta = ModelDelta::between(&old, &new);
        let reduction = delta.traffic_reduction();
        // Frozen body skipped (≈150×) plus 4× quantization and deflate.
        assert!(reduction > 100.0, "reduction only {reduction}x");
    }

    #[test]
    fn apply_reconstructs_master_within_quantization_error() {
        let mut rng = StdRng::seed_from_u64(62);
        let (old, new) = fine_tuned_pair(&mut rng);
        let delta = ModelDelta::between(&old, &new);
        let mut replica = old.clone();
        delta.apply(&mut replica).unwrap();
        for (r, m) in replica
            .classifier_layers()
            .iter()
            .zip(new.classifier_layers())
        {
            let err = r.weights().sub(m.weights()).frobenius_norm();
            let mag = m.weights().frobenius_norm();
            assert!(err < mag * 0.02, "err {err} vs mag {mag}");
        }
    }

    #[test]
    fn identical_models_yield_tiny_delta() {
        let mut rng = StdRng::seed_from_u64(63);
        let m = Mlp::new(&[8, 16, 4], 1, &mut rng);
        let delta = ModelDelta::between(&m, &m);
        let mut replica = m.clone();
        delta.apply(&mut replica).unwrap();
        assert_eq!(
            replica.classifier_layers()[0].weights().data(),
            m.classifier_layers()[0].weights().data()
        );
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut rng = StdRng::seed_from_u64(64);
        let a = Mlp::new(&[8, 16, 4], 1, &mut rng);
        let delta = ModelDelta::between(&a, &a);
        let mut widened = a.clone();
        widened.widen_classes(6, &mut rng);
        assert_eq!(delta.apply(&mut widened), Err(DeltaError::ShapeMismatch));
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut rng = StdRng::seed_from_u64(65);
        let a = Mlp::new(&[8, 16, 4], 1, &mut rng);
        let mut delta = ModelDelta::between(&a, &a);
        delta.payload = Bytes::from_static(&[1, 2, 3]);
        let mut replica = a.clone();
        assert!(delta.apply(&mut replica).is_err());
    }

    #[test]
    fn error_display() {
        assert!(DeltaError::ShapeMismatch.to_string().contains("shape"));
    }

    #[test]
    fn version_stamp_survives_the_wire() {
        let mut rng = StdRng::seed_from_u64(66);
        let (old, new) = fine_tuned_pair(&mut rng);
        let delta = ModelDelta::between(&old, &new).with_versions(4, 7);
        assert_eq!(delta.versions(), (4, 7));
        let back = ModelDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(back.versions(), (4, 7));
        assert_eq!(back.wire_bytes(), delta.wire_bytes());
        assert_eq!(back.traffic_reduction(), delta.traffic_reduction());
        let mut replica = old.clone();
        back.apply(&mut replica).unwrap();
        // Truncated headers are corrupt, not misparsed.
        assert_eq!(
            ModelDelta::from_bytes(&delta.to_bytes()[..23]).unwrap_err(),
            DeltaError::Corrupt
        );
    }
}
