//! The online-inference server (Fig 7's inference path, §5.4's offload).
//!
//! New uploads hit this server first: it preprocesses each photo (once,
//! for both inference and the PipeStore sidecar — the §5.4 offload), runs
//! the model over *dynamically batched* requests for GPU efficiency, and
//! emits `(label, preprocessed binary)` so the storage tier never
//! preprocesses anything itself.

use dnn::Mlp;
use ndpipe_data::photo::preprocessed_binary;
use ndpipe_data::Photo;
use rand::Rng;
use tensor::Tensor;

/// One pending upload: the photo, its decoded feature vector, and where
/// the result should go (the caller keeps the ticket index).
#[derive(Debug)]
struct Pending {
    photo: Photo,
    features: Tensor,
    enqueued: std::time::Instant,
}

/// The result of online inference for one upload.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// The photo, unchanged.
    pub photo: Photo,
    /// Predicted label.
    pub label: usize,
    /// Preprocessed binary to ship to the photo's PipeStore (§5.4
    /// offload), uncompressed — the store compresses on write.
    pub preprocessed: Vec<u8>,
}

/// Throughput counters for the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Uploads processed.
    pub processed: u64,
    /// Batches executed.
    pub batches: u64,
}

impl OnlineStats {
    /// Mean batch size achieved by dynamic batching.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.processed as f64 / self.batches as f64
        }
    }
}

/// Knobs for dynamic batching, shared by this in-process server and the
/// RPC front door's cross-session coalescer: a batch fires when either
/// `max_batch` rows have accumulated or the oldest pending row has waited
/// `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Fire as soon as this many rows are pending.
    pub max_batch: usize,
    /// Fire once the oldest pending row has waited this long, even if
    /// the batch is not full — bounds added tail latency.
    pub max_delay: std::time::Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: std::time::Duration::from_micros(500),
        }
    }
}

/// An inference server with dynamic batching: requests queue until
/// `batch_size` accumulate (or [`OnlineInferenceServer::flush`] forces a
/// partial batch), then one forward pass serves them all.
#[derive(Debug)]
pub struct OnlineInferenceServer {
    model: Mlp,
    batch_size: usize,
    preproc_bytes: usize,
    queue: Vec<Pending>,
    stats: OnlineStats,
}

impl OnlineInferenceServer {
    /// Creates a server around a model.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `preproc_bytes` is zero.
    pub fn new(model: Mlp, batch_size: usize, preproc_bytes: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(preproc_bytes > 0, "preprocessed size must be positive");
        OnlineInferenceServer {
            model,
            batch_size,
            preproc_bytes,
            queue: Vec::new(),
            stats: OnlineStats::default(),
        }
    }

    /// Replaces the model (after a fine-tuning round).
    pub fn update_model(&mut self, model: Mlp) {
        assert_eq!(
            model.input_dim(),
            self.model.input_dim(),
            "input dim changed"
        );
        self.model = model;
    }

    /// The live model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Requests waiting for a batch.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Throughput counters.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// Submits an upload. Returns completed results when this submission
    /// filled a batch; otherwise the request waits in the queue.
    ///
    /// # Panics
    ///
    /// Panics if `features` isn't a vector of the model's input width.
    pub fn submit<R: Rng + ?Sized>(
        &mut self,
        photo: Photo,
        features: Tensor,
        rng: &mut R,
    ) -> Vec<OnlineResult> {
        assert_eq!(features.shape().rank(), 1, "features must be a vector");
        assert_eq!(
            features.len(),
            self.model.input_dim(),
            "feature width mismatch"
        );
        self.queue.push(Pending {
            photo,
            features,
            enqueued: std::time::Instant::now(),
        });
        if self.queue.len() >= self.batch_size {
            self.run_batch(rng)
        } else {
            Vec::new()
        }
    }

    /// Forces the pending partial batch through (e.g. on a latency
    /// deadline). Returns completed results.
    pub fn flush<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<OnlineResult> {
        if self.queue.is_empty() {
            Vec::new()
        } else {
            self.run_batch(rng)
        }
    }

    fn run_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<OnlineResult> {
        let pending: Vec<Pending> = self.queue.drain(..).collect();
        if telemetry::enabled() {
            let g = telemetry::global();
            let wait = g.histogram(
                "ndpipe_online_queue_wait_seconds",
                "time an upload waited for its dynamic batch to fire",
            );
            for p in &pending {
                wait.observe(p.enqueued.elapsed().as_secs_f64());
            }
            g.histogram(
                "ndpipe_online_batch_size",
                "requests served per dynamically formed batch",
            )
            .observe(pending.len() as f64);
            g.counter(
                "ndpipe_online_requests_total",
                "uploads served by online inference",
            )
            .add(pending.len() as u64);
        }
        let rows: Vec<Tensor> = pending.iter().map(|p| p.features.clone()).collect();
        let batch = Tensor::stack_rows(&rows);
        let logits = self.model.forward(&batch);
        let cols = logits.dims()[1];
        self.stats.batches += 1;
        self.stats.processed += pending.len() as u64;
        pending
            .into_iter()
            .enumerate()
            .map(|(r, p)| {
                let row = &logits.data()[r * cols..(r + 1) * cols];
                let mut label = 0;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[label] {
                        label = c;
                    }
                }
                OnlineResult {
                    photo: p.photo,
                    label,
                    // The §5.4 offload: preprocessing happens here, once.
                    preprocessed: preprocessed_binary(self.preproc_bytes, rng),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpipe_data::photo::PhotoFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(rng: &mut StdRng, batch: usize) -> OnlineInferenceServer {
        let model = Mlp::new(&[8, 12, 4], 1, rng);
        OnlineInferenceServer::new(model, batch, 256)
    }

    #[test]
    fn batches_fire_when_full() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut srv = server(&mut rng, 3);
        let mut factory = PhotoFactory::new(128);
        for i in 0..2 {
            let out = srv.submit(
                factory.make(i, 0, &mut rng),
                Tensor::randn(&[8], &mut rng),
                &mut rng,
            );
            assert!(out.is_empty(), "fired early");
        }
        assert_eq!(srv.queued(), 2);
        let out = srv.submit(
            factory.make(2, 0, &mut rng),
            Tensor::randn(&[8], &mut rng),
            &mut rng,
        );
        assert_eq!(out.len(), 3);
        assert_eq!(srv.queued(), 0);
        assert_eq!(srv.stats().batches, 1);
        assert_eq!(srv.stats().processed, 3);
    }

    #[test]
    fn flush_serves_partial_batches() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut srv = server(&mut rng, 100);
        let mut factory = PhotoFactory::new(128);
        srv.submit(
            factory.make(0, 0, &mut rng),
            Tensor::randn(&[8], &mut rng),
            &mut rng,
        );
        let out = srv.flush(&mut rng);
        assert_eq!(out.len(), 1);
        assert!(srv.flush(&mut rng).is_empty());
        assert!((srv.stats().mean_batch() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn results_match_direct_model_prediction() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut srv = server(&mut rng, 2);
        let mut factory = PhotoFactory::new(128);
        let f1 = Tensor::randn(&[8], &mut rng);
        let f2 = Tensor::randn(&[8], &mut rng);
        srv.submit(factory.make(0, 0, &mut rng), f1.clone(), &mut rng);
        let out = srv.submit(factory.make(1, 0, &mut rng), f2.clone(), &mut rng);
        let direct = |f: &Tensor| {
            srv.model()
                .forward(&f.reshape(&[1, 8]).expect("row"))
                .argmax()
        };
        assert_eq!(out[0].label, direct(&f1));
        assert_eq!(out[1].label, direct(&f2));
        // Preprocessed binaries come back for the offload path.
        assert_eq!(out[0].preprocessed.len(), 256);
    }

    #[test]
    fn model_update_changes_future_predictions_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut srv = server(&mut rng, 1);
        let new_model = Mlp::new(&[8, 12, 4], 1, &mut rng);
        srv.update_model(new_model.clone());
        let mut factory = PhotoFactory::new(128);
        let f = Tensor::randn(&[8], &mut rng);
        let out = srv.submit(factory.make(0, 0, &mut rng), f.clone(), &mut rng);
        assert_eq!(
            out[0].label,
            new_model
                .forward(&f.reshape(&[1, 8]).expect("row"))
                .argmax()
        );
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_feature_width_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut srv = server(&mut rng, 1);
        let mut factory = PhotoFactory::new(128);
        srv.submit(
            factory.make(0, 0, &mut rng),
            Tensor::randn(&[5], &mut rng),
            &mut rng,
        );
    }
}
