//! Wire protocol and TCP transport for a *genuinely distributed* NDPipe:
//! PipeStores serve their shard over a socket, the Tuner drives them
//! remotely. This is the deployment shape of the paper's artifact ("the
//! evaluation needs two or more machines ... matching the port number on
//! the Tuner side").
//!
//! - [`wire`] — length-prefixed, tagged frames with hand-rolled
//!   little-endian payload encoding (no external serialization crates),
//!   including the versioned [`wire::Handshake`] that opens every session,
//! - [`server`] — [`server::PipeStoreServer`]: an event-driven
//!   (poll-based) front door around a [`crate::PipeStore`] — nonblocking
//!   sockets, incremental frame decode, a worker pool off the event
//!   thread, and cross-session dynamic batching of
//!   [`wire::Request::Infer`] rows,
//! - [`sys`] — the tiny `poll(2)`/self-pipe shim the server's event
//!   loop stands on (no external crates),
//! - [`client`] — [`client::RemotePipeStore`]: the Tuner's handle to one
//!   remote store, now with a pipelined in-flight request window,
//! - [`cluster`] — [`cluster::Cluster`]: the Tuner's control plane over a
//!   fleet: one worker thread per peer, parallel fan-out, per-peer retry
//!   and a [`cluster::FailurePolicy`] so a flaky peer doesn't abort the
//!   round.

pub mod client;
pub mod cluster;
pub mod server;
pub mod sys;
pub mod wire;

pub use client::{ConnectOptions, RemotePipeStore};
pub use cluster::{
    Cluster, ClusterBuilder, ClusterError, ClusterFtdmpReport, ClusterMetrics, FailurePolicy,
    Fanout, PeerFailure, PeerResult, RebalanceConfig, RebalanceReport,
};
pub use server::{PipeStoreServer, ServerConfig};

/// Errors on the RPC path, structured so failover logic can `match`
/// instead of string-sniffing.
#[derive(Debug)]
pub enum RpcError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame violated the protocol.
    Protocol(&'static str),
    /// The peer reported an application-level failure for one operation.
    Remote {
        /// Peer address the failure came from.
        peer: String,
        /// Operation that failed (`Request::op_name` or `"hello"`).
        op: &'static str,
        /// The peer's error message.
        msg: String,
    },
    /// The peer speaks a different wire-protocol revision.
    ProtocolMismatch {
        /// Our [`wire::PROTOCOL_VERSION`].
        ours: u32,
        /// The peer's version.
        theirs: u32,
    },
    /// The peer could not be reached (connect attempts exhausted, or the
    /// handle is detached) — the canonical "this store is down" signal.
    PeerUnavailable {
        /// Peer address (or the connect string when unresolvable).
        peer: String,
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The last socket error, when one was observed.
        source: Option<std::io::Error>,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "rpc i/o error: {e}"),
            RpcError::Protocol(s) => write!(f, "rpc protocol violation: {s}"),
            RpcError::Remote { peer, op, msg } => {
                write!(f, "remote pipestore error ({peer}, {op}): {msg}")
            }
            RpcError::ProtocolMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: ours v{ours}, peer speaks v{theirs}"
            ),
            RpcError::PeerUnavailable {
                peer,
                attempts,
                source,
            } => match source {
                Some(e) => write!(
                    f,
                    "peer {peer} unavailable after {attempts} attempt(s): {e}"
                ),
                None => write!(f, "peer {peer} unavailable after {attempts} attempt(s)"),
            },
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            RpcError::PeerUnavailable {
                source: Some(e), ..
            } => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(RpcError::Protocol("bad tag")
            .to_string()
            .contains("bad tag"));
        let remote = RpcError::Remote {
            peer: "10.0.0.1:7401".into(),
            op: "apply_delta",
            msg: "boom".into(),
        };
        let s = remote.to_string();
        assert!(s.contains("boom") && s.contains("10.0.0.1:7401") && s.contains("apply_delta"));
        let mismatch = RpcError::ProtocolMismatch { ours: 1, theirs: 3 };
        assert!(mismatch.to_string().contains("v3"));
        let down = RpcError::PeerUnavailable {
            peer: "10.0.0.2:7401".into(),
            attempts: 5,
            source: None,
        };
        assert!(down.to_string().contains("5 attempt"));
    }

    #[test]
    fn failover_code_can_match_structured_variants() {
        // The point of the redesign: no string-sniffing required.
        let e = RpcError::PeerUnavailable {
            peer: "x".into(),
            attempts: 1,
            source: None,
        };
        assert!(matches!(e, RpcError::PeerUnavailable { .. }));
        let e = RpcError::ProtocolMismatch { ours: 1, theirs: 2 };
        assert!(matches!(
            e,
            RpcError::ProtocolMismatch { ours: 1, theirs: 2 }
        ));
    }
}
