//! Wire protocol and TCP transport for a *genuinely distributed* NDPipe:
//! PipeStores serve their shard over a socket, the Tuner drives them
//! remotely. This is the deployment shape of the paper's artifact ("the
//! evaluation needs two or more machines ... matching the port number on
//! the Tuner side").
//!
//! - [`wire`] — length-prefixed, tagged frames with hand-rolled
//!   little-endian payload encoding (no external serialization crates),
//! - [`server`] — `serve_pipestore`: a blocking request loop around a
//!   [`crate::PipeStore`],
//! - [`client`] — [`client::RemotePipeStore`]: the Tuner's handle to one
//!   remote store,
//! - [`distributed`] — FT-DMP over sockets, mirroring
//!   [`crate::ftdmp::ftdmp_fine_tune`].

pub mod client;
pub mod distributed;
pub mod server;
pub mod wire;

pub use client::{ConnectOptions, RemotePipeStore};
pub use distributed::{ftdmp_fine_tune_remote, scrape_cluster, ClusterMetrics};

/// Errors on the RPC path.
#[derive(Debug)]
pub enum RpcError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame violated the protocol.
    Protocol(&'static str),
    /// The peer reported a failure.
    Remote(String),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "rpc i/o error: {e}"),
            RpcError::Protocol(s) => write!(f, "rpc protocol violation: {s}"),
            RpcError::Remote(s) => write!(f, "remote pipestore error: {s}"),
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(RpcError::Protocol("bad tag").to_string().contains("bad tag"));
        assert!(RpcError::Remote("boom".into()).to_string().contains("boom"));
    }
}
