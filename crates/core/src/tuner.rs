//! The Tuner: the fine-tuning server that manages PipeStores.
//!
//! The Tuner holds the master model, triggers fine-tuning and offline
//! inference, trains the trainable tail on features shipped from
//! PipeStores, and redistributes updated models as Check-N-Run deltas.

use crate::checknrun::ModelDelta;
use dnn::{Mlp, TrainConfig};
use ndpipe_data::LabeledDataset;
use rand::Rng;
use tensor::Tensor;

/// The training server of an NDPipe deployment.
#[derive(Debug, Clone)]
pub struct Tuner {
    model: Mlp,
    config: TrainConfig,
    version: u64,
}

impl Tuner {
    /// Creates a Tuner around an initial (pre-trained) model.
    pub fn new(model: Mlp, config: TrainConfig) -> Self {
        Tuner {
            model,
            config,
            version: 0,
        }
    }

    /// The current master model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Mutable access to the master model (full-training experiments).
    pub fn model_mut(&mut self) -> &mut Mlp {
        &mut self.model
    }

    /// Monotonic model version, bumped by every fine-tuning round.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Tuner-stage of FT-DMP: trains the classifier tail on features
    /// gathered from PipeStores for `epochs` epochs, reshuffling every
    /// epoch. Returns the mean loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if `features`/`labels` disagree or `epochs == 0`.
    pub fn train_on_features<R: Rng + ?Sized>(
        &mut self,
        features: &Tensor,
        labels: &[usize],
        epochs: usize,
        rng: &mut R,
    ) -> f32 {
        assert!(epochs > 0, "need at least one epoch");
        assert_eq!(features.dims()[0], labels.len(), "one label per row");
        let ds = LabeledDataset::from_matrix(
            features.clone(),
            labels.to_vec(),
            self.model.num_classes(),
        );
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let shuffled = ds.shuffled(rng);
            let mut sum = 0.0f32;
            let mut n = 0;
            for (x, y) in shuffled.batches(self.config.batch) {
                sum +=
                    self.model
                        .tune_step_on_features(&x, y, self.config.lr, self.config.momentum);
                n += 1;
            }
            last = sum / n.max(1) as f32;
        }
        self.version += 1;
        last
    }

    /// Widens the classifier for emerging categories before fine-tuning.
    pub fn widen_classes<R: Rng + ?Sized>(&mut self, new_classes: usize, rng: &mut R) {
        self.model.widen_classes(new_classes, rng);
    }

    /// Produces the Check-N-Run delta that upgrades `old` to the current
    /// master model.
    pub fn delta_from(&self, old: &Mlp) -> ModelDelta {
        ModelDelta::between(old, &self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rng: &mut StdRng) -> (Tuner, Tensor, Vec<usize>) {
        let model = Mlp::new(&[6, 10, 8, 4], 2, rng);
        let feats = Tensor::randn(&[40, 8], rng);
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        (
            Tuner::new(
                model,
                TrainConfig {
                    batch: 8,
                    ..TrainConfig::default()
                },
            ),
            feats,
            labels,
        )
    }

    #[test]
    fn training_bumps_version_and_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(51);
        let (mut tuner, feats, labels) = setup(&mut rng);
        assert_eq!(tuner.version(), 0);
        let first = tuner.train_on_features(&feats, &labels, 1, &mut rng);
        let last = tuner.train_on_features(&feats, &labels, 20, &mut rng);
        assert_eq!(tuner.version(), 2);
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn training_never_touches_feature_layers() {
        let mut rng = StdRng::seed_from_u64(52);
        let (mut tuner, feats, labels) = setup(&mut rng);
        let x = Tensor::randn(&[3, 6], &mut rng);
        let before = tuner.model().features(&x);
        tuner.train_on_features(&feats, &labels, 3, &mut rng);
        let after = tuner.model().features(&x);
        assert_eq!(before.data(), after.data());
    }

    #[test]
    fn widen_then_train_handles_new_classes() {
        let mut rng = StdRng::seed_from_u64(53);
        let (mut tuner, feats, _) = setup(&mut rng);
        tuner.widen_classes(6, &mut rng);
        let labels: Vec<usize> = (0..40).map(|i| i % 6).collect();
        let loss = tuner.train_on_features(&feats, &labels, 5, &mut rng);
        assert!(loss.is_finite());
        assert_eq!(tuner.model().num_classes(), 6);
    }

    #[test]
    fn delta_roundtrip_upgrades_old_replica() {
        let mut rng = StdRng::seed_from_u64(54);
        let (mut tuner, feats, labels) = setup(&mut rng);
        let old = tuner.model().clone();
        tuner.train_on_features(&feats, &labels, 10, &mut rng);
        let delta = tuner.delta_from(&old);
        let mut replica = old.clone();
        delta.apply(&mut replica).expect("delta applies");
        // The upgraded replica closely matches the master (quantized).
        let x = Tensor::randn(&[4, 6], &mut rng);
        let a = tuner.model().forward(&x);
        let b = replica.forward(&x);
        for (p, q) in a.data().iter().zip(b.data()) {
            assert!((p - q).abs() < 0.05, "{p} vs {q}");
        }
    }
}
