//! Reusable drivers for the paper's accuracy experiments.
//!
//! These functions run the *functional* model path (real SGD on mini
//! models over synthetic drifting data) and are shared by the bench
//! binaries, the examples and the integration tests:
//!
//! - [`drift_experiment`] — Fig 4(a): accuracy over two weeks under
//!   `Outdated` / `FullTraining` / `FineTuning` strategies,
//! - [`dataset_size_sweep`] — Fig 4(b): fine-tuning accuracy vs dataset
//!   size,
//! - [`label_fix_experiment`] — Table 1: % of labels fixed by each model
//!   generation,
//! - [`table2_row`] — Table 2: Base / Outdated / NDPipe / Full accuracy
//!   for one model capacity on one dataset,
//! - [`pipelined_accuracy`] — Fig 17: accuracy and epochs vs `N_run`.

use crate::ftdmp::{ftdmp_fine_tune, FtdmpConfig};
use crate::pipestore::PipeStore;
use crate::tuner::Tuner;
use dnn::{EvalMetrics, Mlp, TrainConfig, Trainer};
use ndpipe_data::{DatasetSpec, DriftScenario, LabeledDataset, PhotoId};
use rand::Rng;

/// How the deployment reacts to drift (Fig 4a's three lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Never update: the *outdated model*.
    Outdated,
    /// Retrain from scratch on the whole pool at every update point.
    FullTraining,
    /// Fine-tune the classifier on the whole pool at every update point.
    FineTuning,
}

impl UpdateStrategy {
    /// Label as the paper's legend prints it.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateStrategy::Outdated => "Outdated model",
            UpdateStrategy::FullTraining => "Full training",
            UpdateStrategy::FineTuning => "Fine-tuning",
        }
    }
}

/// Shared hyper-parameters of the accuracy experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Feature-extractor widths of the mini model.
    pub feature_widths: Vec<usize>,
    /// SGD settings.
    pub train: TrainConfig,
    /// Initial pool size.
    pub initial_pool: usize,
    /// Scenario length in days.
    pub days: usize,
    /// Evaluate (and maybe update) every this many days.
    pub eval_every: usize,
    /// Epochs per update (full or fine-tune).
    pub update_epochs: usize,
}

impl ExperimentConfig {
    /// Small defaults that keep unit tests fast.
    pub fn fast() -> Self {
        ExperimentConfig {
            feature_widths: vec![32, 24],
            train: TrainConfig {
                batch: 32,
                max_epochs: 12,
                ..TrainConfig::default()
            },
            initial_pool: 400,
            days: 14,
            eval_every: 2,
            update_epochs: 8,
        }
    }

    /// Paper-shaped defaults (slower, used by the bench binaries). The
    /// learning rate is halved versus the test default: from-scratch runs
    /// at this width diverge occasionally at `lr = 0.1`.
    pub fn paper() -> Self {
        ExperimentConfig {
            feature_widths: vec![96, 64],
            train: TrainConfig {
                lr: 0.05,
                batch: 64,
                max_epochs: 25,
                ..TrainConfig::default()
            },
            initial_pool: 3000,
            days: 14,
            eval_every: 2,
            update_epochs: 15,
        }
    }
}

/// One sampled point of a drift experiment.
#[derive(Debug, Clone, Copy)]
pub struct DriftPoint {
    /// Day of the scenario.
    pub day: usize,
    /// Accuracy on a test set reflecting that day's distribution.
    pub metrics: EvalMetrics,
}

fn build_model<R: Rng + ?Sized>(
    cfg: &ExperimentConfig,
    input_dim: usize,
    classes: usize,
    rng: &mut R,
) -> Mlp {
    let mut dims = vec![input_dim];
    dims.extend_from_slice(&cfg.feature_widths);
    dims.push(classes);
    Mlp::new(&dims, cfg.feature_widths.len(), rng)
}

fn full_train<R: Rng + ?Sized>(
    cfg: &ExperimentConfig,
    epochs: usize,
    data: &LabeledDataset,
    rng: &mut R,
) -> Mlp {
    let mut model = build_model(cfg, data.input_dim(), data.num_classes(), rng);
    let trainer = Trainer::new(TrainConfig {
        max_epochs: epochs,
        ..cfg.train
    });
    trainer.fit(&mut model, data, None, 0, rng);
    model
}

fn fine_tune_in_place<R: Rng + ?Sized>(
    cfg: &ExperimentConfig,
    model: &mut Mlp,
    data: &LabeledDataset,
    rng: &mut R,
) {
    if data.num_classes() > model.num_classes() {
        model.widen_classes(data.num_classes(), rng);
    }
    let trainer = Trainer::new(TrainConfig {
        max_epochs: cfg.update_epochs,
        ..cfg.train
    });
    let split = model.split();
    trainer.fit(model, data, None, split, rng);
}

/// Fig 4(a): runs one strategy through the drift scenario, evaluating
/// every `eval_every` days. Day 0 is the Base measurement.
pub fn drift_experiment<R: Rng + ?Sized>(
    spec: DatasetSpec,
    cfg: &ExperimentConfig,
    strategy: UpdateStrategy,
    rng: &mut R,
) -> Vec<DriftPoint> {
    let mut scenario = DriftScenario::new(spec, cfg.initial_pool, rng);
    let mut model = full_train(cfg, cfg.train.max_epochs, &scenario.train_set(), rng);
    let mut points = vec![DriftPoint {
        day: 0,
        metrics: Trainer::evaluate(&model, &scenario.test_set(rng)),
    }];
    for day in 1..=cfg.days {
        scenario.advance_day(rng);
        if day % cfg.eval_every == 0 {
            match strategy {
                UpdateStrategy::Outdated => {}
                UpdateStrategy::FullTraining => {
                    // From scratch: needs at least the initial budget.
                    let epochs = cfg.train.max_epochs.max(cfg.update_epochs);
                    model = full_train(cfg, epochs, &scenario.train_set(), rng);
                }
                UpdateStrategy::FineTuning => {
                    fine_tune_in_place(cfg, &mut model, &scenario.train_set(), rng);
                }
            }
            let test = scenario.test_set(rng).widened_to(model.num_classes());
            points.push(DriftPoint {
                day,
                metrics: Trainer::evaluate(&model, &test),
            });
        }
    }
    points
}

/// Fig 4(b): fine-tuning accuracy as a function of how much data feeds
/// the update. Returns `(dataset size, top-1)` pairs.
pub fn dataset_size_sweep<R: Rng + ?Sized>(
    spec: DatasetSpec,
    cfg: &ExperimentConfig,
    sizes: &[usize],
    rng: &mut R,
) -> Vec<(usize, f64)> {
    let mut scenario = DriftScenario::new(spec, cfg.initial_pool, rng);
    let base = full_train(cfg, cfg.train.max_epochs, &scenario.train_set(), rng);
    for _ in 0..cfg.days {
        scenario.advance_day(rng);
    }
    let test = scenario.test_set(rng);
    sizes
        .iter()
        .map(|&n| {
            let mut model = base.clone();
            let n = n.min(scenario.pool_size()).max(1);
            let subset = scenario.recent_train_set(n);
            fine_tune_in_place(cfg, &mut model, &subset, rng);
            let t = test.widened_to(model.num_classes());
            (n, Trainer::evaluate(&model, &t).top1)
        })
        .collect()
}

/// Table 1: trains generations `M0..=M_generations`, labels a fixed photo
/// set with `M0`, and reports the cumulative fraction of initially wrong
/// labels each later generation fixes.
///
/// Label fixes in the paper come from models *improving* (more data,
/// regular retraining), not from the world moving away from the archived
/// photos, so this experiment runs with gentle drift (a quarter of the
/// spec's rate) and gives `M0` a smaller training budget than its
/// successors — mirroring the paper's 937K-image `M0` versus the grown
/// pools later models see.
pub fn label_fix_experiment<R: Rng + ?Sized>(
    spec: DatasetSpec,
    cfg: &ExperimentConfig,
    generations: usize,
    rng: &mut R,
) -> Vec<f64> {
    let spec = DatasetSpec {
        daily_drift: spec.daily_drift * 0.25,
        ..spec
    };
    let mut scenario = DriftScenario::new(spec, cfg.initial_pool, rng);
    let m0 = full_train(
        cfg,
        cfg.update_epochs.min(cfg.train.max_epochs),
        &scenario.train_set(),
        rng,
    );

    // The archive to (re)label: *held-out* photos, like the paper's 50K
    // ImageNet evaluation set — models never train on them, so their
    // labels are genuinely fallible.
    let archive_size = cfg.initial_pool / 2;
    let archive: Vec<(usize, tensor::Tensor)> = (0..archive_size)
        .map(|i| {
            let class = i % scenario.initial_classes();
            (class, scenario.universe().sample(class, rng))
        })
        .collect();

    // Label the archive with M0.
    let db = crate::labeldb::LabelDb::new();
    for (i, (_, x)) in archive.iter().enumerate() {
        let logits = m0.forward(&x.reshape(&[1, x.len()]).expect("row"));
        db.put(PhotoId(i as u64), logits.argmax(), 0);
    }
    let snapshot = db.snapshot();
    let truth = |id: PhotoId| archive[id.0 as usize].0;

    let mut fractions = vec![0.0]; // M0 fixes nothing by definition.
    for gen in 1..=generations {
        // Two weeks of growth per generation, then full retraining with
        // the full epoch budget on the larger pool.
        for _ in 0..cfg.days {
            scenario.advance_day(rng);
        }
        let epochs = cfg.train.max_epochs.max(cfg.update_epochs);
        let model = full_train(cfg, epochs, &scenario.train_set(), rng);
        let relabels: Vec<(PhotoId, usize)> = archive
            .iter()
            .enumerate()
            .map(|(i, (_, x))| {
                let logits = model.forward(&x.reshape(&[1, x.len()]).expect("row"));
                (PhotoId(i as u64), logits.argmax())
            })
            .collect();
        db.apply_relabels(relabels, gen as u64);
        fractions.push(db.fixed_fraction_since(&snapshot, truth));
    }
    fractions
}

/// One Table 2 row: Base / Outdated / NDPipe / Full top-1 & top-5 for a
/// given model capacity (feature widths) on a given dataset.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Accuracy right after initial training.
    pub base: EvalMetrics,
    /// Accuracy after two weeks with no updates.
    pub outdated: EvalMetrics,
    /// Accuracy after two weeks with NDPipe's distributed fine-tuning.
    pub ndpipe: EvalMetrics,
    /// Accuracy after two weeks with full retraining.
    pub full: EvalMetrics,
}

/// Runs the Table 2 protocol for one (dataset, model-capacity) cell.
///
/// NDPipe's entry fine-tunes with real FT-DMP across `n_stores`
/// PipeStores (not a shortcut through single-node fine-tuning).
pub fn table2_row<R: Rng + ?Sized>(
    spec: DatasetSpec,
    cfg: &ExperimentConfig,
    n_stores: usize,
    rng: &mut R,
) -> Table2Row {
    let mut scenario = DriftScenario::new(spec, cfg.initial_pool, rng);
    let base_model = full_train(cfg, cfg.train.max_epochs, &scenario.train_set(), rng);
    let base = Trainer::evaluate(&base_model, &scenario.test_set(rng));

    for _ in 0..cfg.days {
        scenario.advance_day(rng);
    }
    let test = scenario.test_set(rng);
    let outdated = Trainer::evaluate(&base_model, &test.widened_to(base_model.num_classes()));

    // NDPipe: FT-DMP across stores over the evolved pool.
    let mut ndpipe_model = base_model.clone();
    if scenario.current_classes() > ndpipe_model.num_classes() {
        ndpipe_model.widen_classes(scenario.current_classes(), rng);
    }
    let mut tuner = Tuner::new(ndpipe_model, cfg.train);
    // Shuffle before sharding: sub-datasets across stores and pipeline
    // runs must have similar distributions (§5.2 condition iii) — the
    // raw pool is in upload order, so its tail is all recent drift.
    let mut stores: Vec<PipeStore> = scenario
        .train_set()
        .shuffled(rng)
        .shards(n_stores)
        .into_iter()
        .enumerate()
        .map(|(i, s)| PipeStore::new(i, s))
        .collect();
    ftdmp_fine_tune(
        &mut tuner,
        &mut stores,
        &FtdmpConfig {
            n_run: 3,
            // Each pipeline run trains its sub-dataset to the full budget
            // (§6.3 stops on convergence, not on an epoch quota).
            epochs_per_run: cfg.update_epochs,
            train: cfg.train,
            ..FtdmpConfig::default()
        },
        rng,
    )
    .expect("experiment shards are always valid FT-DMP jobs");
    let ndpipe = Trainer::evaluate(tuner.model(), &test);

    let full_epochs = cfg.train.max_epochs.max(cfg.update_epochs * 2);
    let full_model = full_train(cfg, full_epochs, &scenario.train_set(), rng);
    let full = Trainer::evaluate(&full_model, &test);

    Table2Row {
        base,
        outdated,
        ndpipe,
        full,
    }
}

/// Fig 17: accuracy per `N_run`. Every run trains its sub-dataset with
/// the full `epochs_per_run` budget (the paper stops each run on
/// convergence; pipelining saves wall time through overlap, not through
/// a smaller training budget), so the only accuracy effect left is
/// inter-run forgetting.
pub fn pipelined_accuracy<R: Rng + ?Sized>(
    spec: DatasetSpec,
    cfg: &ExperimentConfig,
    n_stores: usize,
    epochs_per_run: usize,
    n_runs: &[usize],
    rng: &mut R,
) -> Vec<(usize, f64)> {
    let mut scenario = DriftScenario::new(spec, cfg.initial_pool, rng);
    let base = full_train(cfg, cfg.train.max_epochs, &scenario.train_set(), rng);
    for _ in 0..cfg.days {
        scenario.advance_day(rng);
    }
    let test = scenario.test_set(rng);
    n_runs
        .iter()
        .map(|&n_run| {
            let mut model = base.clone();
            if scenario.current_classes() > model.num_classes() {
                model.widen_classes(scenario.current_classes(), rng);
            }
            let mut tuner = Tuner::new(model, cfg.train);
            // Similar-distribution sub-datasets (§5.2 condition iii).
            let mut stores: Vec<PipeStore> = scenario
                .train_set()
                .shuffled(rng)
                .shards(n_stores)
                .into_iter()
                .enumerate()
                .map(|(i, s)| PipeStore::new(i, s))
                .collect();
            ftdmp_fine_tune(
                &mut tuner,
                &mut stores,
                &FtdmpConfig {
                    n_run,
                    epochs_per_run: epochs_per_run.max(1),
                    train: cfg.train,
                    ..FtdmpConfig::default()
                },
                rng,
            )
            .expect("experiment shards are always valid FT-DMP jobs");
            (n_run, Trainer::evaluate(tuner.model(), &test).top1)
        })
        .collect()
}

/// Widens a dataset's label space to match a model that saw fewer or
/// more classes (test sets may contain emerging classes the outdated
/// model cannot name).
trait WidenTo {
    fn widened_to(&self, classes: usize) -> LabeledDataset;
}

impl WidenTo for LabeledDataset {
    fn widened_to(&self, classes: usize) -> LabeledDataset {
        if classes >= self.num_classes() {
            self.widened(classes)
        } else {
            // The model is narrower than the test set: keep the test set
            // as-is; out-of-range predictions simply never match.
            self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::fast();
        c.initial_pool = 300;
        c.days = 8;
        c.update_epochs = 6;
        c.train.max_epochs = 10;
        c
    }

    #[test]
    fn outdated_model_decays_and_updates_help() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = cfg();
        let outdated =
            drift_experiment(DatasetSpec::tiny(), &c, UpdateStrategy::Outdated, &mut rng);
        let tuned = drift_experiment(
            DatasetSpec::tiny(),
            &c,
            UpdateStrategy::FineTuning,
            &mut rng,
        );
        let base = outdated[0].metrics.top1;
        let end_outdated = outdated.last().unwrap().metrics.top1;
        let end_tuned = tuned.last().unwrap().metrics.top1;
        assert!(
            end_outdated < base,
            "outdated should decay: {base:.3} -> {end_outdated:.3}"
        );
        assert!(
            end_tuned > end_outdated,
            "fine-tuning {end_tuned:.3} should beat outdated {end_outdated:.3}"
        );
    }

    #[test]
    fn full_training_at_least_matches_fine_tuning() {
        let mut rng = StdRng::seed_from_u64(92);
        let c = cfg();
        let full = drift_experiment(
            DatasetSpec::tiny(),
            &c,
            UpdateStrategy::FullTraining,
            &mut rng,
        );
        let tuned = drift_experiment(
            DatasetSpec::tiny(),
            &c,
            UpdateStrategy::FineTuning,
            &mut rng,
        );
        let end_full = full.last().unwrap().metrics.top1;
        let end_tuned = tuned.last().unwrap().metrics.top1;
        assert!(
            end_full > end_tuned - 0.1,
            "full {end_full:.3} vs tuned {end_tuned:.3}"
        );
    }

    #[test]
    fn bigger_fine_tuning_sets_help_fig4b() {
        let mut rng = StdRng::seed_from_u64(93);
        let c = cfg();
        let sweep = dataset_size_sweep(DatasetSpec::tiny(), &c, &[20, 80, 300], &mut rng);
        assert_eq!(sweep.len(), 3);
        let small = sweep[0].1;
        let large = sweep[2].1;
        assert!(
            large >= small - 0.05,
            "more data should not hurt: {small:.3} -> {large:.3}"
        );
    }

    #[test]
    fn label_fixes_grow_with_generations_table1() {
        let mut rng = StdRng::seed_from_u64(94);
        let mut c = cfg();
        c.days = 4;
        let fixes = label_fix_experiment(DatasetSpec::tiny(), &c, 3, &mut rng);
        assert_eq!(fixes.len(), 4);
        assert_eq!(fixes[0], 0.0);
        // Non-trivial and (weakly) growing.
        assert!(fixes[1] > 0.0, "{fixes:?}");
        assert!(fixes[3] >= fixes[1] - 0.03, "{fixes:?}");
    }

    #[test]
    fn table2_ordering_holds() {
        let mut rng = StdRng::seed_from_u64(95);
        let c = cfg();
        let row = table2_row(DatasetSpec::tiny(), &c, 3, &mut rng);
        // Base beats Outdated; NDPipe recovers most of the gap.
        assert!(row.base.top1 > row.outdated.top1, "{row:?}");
        assert!(row.ndpipe.top1 > row.outdated.top1, "{row:?}");
        assert!(row.full.top1 >= row.ndpipe.top1 - 0.08, "{row:?}");
        // Top-5 dominates top-1 everywhere.
        assert!(row.base.top5 >= row.base.top1);
    }

    #[test]
    fn pipelined_runs_cost_little_accuracy_fig17() {
        let mut rng = StdRng::seed_from_u64(96);
        let c = cfg();
        let points = pipelined_accuracy(DatasetSpec::tiny(), &c, 4, 12, &[1, 2, 3], &mut rng);
        assert_eq!(points.len(), 3);
        let a1 = points[0].1;
        let a3 = points[2].1;
        assert!((a1 - a3).abs() < 0.1, "N_run 1 {a1:.3} vs 3 {a3:.3}");
    }
}
