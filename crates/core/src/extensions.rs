//! §7.1 extensions: NDPipe beyond photos.
//!
//! The paper's discussion sketches how the same near-data architecture
//! serves other media: extract a compact representation *near the data*
//! (key frames, spectrograms, embeddings) and ship only that to the
//! Tuner. These modules implement the three sketches:
//!
//! - [`video`] — key-frame extraction by inter-frame change, per-frame
//!   CNN features, and a mean summary vector for the whole clip,
//! - [`audio`] — a real short-time Fourier transform (Hann window, naive
//!   DFT) turning waveforms into spectrogram "images",
//! - [`document`] — hashed bag-of-n-grams embeddings turning text into
//!   fixed-width vectors for Tuner-side classification.

pub mod audio;
pub mod document;
pub mod video;
