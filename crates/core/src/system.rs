//! The end-to-end NDPipe photo-storage system (Fig 7).
//!
//! Ties every component together over a synthetic drifting photo pool:
//! photos are sharded across PipeStores, uploads get online-inference
//! labels into the [`LabelDb`], continuous fine-tuning runs FT-DMP across
//! the stores, updated models flow back as Check-N-Run deltas, and
//! offline inference refreshes stale labels near the data.

use crate::ftdmp::{ftdmp_fine_tune, FtdmpConfig, FtdmpReport};
use crate::labeldb::{LabelDb, RelabelStats};
use crate::online::OnlineInferenceServer;
use crate::pipestore::PipeStore;
use crate::tuner::Tuner;
use dnn::{EvalMetrics, Mlp, TrainConfig, Trainer};
use ndpipe_data::photo::{preprocessed_binary, PhotoFactory};
use ndpipe_data::{DatasetSpec, DriftScenario, LabeledDataset, PhotoId};
use rand::Rng;

/// Deployment parameters of an [`NdPipeSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of PipeStores.
    pub n_pipestores: usize,
    /// Hidden widths of the weight-freeze feature extractor.
    pub feature_widths: Vec<usize>,
    /// SGD hyper-parameters for both initial training and fine-tuning.
    pub train: TrainConfig,
    /// Initial photo-pool size.
    pub initial_pool: usize,
    /// Epochs of initial (full) training for the bootstrap model.
    pub initial_epochs: usize,
    /// FT-DMP pipeline depth.
    pub n_run: usize,
    /// Tuner epochs per pipeline run when fine-tuning.
    pub epochs_per_run: usize,
    /// Physical photo blobs to materialize per store (the functional
    /// NPE path; labels cover the whole pool regardless).
    pub physical_photos_per_store: usize,
    /// Mean raw-photo blob size, bytes (small in tests).
    pub photo_bytes: usize,
    /// Preprocessed-binary size, bytes.
    pub preproc_bytes: usize,
}

impl SystemConfig {
    /// A configuration small enough for unit tests and doctests.
    pub fn small_test() -> Self {
        SystemConfig {
            n_pipestores: 3,
            feature_widths: vec![24, 16],
            train: TrainConfig {
                batch: 16,
                max_epochs: 10,
                ..TrainConfig::default()
            },
            initial_pool: 240,
            initial_epochs: 10,
            n_run: 2,
            epochs_per_run: 5,
            physical_photos_per_store: 4,
            photo_bytes: 2048,
            preproc_bytes: 1024,
        }
    }

    /// The laptop-scale equivalent of the paper's deployment: ten
    /// PipeStores, a deeper extractor, a bigger pool.
    pub fn paper_mini() -> Self {
        SystemConfig {
            n_pipestores: 10,
            feature_widths: vec![96, 64],
            train: TrainConfig {
                batch: 64,
                max_epochs: 20,
                ..TrainConfig::default()
            },
            initial_pool: 4000,
            initial_epochs: 20,
            n_run: 3,
            epochs_per_run: 8,
            physical_photos_per_store: 8,
            photo_bytes: 64 * 1024,
            preproc_bytes: 16 * 1024,
        }
    }
}

/// Outcome of one continuous-fine-tuning round.
#[derive(Debug, Clone)]
pub struct FineTuneOutcome {
    /// FT-DMP transport/loss report.
    pub report: FtdmpReport,
    /// Accuracy on a fresh test set drawn after the update.
    pub final_accuracy: EvalMetrics,
}

/// A complete NDPipe deployment over a synthetic drifting photo pool.
#[derive(Debug)]
pub struct NdPipeSystem {
    config: SystemConfig,
    scenario: DriftScenario,
    stores: Vec<PipeStore>,
    /// Pool indices assigned to each store (aligned with `stores`).
    assignments: Vec<Vec<usize>>,
    tuner: Tuner,
    labeldb: LabelDb,
    factory: PhotoFactory,
    /// The Fig 7 inference server: labels uploads in dynamic batches and
    /// produces the preprocessed binaries PipeStores archive (§5.4).
    online: OnlineInferenceServer,
}

impl NdPipeSystem {
    /// Boots a deployment: builds the drifting pool, fully trains the
    /// initial ("Base") model on it, shards photos across PipeStores,
    /// materializes some physical blobs, and labels everything with
    /// online inference.
    pub fn bootstrap<R: Rng + ?Sized>(
        config: SystemConfig,
        spec: DatasetSpec,
        rng: &mut R,
    ) -> Self {
        let scenario = DriftScenario::new(spec, config.initial_pool, rng);
        // Model: input → feature widths → classes; classifier = last layer.
        let mut dims = vec![spec.input_dim];
        dims.extend_from_slice(&config.feature_widths);
        dims.push(scenario.current_classes());
        let split = config.feature_widths.len();
        let mut model = Mlp::new(&dims, split, rng);

        // Initial full training (the paper's Base model).
        let trainer = Trainer::new(TrainConfig {
            max_epochs: config.initial_epochs,
            ..config.train
        });
        let train_set = scenario.train_set();
        trainer.fit(&mut model, &train_set, None, 0, rng);

        let tuner = Tuner::new(model, config.train);
        let online = OnlineInferenceServer::new(tuner.model().clone(), 8, config.preproc_bytes);
        let mut system = NdPipeSystem {
            stores: Vec::new(),
            assignments: Vec::new(),
            labeldb: LabelDb::new(),
            factory: PhotoFactory::new(config.photo_bytes),
            config,
            scenario,
            tuner,
            online,
        };
        system.reshard(rng);
        system.materialize_photos(rng);
        system.label_everything();
        system
    }

    /// The current master model.
    pub fn model(&self) -> &Mlp {
        self.tuner.model()
    }

    /// The Tuner.
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// The PipeStore fleet.
    pub fn stores(&self) -> &[PipeStore] {
        &self.stores
    }

    /// The label database.
    pub fn labeldb(&self) -> &LabelDb {
        &self.labeldb
    }

    /// A cluster-wide telemetry view of this (in-process) deployment:
    /// the process-global registry merged with every PipeStore's local
    /// registry, each store's samples tagged `store=<id>`. The socket
    /// deployment gets the same view via
    /// [`crate::rpc::Cluster::scrape_metrics`].
    pub fn metrics_snapshot(&self) -> telemetry::Snapshot {
        let mut merged = telemetry::global().snapshot();
        for store in &self.stores {
            let tagged = store
                .metrics()
                .snapshot()
                .with_label("store", &store.id().to_string());
            merged.merge_from(&tagged);
        }
        merged
    }

    /// The underlying drift scenario (read access).
    pub fn scenario(&self) -> &DriftScenario {
        &self.scenario
    }

    /// Splits the current pool across PipeStores (round-robin by upload
    /// order, then shuffled within each shard so pipeline runs see
    /// similar distributions — §5.2 condition iii) and installs the
    /// current model on each store.
    fn reshard<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        use rand::seq::SliceRandom;
        let n = self.config.n_pipestores;
        let classes = self.scenario.current_classes();
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..self.scenario.pool_size() {
            assignments[i % n].push(i);
        }
        for a in &mut assignments {
            a.shuffle(rng);
        }
        let mut stores = Vec::with_capacity(n);
        for (sid, idx) in assignments.iter().enumerate() {
            let rows: Vec<tensor::Tensor> = idx
                .iter()
                .map(|&i| self.scenario.pool_item(i).1.clone())
                .collect();
            let labels: Vec<usize> = idx.iter().map(|&i| self.scenario.pool_item(i).0).collect();
            let shard = LabeledDataset::new(rows, labels, classes);
            let mut store = PipeStore::new(sid, shard);
            store.install_model(self.tuner.model().clone());
            // The physical photo archive stays on its server.
            if let Some(old) = self.stores.get_mut(sid) {
                store.adopt_photos(old.take_photos());
            }
            stores.push(store);
        }
        self.stores = stores;
        self.assignments = assignments;
    }

    /// Materializes a few physical photo blobs per store so the real
    /// compression/decompression path is exercised.
    fn materialize_photos<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let per_store = self.config.physical_photos_per_store;
        let preproc = self.config.preproc_bytes;
        for store in &mut self.stores {
            for k in 0..per_store.min(store.shard_len()) {
                let class = store.shard().labels()[k];
                let photo = self.factory.make(class, self.scenario.day(), rng);
                let bin = preprocessed_binary(preproc, rng);
                store.store_photo(photo, bin);
            }
        }
    }

    /// Online-inference labels for every pool item under the current
    /// model (used at bootstrap; uploads are labeled as they arrive).
    fn label_everything(&mut self) {
        let version = self.tuner.version();
        let model = self.tuner.model();
        for i in 0..self.scenario.pool_size() {
            let (_, x) = self.scenario.pool_item(i);
            let logits = model.forward(&x.reshape(&[1, x.len()]).expect("row reshape"));
            self.labeldb
                .put(PhotoId(i as u64), logits.argmax(), version);
        }
    }

    /// Advances the scenario one day: new uploads flow through the
    /// online-inference server (dynamic batching), which labels them and
    /// emits the preprocessed binaries their PipeStore archives — the
    /// full Fig 7 upload path.
    pub fn advance_day<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let before = self.scenario.pool_size();
        self.scenario.advance_day(rng);
        let version = self.tuner.version();
        let mut completed = Vec::new();
        for i in before..self.scenario.pool_size() {
            let (class, x) = self.scenario.pool_item(i);
            let features = x.clone();
            let mut photo = self.factory.make(class, self.scenario.day(), rng);
            // The pool index is the service-wide photo id.
            photo.id = PhotoId(i as u64);
            completed.extend(self.online.submit(photo, features, rng));
        }
        completed.extend(self.online.flush(rng));
        let n = self.stores.len();
        let cap = self.config.physical_photos_per_store * 4;
        for result in completed {
            // Out-of-vocabulary classes get the model's best guess — the
            // outdated-label problem in action.
            self.labeldb.put(result.photo.id, result.label, version);
            // §5.4 offload: the preprocessed binary ships with the photo
            // to its PipeStore (bounded per store to keep tests light).
            let sid = (result.photo.id.0 as usize) % n;
            if self.stores[sid].photo_count() < cap {
                self.stores[sid].store_photo(result.photo, result.preprocessed);
            }
        }
        self.reshard(rng);
    }

    /// Online-inference server statistics (batches, mean batch size).
    pub fn online_stats(&self) -> crate::online::OnlineStats {
        self.online.stats()
    }

    /// Runs one FT-DMP continuous-fine-tuning round over the current
    /// pool: widens the classifier if new categories emerged, fine-tunes
    /// across the PipeStores, and redistributes the model.
    pub fn fine_tune<R: Rng + ?Sized>(&mut self, rng: &mut R) -> FineTuneOutcome {
        let classes = self.scenario.current_classes();
        if classes > self.tuner.model().num_classes() {
            self.tuner.widen_classes(classes, rng);
            self.reshard(rng);
        }
        let cfg = FtdmpConfig {
            n_run: self.config.n_run,
            epochs_per_run: self.config.epochs_per_run,
            train: self.config.train,
            ..FtdmpConfig::default()
        };
        let report = ftdmp_fine_tune(&mut self.tuner, &mut self.stores, &cfg, rng)
            .expect("system resharding keeps every FT-DMP job valid");
        // The inference server serves uploads with the fresh model.
        self.online.update_model(self.tuner.model().clone());
        let test = self.scenario.test_set(rng);
        let final_accuracy = Trainer::evaluate(self.tuner.model(), &test);
        FineTuneOutcome {
            report,
            final_accuracy,
        }
    }

    /// Accuracy of the current model on a fresh test set.
    pub fn evaluate<R: Rng + ?Sized>(&self, rng: &mut R) -> EvalMetrics {
        let test = self.scenario.test_set(rng);
        Trainer::evaluate(self.tuner.model(), &test)
    }

    /// Near-data offline inference: every PipeStore relabels its shard
    /// with its local model replica; only `(photo id, label)` pairs flow
    /// back into the label database.
    pub fn offline_relabel(&mut self) -> RelabelStats {
        let version = self.tuner.version();
        let mut all = Vec::new();
        for (store, idx) in self.stores.iter().zip(&self.assignments) {
            let model = store.model().expect("model installed at reshard");
            let logits = model.forward(store.shard().features());
            let cols = logits.dims()[1];
            for (row, &pool_i) in idx.iter().enumerate() {
                let slice = &logits.data()[row * cols..(row + 1) * cols];
                let mut best = 0;
                for (c, &v) in slice.iter().enumerate() {
                    if v > slice[best] {
                        best = c;
                    }
                }
                all.push((PhotoId(pool_i as u64), best));
            }
        }
        self.labeldb.apply_relabels(all, version)
    }

    /// Label-database accuracy against ground truth.
    pub fn label_accuracy(&self) -> f64 {
        self.labeldb
            .accuracy_against(|id| self.scenario.pool_item(id.0 as usize).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn boot(seed: u64) -> (NdPipeSystem, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys =
            NdPipeSystem::bootstrap(SystemConfig::small_test(), DatasetSpec::tiny(), &mut rng);
        (sys, rng)
    }

    #[test]
    fn bootstrap_labels_every_photo() {
        let (sys, _) = boot(81);
        assert_eq!(sys.labeldb().len(), sys.scenario().pool_size());
        // The Base model labels far better than chance (10 classes).
        assert!(sys.label_accuracy() > 0.4, "{}", sys.label_accuracy());
    }

    #[test]
    fn shards_cover_the_pool() {
        let (sys, _) = boot(82);
        let total: usize = sys.stores().iter().map(|s| s.shard_len()).sum();
        assert_eq!(total, sys.scenario().pool_size());
        assert_eq!(sys.stores().len(), 3);
        // Physical photos exist with compressed sidecars.
        for s in sys.stores() {
            assert!(s.photo_count() > 0);
            assert!(s.sidecar_overhead().unwrap() < 1.0);
        }
    }

    #[test]
    fn days_add_photos_and_eventually_classes() {
        let (mut sys, mut rng) = boot(83);
        let pool0 = sys.scenario().pool_size();
        for _ in 0..20 {
            sys.advance_day(&mut rng);
        }
        assert!(sys.scenario().pool_size() > pool0);
        assert_eq!(sys.labeldb().len(), sys.scenario().pool_size());
        assert!(sys.scenario().current_classes() >= 10);
    }

    #[test]
    fn fine_tune_recovers_drift_losses() {
        let (mut sys, mut rng) = boot(84);
        for _ in 0..14 {
            sys.advance_day(&mut rng);
        }
        let stale = sys.evaluate(&mut rng);
        let outcome = sys.fine_tune(&mut rng);
        // Fresh test draws carry ±2-3pp sampling noise at this size, so
        // require "no worse than noise" rather than strict improvement.
        assert!(
            outcome.final_accuracy.top1 >= stale.top1 - 0.03,
            "stale {:.3} vs tuned {:.3}",
            stale.top1,
            outcome.final_accuracy.top1
        );
        assert!(outcome.report.examples > 0);
    }

    #[test]
    fn offline_relabel_fixes_labels_after_update() {
        let (mut sys, mut rng) = boot(85);
        for _ in 0..14 {
            sys.advance_day(&mut rng);
        }
        let acc_before = sys.label_accuracy();
        sys.fine_tune(&mut rng);
        let stats = sys.offline_relabel();
        let acc_after = sys.label_accuracy();
        assert_eq!(stats.examined, sys.scenario().pool_size());
        assert!(
            acc_after >= acc_before,
            "label accuracy {acc_before:.3} -> {acc_after:.3}"
        );
    }

    #[test]
    fn uploads_flow_through_the_online_server() {
        let (mut sys, mut rng) = boot(87);
        assert_eq!(sys.online_stats().processed, 0);
        let photos_before: usize = sys.stores().iter().map(|s| s.photo_count()).sum();
        for _ in 0..5 {
            sys.advance_day(&mut rng);
        }
        let stats = sys.online_stats();
        assert!(stats.processed > 0, "no uploads served");
        assert!(stats.batches > 0);
        assert!(stats.mean_batch() >= 1.0);
        // Uploads landed physical photos + sidecars on stores.
        let photos_after: usize = sys.stores().iter().map(|s| s.photo_count()).sum();
        assert!(photos_after > photos_before, "no photos archived");
        // Photos survive the daily reshard.
        sys.advance_day(&mut rng);
        let photos_final: usize = sys.stores().iter().map(|s| s.photo_count()).sum();
        assert!(photos_final >= photos_after);
    }

    #[test]
    fn doctest_shape_holds() {
        let (mut sys, mut rng) = boot(86);
        let outcome = sys.fine_tune(&mut rng);
        assert!(outcome.final_accuracy.top1 > 0.0);
    }
}
