//! APO: Automated model Partitioning and Organization (§5.3, Algorithm 1).
//!
//! APO answers the two deployment questions of NDPipe: *where to cut the
//! model* (`FindBestPoint`) and *how many PipeStores to use*
//! (Algorithm 1). The partition choice trades PipeStore compute against
//! activation-transfer volume; the store count balances the Store- and
//! Tuner-stages of the pipeline so neither idles (minimal `T_diff`).

use cluster::training::{training_report, TrainSetup};
use dnn::ModelProfile;
use hw::{InstanceSpec, LinkSpec};

/// Inputs of Algorithm 1.
#[derive(Debug, Clone)]
pub struct ApoInput {
    /// DNN model architecture `M`.
    pub model: ModelProfile,
    /// PipeStore hardware (provides `F_P`).
    pub store: InstanceSpec,
    /// Network bandwidth `BW` between PipeStores and Tuner.
    pub link: LinkSpec,
    /// Maximum number of PipeStores to consider (`N_max_ps`).
    pub max_pipestores: usize,
    /// Training-set size, images.
    pub images: u64,
    /// Head-training epochs.
    pub epochs: usize,
    /// Training batch size.
    pub batch: usize,
    /// Pipeline depth `N_run`.
    pub n_run: usize,
}

impl ApoInput {
    /// The paper's deployment defaults for a given model.
    pub fn paper_default(model: ModelProfile) -> Self {
        ApoInput {
            model,
            store: InstanceSpec::pipestore(),
            link: LinkSpec::ethernet_gbps(10.0),
            max_pipestores: 20,
            images: 1_200_000,
            epochs: 20,
            batch: 512,
            n_run: 3,
        }
    }
}

/// One candidate organization evaluated by APO.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Number of PipeStores.
    pub n_pipestores: usize,
    /// Best partition point for this store count.
    pub partition: usize,
    /// Store-stage time `T_ps`, seconds.
    pub t_ps: f64,
    /// Tuner-stage time `T_tuner`, seconds.
    pub t_tuner: f64,
    /// `|T_ps − T_tuner|`.
    pub t_diff: f64,
    /// End-to-end training time, seconds.
    pub total_secs: f64,
}

/// Output of Algorithm 1: the chosen organization plus the full sweep.
#[derive(Debug, Clone)]
pub struct ApoResult {
    /// The best number of PipeStores (`N_best_ps`).
    pub best: Candidate,
    /// Every candidate considered, indexed by store count − 1.
    pub sweep: Vec<Candidate>,
}

/// `FindBestPoint` (§5.3): for a fixed store count, evaluates every
/// partitionable point — stage boundaries only, never inside residual
/// blocks, with the trainable tail pinned to the Tuner to avoid weight
/// synchronization — and returns the point with the shortest estimated
/// training time.
///
/// # Panics
///
/// Panics if `n_pipestores` is zero.
pub fn find_best_point(input: &ApoInput, n_pipestores: usize) -> Candidate {
    assert!(n_pipestores > 0, "need at least one PipeStore");
    let first_trainable = input.model.first_trainable_stage();
    let mut best: Option<Candidate> = None;
    // Partition points 0..=first_trainable keep every trainable stage on
    // the Tuner (the paper's no-sync constraint).
    for k in 0..=first_trainable {
        let setup = TrainSetup {
            model: input.model.clone(),
            images: input.images,
            epochs: input.epochs,
            batch: input.batch,
            n_pipestores,
            partition: k,
            n_run: input.n_run,
            link: input.link.clone(),
            store: input.store.clone(),
        };
        let r = training_report(&setup);
        let cand = Candidate {
            n_pipestores,
            partition: k,
            t_ps: r.store_stage_secs + r.transfer_secs,
            t_tuner: r.tuner_stage_secs + r.weight_sync_secs,
            t_diff: r.stage_imbalance(),
            total_secs: r.total_secs,
        };
        let better = match &best {
            None => true,
            Some(b) => cand.total_secs < b.total_secs,
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("at least one partition point exists")
}

/// Algorithm 1: sweeps `1..=N_max_ps` PipeStores, calling
/// [`find_best_point`] for each, and returns the organization whose
/// pipeline stages are most balanced (minimal `T_diff`).
pub fn best_organization(input: &ApoInput) -> ApoResult {
    assert!(input.max_pipestores > 0, "need at least one PipeStore");
    let sweep: Vec<Candidate> = (1..=input.max_pipestores)
        .map(|n| find_best_point(input, n))
        .collect();
    let best = sweep
        .iter()
        .min_by(|a, b| a.t_diff.partial_cmp(&b.t_diff).expect("finite times"))
        .expect("non-empty sweep")
        .clone();
    ApoResult { best, sweep }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_point_for_resnet50_is_the_deep_cut() {
        // Fig 9: +Conv5 wins for ResNet50 on 10 Gbps.
        let input = ApoInput::paper_default(ModelProfile::resnet50());
        let c = find_best_point(&input, 4);
        assert_eq!(c.partition, 5, "{c:?}");
    }

    #[test]
    fn best_point_never_offloads_trainable_stages() {
        for model in ModelProfile::zoo() {
            let first_trainable = model.first_trainable_stage();
            let input = ApoInput::paper_default(model);
            for n in [1, 8] {
                let c = find_best_point(&input, n);
                assert!(c.partition <= first_trainable);
            }
        }
    }

    #[test]
    fn algorithm1_balances_the_pipeline() {
        // Fig 11: ResNet50 balances around 8 PipeStores; T_diff at the
        // chosen point is (near) the sweep minimum by construction, and
        // the training-time curve flattens beyond it.
        let input = ApoInput::paper_default(ModelProfile::resnet50());
        let result = best_organization(&input);
        let n = result.best.n_pipestores;
        assert!((4..=14).contains(&n), "APO chose {n}");
        // Beyond the balance point, adding stores barely helps (≤10 %).
        let t_best = result.sweep[n - 1].total_secs;
        let t_max = result.sweep.last().unwrap().total_secs;
        assert!(
            (t_best - t_max) / t_best < 0.35,
            "best {t_best}s vs max {t_max}s"
        );
    }

    #[test]
    fn heavier_models_want_more_stores() {
        let r50 = best_organization(&ApoInput::paper_default(ModelProfile::resnet50()));
        let rx = best_organization(&ApoInput::paper_default(ModelProfile::resnext101()));
        assert!(
            rx.best.n_pipestores >= r50.best.n_pipestores,
            "resnext {} vs resnet {}",
            rx.best.n_pipestores,
            r50.best.n_pipestores
        );
    }

    #[test]
    fn sweep_is_complete_and_ordered() {
        let input = ApoInput {
            max_pipestores: 6,
            ..ApoInput::paper_default(ModelProfile::resnet50())
        };
        let result = best_organization(&input);
        assert_eq!(result.sweep.len(), 6);
        for (i, c) in result.sweep.iter().enumerate() {
            assert_eq!(c.n_pipestores, i + 1);
        }
        // Store-stage time decreases monotonically with more stores.
        for w in result.sweep.windows(2) {
            assert!(w[1].t_ps <= w[0].t_ps + 1e-9);
        }
    }

    #[test]
    fn slow_links_push_the_cut_deeper_or_equal() {
        // On a 1 Gbps link, transfer dominates; the best cut should be at
        // least as deep as on 40 Gbps.
        let mut slow = ApoInput::paper_default(ModelProfile::inception_v3());
        slow.link = LinkSpec::ethernet_gbps(1.0);
        let mut fast = slow.clone();
        fast.link = LinkSpec::ethernet_gbps(40.0);
        let c_slow = find_best_point(&slow, 4);
        let c_fast = find_best_point(&fast, 4);
        assert!(c_slow.partition >= c_fast.partition);
    }
}
