//! APO: Automated model Partitioning and Organization (§5.3, Algorithm 1).
//!
//! APO answers the two deployment questions of NDPipe: *where to cut the
//! model* (`FindBestPoint`) and *how many PipeStores to use*
//! (Algorithm 1). The partition choice trades PipeStore compute against
//! activation-transfer volume; the store count balances the Store- and
//! Tuner-stages of the pipeline so neither idles (minimal `T_diff`).

use cluster::training::{training_report, TrainSetup};
use dnn::ModelProfile;
use hw::{InstanceSpec, LinkSpec};
use simkit::{Resource, SimTime};

/// Inputs of Algorithm 1.
#[derive(Debug, Clone)]
pub struct ApoInput {
    /// DNN model architecture `M`.
    pub model: ModelProfile,
    /// PipeStore hardware (provides `F_P`).
    pub store: InstanceSpec,
    /// Network bandwidth `BW` between PipeStores and Tuner.
    pub link: LinkSpec,
    /// Maximum number of PipeStores to consider (`N_max_ps`).
    pub max_pipestores: usize,
    /// Training-set size, images.
    pub images: u64,
    /// Head-training epochs.
    pub epochs: usize,
    /// Training batch size.
    pub batch: usize,
    /// Pipeline depth `N_run`.
    pub n_run: usize,
}

impl ApoInput {
    /// The paper's deployment defaults for a given model.
    pub fn paper_default(model: ModelProfile) -> Self {
        ApoInput {
            model,
            store: InstanceSpec::pipestore(),
            link: LinkSpec::ethernet_gbps(10.0),
            max_pipestores: 20,
            images: 1_200_000,
            epochs: 20,
            batch: 512,
            n_run: 3,
        }
    }
}

/// One candidate organization evaluated by APO.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Number of PipeStores.
    pub n_pipestores: usize,
    /// Best partition point for this store count.
    pub partition: usize,
    /// Store-stage time `T_ps`, seconds.
    pub t_ps: f64,
    /// Tuner-stage time `T_tuner`, seconds.
    pub t_tuner: f64,
    /// `|T_ps − T_tuner|`.
    pub t_diff: f64,
    /// End-to-end training time, seconds.
    pub total_secs: f64,
}

/// Output of Algorithm 1: the chosen organization plus the full sweep.
#[derive(Debug, Clone)]
pub struct ApoResult {
    /// The best number of PipeStores (`N_best_ps`).
    pub best: Candidate,
    /// Every candidate considered, indexed by store count − 1.
    pub sweep: Vec<Candidate>,
}

/// `FindBestPoint` (§5.3): for a fixed store count, evaluates every
/// partitionable point — stage boundaries only, never inside residual
/// blocks, with the trainable tail pinned to the Tuner to avoid weight
/// synchronization — and returns the point with the shortest estimated
/// training time.
///
/// # Panics
///
/// Panics if `n_pipestores` is zero.
pub fn find_best_point(input: &ApoInput, n_pipestores: usize) -> Candidate {
    assert!(n_pipestores > 0, "need at least one PipeStore");
    let first_trainable = input.model.first_trainable_stage();
    let mut best: Option<Candidate> = None;
    // Partition points 0..=first_trainable keep every trainable stage on
    // the Tuner (the paper's no-sync constraint).
    for k in 0..=first_trainable {
        let setup = TrainSetup {
            model: input.model.clone(),
            images: input.images,
            epochs: input.epochs,
            batch: input.batch,
            n_pipestores,
            partition: k,
            n_run: input.n_run,
            link: input.link.clone(),
            store: input.store.clone(),
        };
        let r = training_report(&setup);
        let cand = Candidate {
            n_pipestores,
            partition: k,
            t_ps: r.store_stage_secs + r.transfer_secs,
            t_tuner: r.tuner_stage_secs + r.weight_sync_secs,
            t_diff: r.stage_imbalance(),
            total_secs: r.total_secs,
        };
        let better = match &best {
            None => true,
            Some(b) => cand.total_secs < b.total_secs,
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("at least one partition point exists")
}

/// Algorithm 1: sweeps `1..=N_max_ps` PipeStores, calling
/// [`find_best_point`] for each, and returns the organization whose
/// pipeline stages are most balanced (minimal `T_diff`).
pub fn best_organization(input: &ApoInput) -> ApoResult {
    assert!(input.max_pipestores > 0, "need at least one PipeStore");
    let sweep: Vec<Candidate> = (1..=input.max_pipestores)
        .map(|n| find_best_point(input, n))
        .collect();
    let best = sweep
        .iter()
        .min_by(|a, b| a.t_diff.partial_cmp(&b.t_diff).expect("finite times"))
        .expect("non-empty sweep")
        .clone();
    ApoResult { best, sweep }
}


/// Inputs of the Pareto-front search: like [`ApoInput`] but over an
/// explicitly *heterogeneous* fleet — candidate organizations use the
/// first `n` entries of `fleet`, so order the list fastest-first to ask
/// "how many stores, which cut, what micro-batch size".
#[derive(Debug, Clone)]
pub struct ParetoInput {
    /// DNN model architecture `M`.
    pub model: ModelProfile,
    /// Candidate PipeStores, possibly heterogeneous (derated stragglers,
    /// Inferentia nodes, …). A point with `n` stores uses `fleet[..n]`.
    pub fleet: Vec<InstanceSpec>,
    /// The Tuner host (timing anchor and cost).
    pub tuner: InstanceSpec,
    /// Network bandwidth `BW` between PipeStores and Tuner.
    pub link: LinkSpec,
    /// Training-set size, images.
    pub images: u64,
    /// Head-training epochs.
    pub epochs: usize,
    /// Training batch size.
    pub batch: usize,
    /// Pipeline depth `N_run`.
    pub n_run: usize,
    /// Largest micro-batch split per run slice to consider (`M`).
    pub max_micro_batches: usize,
}

impl ParetoInput {
    /// The paper's deployment defaults with a homogeneous T4 fleet.
    pub fn paper_default(model: ModelProfile) -> Self {
        ParetoInput::from_apo(&ApoInput::paper_default(model))
    }

    /// Lifts an [`ApoInput`] into the Pareto search: `max_pipestores`
    /// identical stores, micro-batch splits up to 8.
    pub fn from_apo(input: &ApoInput) -> Self {
        ParetoInput {
            model: input.model.clone(),
            fleet: vec![input.store.clone(); input.max_pipestores],
            tuner: InstanceSpec::tuner(),
            link: input.link.clone(),
            images: input.images,
            epochs: input.epochs,
            batch: input.batch,
            n_run: input.n_run,
            max_micro_batches: 8,
        }
    }
}

/// One configuration evaluated by the Pareto search.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Partition point `k` (stages `0..k` run on PipeStores).
    pub partition: usize,
    /// Number of PipeStores (`fleet[..n]`).
    pub n_pipestores: usize,
    /// Micro-batches per run slice (`1` = the run-at-a-time schedule).
    pub micro_batch: usize,
    /// Store-stage time per job, seconds (steal-balanced when `M > 1`).
    pub t_ps: f64,
    /// Tuner-stage time per job, seconds.
    pub t_tuner: f64,
    /// End-to-end training time, seconds.
    pub total_secs: f64,
    /// Fleet + Tuner rental for the job, USD.
    pub cost_usd: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: no worse on both objectives
    /// (time, cost) and strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.total_secs <= other.total_secs
            && self.cost_usd <= other.cost_usd
            && (self.total_secs < other.total_secs || self.cost_usd < other.cost_usd)
    }
}

/// Output of the Pareto search: the non-dominated frontier plus the knee.
#[derive(Debug, Clone)]
pub struct ParetoFront {
    /// Non-dominated points, sorted by `total_secs` ascending.
    pub frontier: Vec<ParetoPoint>,
    /// The knee: the frontier point closest (after normalizing both
    /// objectives to `[0, 1]` over the frontier) to the ideal corner.
    pub knee: ParetoPoint,
    /// How many configurations were evaluated in total.
    pub candidates: usize,
}

/// Per-peer streamed store-stage rate in images/sec — the same
/// three-stage min (GPU forward over the prefix, disk read, CPU
/// decompression) the cluster simulator charges, but evaluated against
/// one concrete peer so heterogeneous fleets get per-device rates.
fn store_rate(spec: &InstanceSpec, model: &ModelProfile, partition: usize) -> f64 {
    let prefix_flops = model.flops_before(partition);
    let dnn_factor = spec.gpus.first().map(|g| g.dnn_factor).unwrap_or(0.0);
    let gpu_rate = if prefix_flops > 0.0 {
        if dnn_factor > 0.0 {
            model.effective_flops(dnn_factor) / prefix_flops
        } else {
            0.0
        }
    } else {
        f64::INFINITY
    };
    let disk_rate = spec.disk.read_bps / hw::COMPRESSED_IMAGE_BYTES;
    let decomp_rate = spec.cpu.decompress_bps(2) / hw::COMPRESSED_IMAGE_BYTES;
    gpu_rate.min(disk_rate).min(decomp_rate)
}

/// Evaluates one `(partition, n, micro_batch)` configuration.
///
/// The Tuner-side and transfer terms come straight from
/// [`training_report`] (they do not depend on store hardware when the
/// trainable tail stays on the Tuner), so with a homogeneous fleet and
/// `M = 1` the point reproduces [`find_best_point`]'s arithmetic exactly
/// — the frontier provably contains the single-point answer. The store
/// stage generalizes to heterogeneous devices:
///
/// - `M = 1`: no intra-run stealing is possible (the steal quantum is a
///   whole run slice), so the slowest peer paces the stage.
/// - `M > 1`: idle peers steal micro-batches, so the fleet converges on
///   the steal-balanced aggregate rate, plus one un-stealable tail
///   chunk on the slowest peer and a per-extra-micro-batch dispatch
///   overhead (the RPCs the barrier schedule would not have issued).
fn evaluate_point(input: &ParetoInput, partition: usize, n: usize, m: usize) -> ParetoPoint {
    /// Tuner-side dispatch cost of one extra micro-batch RPC, seconds.
    const MICRO_BATCH_DISPATCH_SECS: f64 = 2e-3;

    let setup = TrainSetup {
        model: input.model.clone(),
        images: input.images,
        epochs: input.epochs,
        batch: input.batch,
        n_pipestores: n,
        partition,
        n_run: input.n_run,
        link: input.link.clone(),
        store: input.fleet[0].clone(),
    };
    let r = training_report(&setup);

    let images = input.images as f64;
    let rates: Vec<f64> = input.fleet[..n]
        .iter()
        .map(|spec| store_rate(spec, &input.model, partition))
        .collect();
    let min_rate = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let sum_rate: f64 = rates.iter().sum();
    let runs = input.n_run as f64;
    let store_secs = if m == 1 {
        // Identical expression to the simulator's homogeneous formula,
        // with the slowest device pacing the whole stage.
        images / (n as f64 * min_rate)
    } else {
        let balanced = images / sum_rate;
        let tail_chunk = images / (n as f64 * runs * m as f64 * min_rate);
        balanced + tail_chunk + (m as f64 - 1.0) * runs * MICRO_BATCH_DISPATCH_SECS
    };

    // The same N_run overlap timeline the simulator runs (Fig 10b).
    let mut store_res = Resource::new("store-stage");
    let mut tuner_res = Resource::new("tuner-stage");
    let per_run_store = SimTime::from_secs((store_secs + r.transfer_secs) / runs);
    let per_run_tuner = SimTime::from_secs((r.tuner_stage_secs + r.weight_sync_secs) / runs);
    let mut end = SimTime::ZERO;
    for _ in 0..input.n_run {
        let s = store_res.serve(SimTime::ZERO, per_run_store);
        let t = tuner_res.serve(s.end, per_run_tuner);
        end = t.end;
    }
    let total_secs = end.as_secs();

    let fleet_cost: f64 = input.fleet[..n]
        .iter()
        .map(|spec| spec.cost.run_cost_usd(total_secs))
        .sum();
    ParetoPoint {
        partition,
        n_pipestores: n,
        micro_batch: m,
        t_ps: store_secs + r.transfer_secs,
        t_tuner: r.tuner_stage_secs + r.weight_sync_secs,
        total_secs,
        cost_usd: fleet_cost + input.tuner.cost.run_cost_usd(total_secs),
    }
}

/// The Pareto-front generalization of Algorithm 1: sweeps partition
/// point × store count × micro-batch size over a (possibly
/// heterogeneous) fleet, scores each configuration on (training time,
/// rental cost), and keeps the non-dominated frontier.
///
/// The default pick is the *knee* — the frontier point closest to the
/// ideal corner after min-max normalizing both objectives — rather than
/// `T_diff` balance, because with two objectives "most balanced" is no
/// longer a total order.
///
/// # Panics
///
/// Panics if the fleet is empty, `max_micro_batches` is zero, or the
/// other counts are zero (same contract as [`training_report`]).
pub fn pareto_front(input: &ParetoInput) -> ParetoFront {
    assert!(!input.fleet.is_empty(), "need at least one PipeStore");
    assert!(input.max_micro_batches > 0, "need at least one micro-batch");
    let first_trainable = input.model.first_trainable_stage();
    let mut points = Vec::new();
    for n in 1..=input.fleet.len() {
        for k in 0..=first_trainable {
            for m in 1..=input.max_micro_batches {
                points.push(evaluate_point(input, k, n, m));
            }
        }
    }
    let candidates = points.len();
    let mut frontier: Vec<ParetoPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.total_secs
            .partial_cmp(&b.total_secs)
            .expect("finite times")
            .then(a.cost_usd.partial_cmp(&b.cost_usd).expect("finite costs"))
    });
    frontier.dedup_by(|a, b| a.total_secs == b.total_secs && a.cost_usd == b.cost_usd);

    let t_min = frontier.first().map(|p| p.total_secs).unwrap_or(0.0);
    let t_max = frontier.last().map(|p| p.total_secs).unwrap_or(0.0);
    let (c_min, c_max) = frontier
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.cost_usd), hi.max(p.cost_usd))
        });
    let t_range = (t_max - t_min).max(f64::EPSILON);
    let c_range = (c_max - c_min).max(f64::EPSILON);
    let knee = frontier
        .iter()
        .min_by(|a, b| {
            let da = ((a.total_secs - t_min) / t_range).hypot((a.cost_usd - c_min) / c_range);
            let db = ((b.total_secs - t_min) / t_range).hypot((b.cost_usd - c_min) / c_range);
            da.partial_cmp(&db).expect("finite distances")
        })
        .expect("non-empty frontier")
        .clone();
    ParetoFront {
        frontier,
        knee,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_point_for_resnet50_is_the_deep_cut() {
        // Fig 9: +Conv5 wins for ResNet50 on 10 Gbps.
        let input = ApoInput::paper_default(ModelProfile::resnet50());
        let c = find_best_point(&input, 4);
        assert_eq!(c.partition, 5, "{c:?}");
    }

    #[test]
    fn best_point_never_offloads_trainable_stages() {
        for model in ModelProfile::zoo() {
            let first_trainable = model.first_trainable_stage();
            let input = ApoInput::paper_default(model);
            for n in [1, 8] {
                let c = find_best_point(&input, n);
                assert!(c.partition <= first_trainable);
            }
        }
    }

    #[test]
    fn algorithm1_balances_the_pipeline() {
        // Fig 11: ResNet50 balances around 8 PipeStores; T_diff at the
        // chosen point is (near) the sweep minimum by construction, and
        // the training-time curve flattens beyond it.
        let input = ApoInput::paper_default(ModelProfile::resnet50());
        let result = best_organization(&input);
        let n = result.best.n_pipestores;
        assert!((4..=14).contains(&n), "APO chose {n}");
        // Beyond the balance point, adding stores barely helps (≤10 %).
        let t_best = result.sweep[n - 1].total_secs;
        let t_max = result.sweep.last().unwrap().total_secs;
        assert!(
            (t_best - t_max) / t_best < 0.35,
            "best {t_best}s vs max {t_max}s"
        );
    }

    #[test]
    fn heavier_models_want_more_stores() {
        let r50 = best_organization(&ApoInput::paper_default(ModelProfile::resnet50()));
        let rx = best_organization(&ApoInput::paper_default(ModelProfile::resnext101()));
        assert!(
            rx.best.n_pipestores >= r50.best.n_pipestores,
            "resnext {} vs resnet {}",
            rx.best.n_pipestores,
            r50.best.n_pipestores
        );
    }

    #[test]
    fn sweep_is_complete_and_ordered() {
        let input = ApoInput {
            max_pipestores: 6,
            ..ApoInput::paper_default(ModelProfile::resnet50())
        };
        let result = best_organization(&input);
        assert_eq!(result.sweep.len(), 6);
        for (i, c) in result.sweep.iter().enumerate() {
            assert_eq!(c.n_pipestores, i + 1);
        }
        // Store-stage time decreases monotonically with more stores.
        for w in result.sweep.windows(2) {
            assert!(w[1].t_ps <= w[0].t_ps + 1e-9);
        }
    }

    use dnn::StageProfile;
    use proptest::prelude::*;

    /// A tiny fully-trainable model: `first_trainable_stage() == 0`, so
    /// the only legal cut keeps everything on the Tuner.
    fn degenerate_profile() -> ModelProfile {
        let stages = vec![
            StageProfile {
                name: "FC1".to_string(),
                flops: 4.0e9,
                output_bytes: 1.0e5,
                param_bytes: 2.0e6,
            },
            StageProfile {
                name: "FC2".to_string(),
                flops: 1.0e9,
                output_bytes: 4.0e3,
                param_bytes: 5.0e5,
            },
        ];
        ModelProfile::new("toy-all-trainable", stages, 800.0, 0.59e6, 2, 1.0e5)
    }

    fn small_pareto_input(model: ModelProfile, fleet: Vec<InstanceSpec>) -> ParetoInput {
        ParetoInput {
            model,
            fleet,
            tuner: InstanceSpec::tuner(),
            link: LinkSpec::ethernet_gbps(10.0),
            images: 120_000,
            epochs: 4,
            batch: 256,
            n_run: 3,
            max_micro_batches: 4,
        }
    }

    #[test]
    fn frontier_contains_the_single_point_answer() {
        // With a homogeneous fleet and M = 1 the Pareto evaluation
        // reuses `training_report` verbatim, so for every store count
        // the frontier must hold a point at least as good (time AND
        // cost) as `find_best_point`'s answer — and Algorithm 1's
        // chosen organization must appear with its exact total.
        let apo = ApoInput {
            max_pipestores: 8,
            ..ApoInput::paper_default(ModelProfile::resnet50())
        };
        let input = ParetoInput::from_apo(&apo);
        let front = pareto_front(&input);
        for n in 1..=apo.max_pipestores {
            let c = find_best_point(&apo, n);
            let fleet_cost: f64 = input.fleet[..n]
                .iter()
                .map(|s| s.cost.run_cost_usd(c.total_secs))
                .sum();
            let cost = fleet_cost + input.tuner.cost.run_cost_usd(c.total_secs);
            assert!(
                front.frontier.iter().any(|p| p.total_secs <= c.total_secs + 1e-9
                    && p.cost_usd <= cost + 1e-9),
                "nothing on the frontier covers find_best_point(n={n}): {c:?}"
            );
        }
        let best = best_organization(&apo).best;
        assert!(
            front
                .frontier
                .iter()
                .any(|p| p.n_pipestores == best.n_pipestores
                    && p.partition == best.partition
                    && p.micro_batch == 1
                    && (p.total_secs - best.total_secs).abs() < 1e-9)
                || front
                    .frontier
                    .iter()
                    .any(|p| p.dominates(&evaluate_point(&input, best.partition, best.n_pipestores, 1))),
            "Algorithm 1's organization fell off the frontier: {best:?}"
        );
    }

    #[test]
    fn one_peer_fleet_still_yields_a_frontier() {
        let input = small_pareto_input(
            ModelProfile::resnet50(),
            vec![InstanceSpec::pipestore()],
        );
        let front = pareto_front(&input);
        assert!(!front.frontier.is_empty());
        assert!(front.frontier.iter().all(|p| p.n_pipestores == 1));
        // A homogeneous (here: single-device) fleet gains nothing from
        // splitting runs — micro-batching only adds dispatch RPCs.
        assert_eq!(front.knee.micro_batch, 1, "{:?}", front.knee);
        assert!(front.frontier.contains(&front.knee));
    }

    #[test]
    fn degenerate_all_trainable_model_pins_the_cut_at_zero() {
        let input = small_pareto_input(
            degenerate_profile(),
            vec![InstanceSpec::pipestore(); 3],
        );
        let front = pareto_front(&input);
        assert!(!front.frontier.is_empty());
        assert!(front.frontier.iter().all(|p| p.partition == 0));
    }

    #[test]
    fn a_straggler_makes_micro_batching_win() {
        // Three healthy stores plus one at quarter speed: at M = 1 the
        // straggler paces the store stage; with stealing enabled the
        // fleet converges on the aggregate rate, so some M > 1 point
        // must beat every M = 1 point at the same store count.
        let fleet = vec![
            InstanceSpec::pipestore(),
            InstanceSpec::pipestore(),
            InstanceSpec::pipestore(),
            InstanceSpec::pipestore_derated(0.25),
        ];
        let input = small_pareto_input(ModelProfile::resnet50(), fleet);
        let k = input.model.first_trainable_stage();
        let barrier = evaluate_point(&input, k, 4, 1);
        let stolen = evaluate_point(&input, k, 4, input.max_micro_batches);
        assert!(
            stolen.total_secs < barrier.total_secs,
            "stealing {:.1}s should beat barrier {:.1}s",
            stolen.total_secs,
            barrier.total_secs
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// No frontier point may dominate another, the knee is on the
        /// frontier, and every enumerated configuration is covered by
        /// (weakly dominated from) the frontier.
        #[test]
        fn frontier_is_non_dominated_and_covering(
            n_fleet in 1usize..5,
            derate_pct in 10u32..100,
            max_mb in 1usize..5,
            n_run in 1usize..4,
            model_idx in 0usize..3,
        ) {
            let model = ModelProfile::zoo().swap_remove(model_idx % ModelProfile::zoo().len());
            let mut fleet = vec![InstanceSpec::pipestore(); n_fleet];
            if let Some(last) = fleet.last_mut() {
                *last = InstanceSpec::pipestore_derated(f64::from(derate_pct) / 100.0);
            }
            let input = ParetoInput {
                max_micro_batches: max_mb,
                n_run,
                ..small_pareto_input(model, fleet)
            };
            let front = pareto_front(&input);
            prop_assert!(!front.frontier.is_empty());
            for (i, p) in front.frontier.iter().enumerate() {
                for (j, q) in front.frontier.iter().enumerate() {
                    if i != j {
                        prop_assert!(!p.dominates(q), "{p:?} dominates {q:?}");
                    }
                }
            }
            prop_assert!(front.frontier.contains(&front.knee));
            // Sorted by time ascending means cost must descend weakly.
            for w in front.frontier.windows(2) {
                prop_assert!(w[0].total_secs <= w[1].total_secs);
                prop_assert!(w[0].cost_usd >= w[1].cost_usd - 1e-12,
                    "frontier not a staircase: {:?}", w);
            }
            // Every configuration is weakly dominated by some frontier point.
            let k_max = input.model.first_trainable_stage();
            for n in 1..=input.fleet.len() {
                for k in 0..=k_max {
                    for m in 1..=input.max_micro_batches {
                        let c = evaluate_point(&input, k, n, m);
                        prop_assert!(front.frontier.iter().any(
                            |p| p.total_secs <= c.total_secs + 1e-9
                                && p.cost_usd <= c.cost_usd + 1e-9));
                    }
                }
            }
        }
    }

    #[test]
    fn slow_links_push_the_cut_deeper_or_equal() {
        // On a 1 Gbps link, transfer dominates; the best cut should be at
        // least as deep as on 40 Gbps.
        let mut slow = ApoInput::paper_default(ModelProfile::inception_v3());
        slow.link = LinkSpec::ethernet_gbps(1.0);
        let mut fast = slow.clone();
        fast.link = LinkSpec::ethernet_gbps(40.0);
        let c_slow = find_best_point(&slow, 4);
        let c_fast = find_best_point(&fast, 4);
        assert!(c_slow.partition >= c_fast.partition);
    }
}
