//! Photo placement: rendezvous hashing, R-way replication, and the
//! epoch-numbered [`PlacementMap`] the fleet agrees on.
//!
//! NDPipe's premise — many cheap NDP storage nodes holding the photo
//! corpus, running Store-stage extraction where the data lives — only
//! scales if placement is first-class. This module is the pure-logic
//! core: given a set of node ids and a replication factor `R`, it maps
//! every photo id to an *ordered* replica set of `R` nodes via
//! highest-random-weight (HRW / rendezvous) hashing. HRW gives minimal
//! disruption by construction: when a node leaves, only photos whose
//! replica set contained that node move; everything else keeps its
//! exact replica ordering.
//!
//! The map is versioned by a monotone `epoch`. Every mutation that
//! changes placement (`mark_down`, `mark_up`, `join`) bumps the epoch;
//! PipeStores reject installs of maps older than the one they hold, so
//! a delayed publish can never roll the fleet backwards. The map
//! travels over the wire via [`PlacementMap::to_bytes`] /
//! [`PlacementMap::from_bytes`] — same hand-rolled little-endian
//! discipline as the rest of [`crate::rpc::wire`].

use std::fmt;

/// Upper bound on the node count a serialized map may claim, so a
/// corrupt frame cannot force a huge allocation.
const MAX_NODES: u32 = 1 << 20;

/// Serialization format revision for [`PlacementMap::to_bytes`].
const CODEC_VERSION: u32 = 1;

/// Errors from map construction, mutation, or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A map needs at least one node.
    NoNodes,
    /// The replication factor must be at least 1.
    ZeroReplicas,
    /// `replicas` exceeds the number of nodes in the map.
    ReplicasExceedNodes {
        /// Requested replication factor.
        replicas: usize,
        /// Nodes available.
        nodes: usize,
    },
    /// The same node id appeared twice.
    DuplicateNode(u64),
    /// A mutation referenced a node id the map does not contain.
    UnknownNode(u64),
    /// `from_bytes` met a malformed buffer.
    Corrupt(&'static str),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoNodes => write!(f, "placement map needs at least one node"),
            PlacementError::ZeroReplicas => write!(f, "replication factor must be >= 1"),
            PlacementError::ReplicasExceedNodes { replicas, nodes } => write!(
                f,
                "replication factor {replicas} exceeds node count {nodes}"
            ),
            PlacementError::DuplicateNode(id) => write!(f, "duplicate node id {id}"),
            PlacementError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            PlacementError::Corrupt(why) => write!(f, "corrupt placement map: {why}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// One node in the map: a stable id plus its current liveness flag.
/// Down nodes stay listed (so a rejoin with the same id reclaims the
/// same shard assignments) but never receive placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementNode {
    /// Stable node id; on the tuner side this is the peer index, on the
    /// store side the PipeStore id.
    pub id: u64,
    /// Whether the node currently accepts placements.
    pub up: bool,
}

/// The fleet's placement contract: which `R` nodes hold each photo, in
/// failover order, plus the epoch the contract was published under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    epoch: u64,
    replicas: u32,
    /// Sorted by id, unique.
    nodes: Vec<PlacementNode>,
}

/// SplitMix64 finalizer: cheap, well-mixed, and dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// HRW weight of `node` for `key`: each (node, key) pair gets an
/// independent pseudo-random score; the top-R scorers own the key.
fn hrw_score(node: u64, key: u64) -> u64 {
    mix64(key ^ mix64(node.wrapping_mul(0x2545_f491_4f6c_dd1d)))
}

/// Decorrelates training-shard keys from photo keys so a node's shard
/// replicas are not simply the replicas of photo id == node id.
const SHARD_KEY_SALT: u64 = 0x5d4a_9c3b_17e8_62f1;

impl PlacementMap {
    /// Builds an epoch-1 map over `ids` with replication factor
    /// `replicas`. Ids may arrive in any order; duplicates are an error.
    pub fn new(ids: &[u64], replicas: usize) -> Result<Self, PlacementError> {
        if ids.is_empty() {
            return Err(PlacementError::NoNodes);
        }
        if replicas == 0 {
            return Err(PlacementError::ZeroReplicas);
        }
        if replicas > ids.len() {
            return Err(PlacementError::ReplicasExceedNodes {
                replicas,
                nodes: ids.len(),
            });
        }
        let mut sorted: Vec<u64> = ids.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(PlacementError::DuplicateNode(w[0]));
            }
        }
        Ok(PlacementMap {
            epoch: 1,
            replicas: replicas as u32,
            nodes: sorted
                .into_iter()
                .map(|id| PlacementNode { id, up: true })
                .collect(),
        })
    }

    /// The monotone version number of this map.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Configured replication factor.
    pub fn replica_factor(&self) -> usize {
        self.replicas as usize
    }

    /// All nodes (up and down), sorted by id.
    pub fn nodes(&self) -> &[PlacementNode] {
        &self.nodes
    }

    /// Ids of the nodes currently up, ascending.
    pub fn up_nodes(&self) -> Vec<u64> {
        self.nodes.iter().filter(|n| n.up).map(|n| n.id).collect()
    }

    /// Whether `id` is listed and currently up.
    pub fn is_up(&self, id: u64) -> bool {
        self.nodes.iter().any(|n| n.id == id && n.up)
    }

    /// Whether `id` is listed at all.
    pub fn contains(&self, id: u64) -> bool {
        self.nodes.iter().any(|n| n.id == id)
    }

    fn find_mut(&mut self, id: u64) -> Result<&mut PlacementNode, PlacementError> {
        self.nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or(PlacementError::UnknownNode(id))
    }

    /// Marks `id` down and bumps the epoch. Returns `false` (no epoch
    /// bump) when the node was already down.
    pub fn mark_down(&mut self, id: u64) -> Result<bool, PlacementError> {
        let node = self.find_mut(id)?;
        if !node.up {
            return Ok(false);
        }
        node.up = false;
        self.epoch += 1;
        Ok(true)
    }

    /// Marks `id` up again (a restart/rejoin) and bumps the epoch.
    pub fn mark_up(&mut self, id: u64) -> Result<bool, PlacementError> {
        let node = self.find_mut(id)?;
        if node.up {
            return Ok(false);
        }
        node.up = true;
        self.epoch += 1;
        Ok(true)
    }

    /// Adds a brand-new node (up) and bumps the epoch.
    pub fn join(&mut self, id: u64) -> Result<(), PlacementError> {
        if self.contains(id) {
            return Err(PlacementError::DuplicateNode(id));
        }
        let at = self.nodes.partition_point(|n| n.id < id);
        self.nodes.insert(at, PlacementNode { id, up: true });
        self.epoch += 1;
        Ok(())
    }

    /// Top-`want` up nodes by HRW score for `key`, in failover order
    /// (highest score first; ties break toward the lower id).
    fn ranked(&self, key: u64, want: usize, skip: Option<u64>) -> Vec<u64> {
        let mut scored: Vec<(u64, u64)> = self
            .nodes
            .iter()
            .filter(|n| n.up && Some(n.id) != skip)
            .map(|n| (hrw_score(n.id, key), n.id))
            .collect();
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(want);
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// The ordered replica set for a photo id: up to `R` live nodes,
    /// first entry is the primary. Shrinks below `R` only when fewer
    /// than `R` nodes are up.
    pub fn replicas_for(&self, photo: u64) -> Vec<u64> {
        self.ranked(photo, self.replicas as usize, None)
    }

    /// Which nodes hold replicas of `node`'s *training shard*. A live
    /// node is always its own shard's primary; the remaining `R - 1`
    /// slots (all `R` when the node is down) go to the top HRW scorers
    /// among the other live nodes, so FT-DMP knows exactly where to
    /// reroute a dead peer's extraction assignment.
    pub fn shard_holders(&self, node: u64) -> Vec<u64> {
        let key = mix64(node ^ SHARD_KEY_SALT);
        if self.is_up(node) {
            let mut holders = vec![node];
            holders.extend(self.ranked(key, (self.replicas as usize).saturating_sub(1), Some(node)));
            holders
        } else {
            self.ranked(key, self.replicas as usize, Some(node))
        }
    }

    /// True when `photo`'s replica set differs between `old` and `new`
    /// — the rebalance predicate: only such photos move.
    pub fn replica_set_changed(old: &PlacementMap, new: &PlacementMap, photo: u64) -> bool {
        old.replicas_for(photo) != new.replicas_for(photo)
    }

    /// Serializes the map: `[u32 codec][u64 epoch][u32 replicas]
    /// [u32 n][(u64 id, u8 up) * n]`, little-endian throughout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.nodes.len() * 9);
        out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.replicas.to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for n in &self.nodes {
            out.extend_from_slice(&n.id.to_le_bytes());
            out.push(u8::from(n.up));
        }
        out
    }

    /// Decodes [`Self::to_bytes`] with full structural validation: the
    /// node list must be sorted, unique, bounded, and consistent with
    /// the replication factor.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, PlacementError> {
        struct Cur<'a> {
            buf: &'a [u8],
            at: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], PlacementError> {
                let end = self
                    .at
                    .checked_add(n)
                    .ok_or(PlacementError::Corrupt("length overflow"))?;
                let s = self
                    .buf
                    .get(self.at..end)
                    .ok_or(PlacementError::Corrupt("truncated"))?;
                self.at = end;
                Ok(s)
            }
            fn u32(&mut self) -> Result<u32, PlacementError> {
                let mut b = [0u8; 4];
                b.copy_from_slice(self.take(4)?);
                Ok(u32::from_le_bytes(b))
            }
            fn u64(&mut self) -> Result<u64, PlacementError> {
                let mut b = [0u8; 8];
                b.copy_from_slice(self.take(8)?);
                Ok(u64::from_le_bytes(b))
            }
        }
        let mut cur = Cur { buf, at: 0 };
        if cur.u32()? != CODEC_VERSION {
            return Err(PlacementError::Corrupt("unknown codec version"));
        }
        let epoch = cur.u64()?;
        let replicas = cur.u32()?;
        let n = cur.u32()?;
        if replicas == 0 {
            return Err(PlacementError::Corrupt("zero replication factor"));
        }
        if n == 0 || n > MAX_NODES {
            return Err(PlacementError::Corrupt("node count out of range"));
        }
        if replicas > n {
            return Err(PlacementError::Corrupt("replicas exceed node count"));
        }
        let mut nodes = Vec::with_capacity(n as usize);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = cur.u64()?;
            let up = match cur.take(1)? {
                [0] => false,
                [1] => true,
                _ => return Err(PlacementError::Corrupt("bad liveness flag")),
            };
            if prev.is_some_and(|p| p >= id) {
                return Err(PlacementError::Corrupt("node ids not strictly ascending"));
            }
            prev = Some(id);
            nodes.push(PlacementNode { id, up });
        }
        if cur.at != buf.len() {
            return Err(PlacementError::Corrupt("trailing bytes"));
        }
        Ok(PlacementMap {
            epoch,
            replicas,
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: u64, r: usize) -> PlacementMap {
        let ids: Vec<u64> = (0..n).collect();
        PlacementMap::new(&ids, r).expect("valid map")
    }

    #[test]
    fn construction_validates() {
        assert_eq!(PlacementMap::new(&[], 1), Err(PlacementError::NoNodes));
        assert_eq!(
            PlacementMap::new(&[0, 1], 0),
            Err(PlacementError::ZeroReplicas)
        );
        assert_eq!(
            PlacementMap::new(&[0, 1], 3),
            Err(PlacementError::ReplicasExceedNodes {
                replicas: 3,
                nodes: 2
            })
        );
        assert_eq!(
            PlacementMap::new(&[0, 1, 1], 2),
            Err(PlacementError::DuplicateNode(1))
        );
        let m = map(4, 2);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.replica_factor(), 2);
        assert_eq!(m.up_nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn replica_sets_are_ordered_distinct_and_deterministic() {
        let m = map(8, 3);
        for photo in 0..256u64 {
            let a = m.replicas_for(photo);
            let b = m.replicas_for(photo);
            assert_eq!(a, b, "nondeterministic placement for {photo}");
            assert_eq!(a.len(), 3);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replica for {photo}: {a:?}");
        }
    }

    #[test]
    fn placement_spreads_load_across_the_fleet() {
        let m = map(8, 2);
        let mut primaries = vec![0usize; 8];
        for photo in 0..4096u64 {
            primaries[m.replicas_for(photo)[0] as usize] += 1;
        }
        for (id, &n) in primaries.iter().enumerate() {
            // Perfect balance is 512; HRW should land well within 2x.
            assert!(
                n > 256 && n < 1024,
                "node {id} owns {n} of 4096 primaries"
            );
        }
    }

    #[test]
    fn hrw_moves_only_affected_photos_on_node_loss() {
        let mut m = map(8, 2);
        let before: Vec<Vec<u64>> = (0..1024u64).map(|p| m.replicas_for(p)).collect();
        assert!(m.mark_down(3).expect("known node"));
        assert_eq!(m.epoch(), 2);
        for (p, old) in before.iter().enumerate() {
            let new = m.replicas_for(p as u64);
            if old.contains(&3) {
                assert!(!new.contains(&3), "photo {p} still placed on a dead node");
            } else {
                // Minimal disruption: untouched replica sets keep their order.
                assert_eq!(old, &new, "photo {p} moved without cause");
            }
        }
    }

    #[test]
    fn mark_down_up_is_epoch_monotone_and_idempotent() {
        let mut m = map(4, 2);
        assert!(m.mark_down(1).expect("known"));
        assert!(!m.mark_down(1).expect("known"), "second down is a no-op");
        assert_eq!(m.epoch(), 2);
        assert!(!m.is_up(1));
        assert!(m.mark_up(1).expect("known"));
        assert_eq!(m.epoch(), 3);
        assert!(m.is_up(1));
        // A rejoin restores the exact pre-failure placement.
        let fresh = map(4, 2);
        for p in 0..512u64 {
            assert_eq!(m.replicas_for(p), fresh.replicas_for(p));
        }
        assert_eq!(
            m.mark_down(99),
            Err(PlacementError::UnknownNode(99))
        );
    }

    #[test]
    fn join_inserts_sorted_and_bumps_epoch() {
        let mut m = PlacementMap::new(&[0, 2], 2).expect("map");
        m.join(1).expect("join");
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.up_nodes(), vec![0, 1, 2]);
        assert_eq!(m.join(1), Err(PlacementError::DuplicateNode(1)));
    }

    #[test]
    fn shard_holders_prefers_the_owner_then_replicas() {
        let mut m = map(6, 2);
        let holders = m.shard_holders(4);
        assert_eq!(holders.len(), 2);
        assert_eq!(holders[0], 4, "a live node is its own shard primary");
        assert_ne!(holders[1], 4);
        // When the owner dies, its shard falls to the same backup first.
        let backup = holders[1];
        m.mark_down(4).expect("known");
        let after = m.shard_holders(4);
        assert_eq!(after.len(), 2);
        assert!(!after.contains(&4));
        assert_eq!(after[0], backup, "backup ordering survives the owner's death");
    }

    #[test]
    fn replica_set_changed_is_the_rebalance_predicate() {
        let old = map(8, 2);
        let mut new = map(8, 2);
        new.mark_down(5).expect("known");
        let mut changed = 0usize;
        for p in 0..1024u64 {
            let c = PlacementMap::replica_set_changed(&old, &new, p);
            assert_eq!(c, old.replicas_for(p).contains(&5));
            changed += usize::from(c);
        }
        // Roughly R/N of photos reference node 5: 2/8 of 1024 ≈ 256.
        assert!(changed > 128 && changed < 512, "changed = {changed}");
    }

    #[test]
    fn bytes_roundtrip_and_reject_corruption() {
        let mut m = map(5, 3);
        m.mark_down(2).expect("known");
        let bytes = m.to_bytes();
        let back = PlacementMap::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(m, back);

        for cut in 0..bytes.len() {
            assert!(
                PlacementMap::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            PlacementMap::from_bytes(&trailing),
            Err(PlacementError::Corrupt("trailing bytes"))
        );
        let mut bad_flag = bytes.clone();
        let last = bad_flag.len() - 1;
        bad_flag[last] = 7;
        assert_eq!(
            PlacementMap::from_bytes(&bad_flag),
            Err(PlacementError::Corrupt("bad liveness flag"))
        );
        let mut bad_codec = bytes;
        bad_codec[0] = 9;
        assert!(PlacementMap::from_bytes(&bad_codec).is_err());
    }

    #[test]
    fn errors_render() {
        let e = PlacementError::ReplicasExceedNodes {
            replicas: 3,
            nodes: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        assert!(PlacementError::UnknownNode(7).to_string().contains('7'));
    }
}
