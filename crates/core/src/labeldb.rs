//! The versioned label database (§3.1, §3.3, Table 1).
//!
//! Photo platforms index every image's label in a database to serve
//! search queries. When the model improves, previously stored labels go
//! stale — the *outdated label* problem. NDPipe refreshes them with
//! near-data offline inference; this module is the database those labels
//! live in, with the bookkeeping needed to quantify staleness.

use ndpipe_data::PhotoId;
use parking_lot::RwLock;
use std::collections::HashMap;

/// One label record: the class plus the model version that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelRecord {
    /// Predicted class.
    pub label: usize,
    /// Version of the model that assigned it.
    pub model_version: u64,
}

/// A concurrent, versioned photo-label index.
///
/// Shared between the online-inference path (inserts on upload) and the
/// offline-relabel path (bulk updates), hence the interior lock.
///
/// # Example
///
/// ```
/// use ndpipe::LabelDb;
/// use ndpipe_data::PhotoId;
///
/// let db = LabelDb::new();
/// db.put(PhotoId(1), 42, 0);
/// assert_eq!(db.get(PhotoId(1)).unwrap().label, 42);
/// ```
#[derive(Debug, Default)]
pub struct LabelDb {
    records: RwLock<HashMap<PhotoId, LabelRecord>>,
}

/// Outcome of one offline relabeling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelabelStats {
    /// Photos examined.
    pub examined: usize,
    /// Labels that changed under the new model.
    pub changed: usize,
}

impl RelabelStats {
    /// Fraction of labels the new model changed (Table 1's metric, with
    /// ground truth supplied by the caller when available).
    pub fn changed_fraction(&self) -> f64 {
        if self.examined == 0 {
            0.0
        } else {
            self.changed as f64 / self.examined as f64
        }
    }
}

impl LabelDb {
    /// An empty database.
    pub fn new() -> Self {
        LabelDb::default()
    }

    /// Number of indexed photos.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// Inserts or overwrites a label.
    pub fn put(&self, id: PhotoId, label: usize, model_version: u64) {
        self.records.write().insert(
            id,
            LabelRecord {
                label,
                model_version,
            },
        );
    }

    /// Looks up a label.
    pub fn get(&self, id: PhotoId) -> Option<LabelRecord> {
        self.records.read().get(&id).copied()
    }

    /// Photos whose label was produced by a model older than `version`
    /// (the offline-inference work list).
    pub fn stale_photos(&self, version: u64) -> Vec<PhotoId> {
        let mut ids: Vec<PhotoId> = self
            .records
            .read()
            .iter()
            .filter(|(_, r)| r.model_version < version)
            .map(|(&id, _)| id)
            .collect();
        ids.sort();
        ids
    }

    /// Applies a batch of relabels from offline inference, returning how
    /// many labels actually changed.
    pub fn apply_relabels(
        &self,
        labels: impl IntoIterator<Item = (PhotoId, usize)>,
        model_version: u64,
    ) -> RelabelStats {
        let mut map = self.records.write();
        let mut stats = RelabelStats::default();
        for (id, label) in labels {
            stats.examined += 1;
            let entry = map.entry(id).or_insert(LabelRecord {
                label,
                model_version,
            });
            if entry.label != label {
                stats.changed += 1;
            }
            *entry = LabelRecord {
                label,
                model_version,
            };
        }
        stats
    }

    /// Fraction of labels matching `truth` (photo → ground-truth class) —
    /// the database-quality metric behind Table 1.
    pub fn accuracy_against<F: Fn(PhotoId) -> usize>(&self, truth: F) -> f64 {
        let map = self.records.read();
        if map.is_empty() {
            return 0.0;
        }
        let correct = map.iter().filter(|(&id, r)| truth(id) == r.label).count();
        correct as f64 / map.len() as f64
    }

    /// Fraction of photos whose label was wrong under `truth` *and* is
    /// now fixed, relative to all photos — Table 1's "% of fixed labels"
    /// when compared against a snapshot.
    pub fn fixed_fraction_since<F: Fn(PhotoId) -> usize>(
        &self,
        snapshot: &HashMap<PhotoId, usize>,
        truth: F,
    ) -> f64 {
        let map = self.records.read();
        if snapshot.is_empty() {
            return 0.0;
        }
        let fixed = snapshot
            .iter()
            .filter(|(id, &old_label)| {
                let t = truth(**id);
                old_label != t && map.get(id).is_some_and(|r| r.label == t)
            })
            .count();
        fixed as f64 / snapshot.len() as f64
    }

    /// A snapshot of the current labels (photo → class).
    pub fn snapshot(&self) -> HashMap<PhotoId, usize> {
        self.records
            .read()
            .iter()
            .map(|(&id, r)| (id, r.label))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_len() {
        let db = LabelDb::new();
        assert!(db.is_empty());
        db.put(PhotoId(1), 3, 0);
        db.put(PhotoId(2), 5, 0);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(PhotoId(1)).unwrap().label, 3);
        assert_eq!(db.get(PhotoId(9)), None);
    }

    #[test]
    fn stale_photo_listing() {
        let db = LabelDb::new();
        db.put(PhotoId(1), 0, 0);
        db.put(PhotoId(2), 0, 1);
        db.put(PhotoId(3), 0, 0);
        assert_eq!(db.stale_photos(1), vec![PhotoId(1), PhotoId(3)]);
        assert!(db.stale_photos(0).is_empty());
    }

    #[test]
    fn relabel_counts_changes() {
        let db = LabelDb::new();
        db.put(PhotoId(1), 0, 0);
        db.put(PhotoId(2), 1, 0);
        let stats = db.apply_relabels(vec![(PhotoId(1), 0), (PhotoId(2), 2)], 1);
        assert_eq!(stats.examined, 2);
        assert_eq!(stats.changed, 1);
        assert_eq!(stats.changed_fraction(), 0.5);
        assert_eq!(db.get(PhotoId(2)).unwrap().model_version, 1);
    }

    #[test]
    fn accuracy_and_fixed_fraction() {
        let db = LabelDb::new();
        // Truth: photo id == class.
        db.put(PhotoId(0), 0, 0); // correct
        db.put(PhotoId(1), 9, 0); // wrong
        db.put(PhotoId(2), 9, 0); // wrong
        let truth = |id: PhotoId| id.0 as usize;
        assert!((db.accuracy_against(truth) - 1.0 / 3.0).abs() < 1e-12);

        let snap = db.snapshot();
        // New model fixes photo 1 only.
        db.apply_relabels(vec![(PhotoId(1), 1), (PhotoId(2), 9)], 1);
        let fixed = db.fixed_fraction_since(&snap, truth);
        assert!((fixed - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let db = Arc::new(LabelDb::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    db.put(PhotoId(t * 100 + i), (i % 7) as usize, t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 400);
    }
}
