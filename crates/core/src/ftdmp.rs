//! FT-DMP: fine-tuning-based data & model parallelism (§5.1–§5.2).
//!
//! The weight-freeze prefix of the model runs replicated on every
//! PipeStore (data parallelism, no synchronization needed — frozen
//! weights never change), and the trainable tail runs solely on the Tuner
//! (model parallelism with all updates local). The pipelined variant
//! splits the data into `N_run` sub-datasets: while the Tuner trains on
//! run *r*, PipeStores already extract features for run *r + 1*
//! (Fig 10b).
//!
//! This module is the *functional* implementation: real forward passes,
//! real feature tensors, real SGD on the Tuner, PipeStores running in
//! parallel OS threads via crossbeam. The wall-clock/energy behaviour of
//! the same orchestration at data-center scale is modeled by
//! `cluster::training` and driven from [`crate::apo`].

use crate::npe::engine::EngineConfig;
use crate::pipestore::PipeStore;
use crate::tuner::Tuner;
use dnn::TrainConfig;
use rand::Rng;
use tensor::Tensor;

/// Configuration of one distributed fine-tuning job.
#[derive(Debug, Clone, Copy)]
pub struct FtdmpConfig {
    /// Number of pipeline runs (`N_run`); 1 = unpipelined.
    pub n_run: usize,
    /// Tuner epochs over each run's features.
    pub epochs_per_run: usize,
    /// Tuner-side SGD hyper-parameters.
    pub train: TrainConfig,
}

impl Default for FtdmpConfig {
    fn default() -> Self {
        FtdmpConfig {
            n_run: 3,
            epochs_per_run: 10,
            train: TrainConfig::default(),
        }
    }
}

/// Outcome of a distributed fine-tuning job.
#[derive(Debug, Clone)]
pub struct FtdmpReport {
    /// Final-epoch training loss of each pipeline run.
    pub run_losses: Vec<f32>,
    /// Feature bytes shipped from PipeStores to the Tuner (f32 payload).
    pub feature_bytes: usize,
    /// Wire bytes of the Check-N-Run model redistribution.
    pub distribution_bytes: usize,
    /// Traffic reduction of delta distribution vs full models (per store).
    pub distribution_reduction: f64,
    /// Number of training examples consumed.
    pub examples: usize,
}

/// Runs FT-DMP fine-tuning across `stores`, updating the Tuner's master
/// model and redistributing it to every PipeStore as a compressed delta.
///
/// Every PipeStore extracts features for its slice of each run in its own
/// thread (crossbeam scope); the Tuner then trains its trainable tail on
/// the gathered features. Weight-freeze layers are never updated
/// anywhere, so no inter-store synchronization exists — the property that
/// makes NDPipe scale linearly in PipeStores.
///
/// # Panics
///
/// Panics if `stores` is empty, a shard is smaller than `n_run`, or the
/// stores' label spaces exceed the Tuner model's class count.
pub fn ftdmp_fine_tune<R: Rng + ?Sized>(
    tuner: &mut Tuner,
    stores: &mut [PipeStore],
    config: &FtdmpConfig,
    rng: &mut R,
) -> FtdmpReport {
    assert!(!stores.is_empty(), "need at least one PipeStore");
    assert!(config.n_run > 0, "need at least one run");
    for s in stores.iter() {
        assert!(
            s.shard_len() >= config.n_run,
            "store {} shard smaller than N_run",
            s.id()
        );
        assert!(
            s.shard().num_classes() <= tuner.model().num_classes(),
            "widen the Tuner model before fine-tuning on new classes"
        );
    }

    let phase_hist = |phase: &str| {
        telemetry::global().histogram_with(
            "ndpipe_ftdmp_phase_seconds",
            &[("phase", phase)],
            "wall time of one in-process FT-DMP phase",
        )
    };
    let record = telemetry::enabled();

    // 1. Distribute the current master to every store.
    let timer = record.then(|| phase_hist("distribute").start_timer());
    for s in stores.iter_mut() {
        s.install_model(tuner.model().clone());
    }
    let model_before = tuner.model().clone();
    timer.map(|t| t.observe_and_disarm());

    // 2. Pipeline runs: extract (parallel) then tune.
    let mut run_losses = Vec::with_capacity(config.n_run);
    let mut feature_bytes = 0usize;
    let mut examples = 0usize;
    let engine_cfg = EngineConfig::default();
    // Concurrent store extractions are capped by NDPIPE_THREADS. Stores
    // are claimed dynamically from the shared worker pool (no wave
    // barrier — a slow store no longer stalls the rest of its wave), and
    // each store's features land in its own index slot, so the gathered
    // order is deterministic at any cap.
    let max_concurrent = ndpipe_data::deflate::configured_threads().max(1);
    for run in 0..config.n_run {
        // Parallel Store-stage across PipeStores, each running its slice
        // through the threaded NPE engine.
        let timer = record.then(|| phase_hist("extract").start_timer());
        let stores_shared: &[crate::PipeStore] = stores;
        let extracted: Vec<(Tensor, Vec<usize>)> =
            tensor::pool::map_indexed(max_concurrent, stores_shared.len(), |i| {
                let s = &stores_shared[i];
                let n = s.shard_len();
                let lo = run * n / config.n_run;
                let hi = (run + 1) * n / config.n_run;
                s.extract_features_batched(lo..hi, &engine_cfg).0
            })
            .unwrap_or_else(|e| panic!("pipestore extraction failed: {e}"));
        timer.map(|t| t.observe_and_disarm());

        // Gather at the Tuner.
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        for (f, l) in &extracted {
            feature_bytes += f.len() * 4;
            for i in 0..l.len() {
                rows.push(f.row(i));
            }
            labels.extend_from_slice(l);
        }
        examples += labels.len();
        let features = Tensor::stack_rows(&rows);

        // Tuner-stage.
        let timer = record.then(|| phase_hist("train").start_timer());
        let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
        timer.map(|t| t.observe_and_disarm());
        run_losses.push(loss);
    }

    // 3. Redistribute the fine-tuned model as Check-N-Run deltas.
    let timer = record.then(|| phase_hist("redistribute").start_timer());
    let delta = tuner.delta_from(&model_before);
    let mut distribution_bytes = 0usize;
    for s in stores.iter_mut() {
        let replica = s.model_mut().expect("model installed above");
        delta.apply(replica).expect("same architecture");
        distribution_bytes += delta.wire_bytes();
    }
    timer.map(|t| t.observe_and_disarm());
    if record {
        let g = telemetry::global();
        g.counter(
            "ndpipe_ftdmp_rounds_total",
            "completed in-process FT-DMP fine-tuning rounds",
        )
        .inc();
        g.counter(
            "ndpipe_ftdmp_feature_bytes_total",
            "feature bytes shipped from PipeStores to the Tuner",
        )
        .add(feature_bytes as u64);
    }

    FtdmpReport {
        run_losses,
        feature_bytes,
        distribution_bytes,
        distribution_reduction: delta.traffic_reduction(),
        examples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{Mlp, Trainer};
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(
        rng: &mut StdRng,
        n_stores: usize,
        per_class: usize,
    ) -> (Tuner, Vec<PipeStore>, LabeledDataset) {
        let u = ClassUniverse::new(16, 8, 5, 0.25, rng);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..u.classes() {
            for _ in 0..per_class {
                rows.push(u.sample(c, rng));
                labels.push(c);
            }
        }
        let all = LabeledDataset::new(rows, labels, u.classes()).shuffled(rng);
        let test_rows: Vec<Tensor> = (0..100).map(|i| u.sample(i % 5, rng)).collect();
        let test_labels: Vec<usize> = (0..100).map(|i| i % 5).collect();
        let test = LabeledDataset::new(test_rows, test_labels, 5);

        let model = Mlp::new(&[16, 32, 24, 5], 2, rng);
        let tuner = Tuner::new(
            model,
            TrainConfig {
                batch: 16,
                ..TrainConfig::default()
            },
        );
        let stores = all
            .shards(n_stores)
            .into_iter()
            .enumerate()
            .map(|(i, shard)| PipeStore::new(i, shard))
            .collect();
        (tuner, stores, test)
    }

    #[test]
    fn distributed_fine_tuning_learns() {
        let mut rng = StdRng::seed_from_u64(71);
        let (mut tuner, mut stores, test) = world(&mut rng, 4, 40);
        let before = Trainer::evaluate(tuner.model(), &test);
        let cfg = FtdmpConfig {
            n_run: 1,
            epochs_per_run: 20,
            train: *tuner.config(),
        };
        let report = ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng);
        let after = Trainer::evaluate(tuner.model(), &test);
        assert!(
            after.top1 > before.top1 + 0.2,
            "{:.3} -> {:.3}",
            before.top1,
            after.top1
        );
        assert_eq!(report.examples, 200);
        assert!(report.feature_bytes > 0);
    }

    #[test]
    fn stores_end_up_with_the_master_model() {
        let mut rng = StdRng::seed_from_u64(72);
        let (mut tuner, mut stores, _) = world(&mut rng, 3, 20);
        let cfg = FtdmpConfig {
            n_run: 2,
            epochs_per_run: 5,
            train: *tuner.config(),
        };
        ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng);
        let x = Tensor::randn(&[4, 16], &mut rng);
        let master = tuner.model().forward(&x);
        for s in &stores {
            let replica = s.model().unwrap().forward(&x);
            for (a, b) in master.data().iter().zip(replica.data()) {
                assert!((a - b).abs() < 0.05, "replica diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn delta_distribution_is_cheap() {
        let mut rng = StdRng::seed_from_u64(73);
        let (mut tuner, mut stores, _) = world(&mut rng, 2, 20);
        let cfg = FtdmpConfig::default();
        let report = ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng);
        assert!(
            report.distribution_reduction > 3.0,
            "reduction {}",
            report.distribution_reduction
        );
    }

    #[test]
    fn pipelined_accuracy_close_to_unpipelined_fig17() {
        let mut rng = StdRng::seed_from_u64(74);
        let (tuner0, stores0, test) = world(&mut rng, 4, 60);

        let accuracy = |n_run: usize, rng: &mut StdRng| {
            let mut tuner = tuner0.clone();
            // Rebuild stores with the same shards.
            let mut stores: Vec<PipeStore> = stores0
                .iter()
                .map(|s| PipeStore::new(s.id(), s.shard().clone()))
                .collect();
            let cfg = FtdmpConfig {
                n_run,
                epochs_per_run: 30 / n_run,
                train: *tuner0.config(),
            };
            ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, rng);
            Trainer::evaluate(tuner.model(), &test).top1
        };
        let a1 = accuracy(1, &mut rng);
        let a3 = accuracy(3, &mut rng);
        assert!((a1 - a3).abs() < 0.08, "N_run=1 {a1:.3} vs N_run=3 {a3:.3}");
    }

    #[test]
    #[should_panic(expected = "widen the Tuner model")]
    fn new_classes_require_widening_first() {
        let mut rng = StdRng::seed_from_u64(75);
        let (mut tuner, mut stores, _) = world(&mut rng, 2, 10);
        // Pretend a shard saw classes beyond the model's space.
        let wide = stores[0].shard().widened(9);
        stores[0].set_shard(wide);
        ftdmp_fine_tune(&mut tuner, &mut stores, &FtdmpConfig::default(), &mut rng);
    }
}
