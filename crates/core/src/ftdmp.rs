//! FT-DMP: fine-tuning-based data & model parallelism (§5.1–§5.2).
//!
//! The weight-freeze prefix of the model runs replicated on every
//! PipeStore (data parallelism, no synchronization needed — frozen
//! weights never change), and the trainable tail runs solely on the Tuner
//! (model parallelism with all updates local). The pipelined variant
//! splits the data into `N_run` sub-datasets: while the Tuner trains on
//! run *r*, PipeStores already extract features for run *r + 1*
//! (Fig 10b).
//!
//! [`ftdmp_fine_tune`] implements that overlap as a 1F1B-style
//! micro-batch schedule: each run's per-store slice is further split
//! into micro-batches that worker threads claim dynamically (with work
//! stealing across stores), while the Tuner trains runs in order on the
//! caller thread as soon as their features are complete. A staleness
//! bound `S` ([`FtdmpConfig::staleness`]) caps how many runs extraction
//! may lead training; `S = 0` degenerates to the historical
//! run-at-a-time barrier schedule, preserved verbatim as
//! [`ftdmp_fine_tune_reference`] — the oracle the equivalence tests pin
//! the pipeline against. Because features depend only on the *frozen*
//! prefix, any `S` produces bit-identical features; the schedule only
//! changes wall-clock overlap, never results.
//!
//! This module is the *functional* implementation: real forward passes,
//! real feature tensors, real SGD on the Tuner. The wall-clock/energy
//! behaviour of the same orchestration at data-center scale is modeled
//! by `cluster::training` and driven from [`crate::apo`].

use crate::npe::engine::EngineConfig;
use crate::pipestore::PipeStore;
use crate::tuner::Tuner;
use dnn::TrainConfig;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use tensor::Tensor;

/// Why an FT-DMP job was refused before any work started. The historic
/// `assert!` entry checks of [`ftdmp_fine_tune`] surface here instead,
/// so RPC servers and the CLI propagate a diagnosis rather than
/// unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtdmpError {
    /// No PipeStores to extract from.
    NoStores,
    /// `n_run` was zero.
    ZeroRuns,
    /// A store's shard has fewer examples than `N_run` sub-datasets.
    ShardTooSmall {
        /// Offending store id.
        store: usize,
        /// Its shard size.
        shard_len: usize,
        /// The requested pipeline depth.
        n_run: usize,
    },
    /// A shard's label space exceeds the Tuner model's class count;
    /// widen the Tuner model before fine-tuning on new classes.
    ClassOverflow {
        /// Offending store id.
        store: usize,
        /// Classes present in its shard.
        shard_classes: usize,
        /// Classes the model can emit.
        model_classes: usize,
    },
}

impl std::fmt::Display for FtdmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtdmpError::NoStores => write!(f, "need at least one PipeStore"),
            FtdmpError::ZeroRuns => write!(f, "need at least one run"),
            FtdmpError::ShardTooSmall {
                store,
                shard_len,
                n_run,
            } => write!(
                f,
                "store {store} shard smaller than N_run ({shard_len} < {n_run})"
            ),
            FtdmpError::ClassOverflow {
                store,
                shard_classes,
                model_classes,
            } => write!(
                f,
                "store {store} shard has {shard_classes} classes but the model has \
                 {model_classes}: widen the Tuner model before fine-tuning on new classes"
            ),
        }
    }
}

impl std::error::Error for FtdmpError {}

/// Configuration of one distributed fine-tuning job.
#[derive(Debug, Clone, Copy)]
pub struct FtdmpConfig {
    /// Number of pipeline runs (`N_run`); 1 = unpipelined.
    pub n_run: usize,
    /// Tuner epochs over each run's features.
    pub epochs_per_run: usize,
    /// Rows per extraction micro-batch; `0` = auto (each run slice
    /// splits into up to [`AUTO_MICRO_BATCHES`] micro-batches).
    pub micro_batch: usize,
    /// Staleness bound `S`: extraction may lead training by at most `S`
    /// runs. `S = 0` reproduces the run-at-a-time schedule bit-for-bit.
    pub staleness: usize,
    /// Tuner-side SGD hyper-parameters.
    pub train: TrainConfig,
}

/// Micro-batches each run slice splits into when
/// [`FtdmpConfig::micro_batch`] is `0` (auto).
pub const AUTO_MICRO_BATCHES: usize = 4;

impl Default for FtdmpConfig {
    fn default() -> Self {
        FtdmpConfig {
            n_run: 3,
            epochs_per_run: 10,
            micro_batch: 0,
            staleness: 1,
            train: TrainConfig::default(),
        }
    }
}

impl FtdmpConfig {
    /// Number of micro-batches a slice of `slice_len` rows splits into
    /// under this config (≥ 1; auto mode caps at
    /// [`AUTO_MICRO_BATCHES`]).
    pub fn micro_batches_for(&self, slice_len: usize) -> usize {
        if slice_len == 0 {
            return 1;
        }
        if self.micro_batch == 0 {
            slice_len.min(AUTO_MICRO_BATCHES)
        } else {
            slice_len.div_ceil(self.micro_batch)
        }
    }
}

/// Pipeline-schedule observability for one FT-DMP job.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScheduleStats {
    /// Micro-batch extraction tasks executed.
    pub micro_batches: usize,
    /// Tasks claimed away from their home store by an idle worker.
    pub steals: usize,
    /// Micro-batches extracted while training still lagged behind their
    /// run (only possible with `S ≥ 1`).
    pub stale_steps: usize,
    /// Seconds the Tuner spent waiting for a run's features to complete
    /// — the pipeline bubble the schedule exists to shrink.
    pub bubble_secs: f64,
}

/// Outcome of a distributed fine-tuning job.
#[derive(Debug, Clone)]
pub struct FtdmpReport {
    /// Final-epoch training loss of each pipeline run.
    pub run_losses: Vec<f32>,
    /// Feature bytes shipped from PipeStores to the Tuner (f32 payload).
    pub feature_bytes: usize,
    /// Wire bytes of the Check-N-Run model redistribution.
    pub distribution_bytes: usize,
    /// Traffic reduction of delta distribution vs full models (per store).
    pub distribution_reduction: f64,
    /// Number of training examples consumed.
    pub examples: usize,
    /// Micro-batch pipeline counters (all zero on the reference
    /// schedule).
    pub schedule: ScheduleStats,
}

fn validate(
    tuner: &Tuner,
    stores: &[PipeStore],
    config: &FtdmpConfig,
) -> Result<(), FtdmpError> {
    if stores.is_empty() {
        return Err(FtdmpError::NoStores);
    }
    if config.n_run == 0 {
        return Err(FtdmpError::ZeroRuns);
    }
    for s in stores {
        if s.shard_len() < config.n_run {
            return Err(FtdmpError::ShardTooSmall {
                store: s.id(),
                shard_len: s.shard_len(),
                n_run: config.n_run,
            });
        }
        if s.shard().num_classes() > tuner.model().num_classes() {
            return Err(FtdmpError::ClassOverflow {
                store: s.id(),
                shard_classes: s.shard().num_classes(),
                model_classes: tuner.model().num_classes(),
            });
        }
    }
    Ok(())
}

fn phase_hist(phase: &str) -> telemetry::Histogram {
    telemetry::global().histogram_with(
        "ndpipe_ftdmp_phase_seconds",
        &[("phase", phase)],
        "wall time of one in-process FT-DMP phase",
    )
}

fn record_job_counters(feature_bytes: usize, schedule: &ScheduleStats) {
    if !telemetry::enabled() {
        return;
    }
    let g = telemetry::global();
    g.counter(
        "ndpipe_ftdmp_rounds_total",
        "completed in-process FT-DMP fine-tuning rounds",
    )
    .inc();
    g.counter(
        "ndpipe_ftdmp_feature_bytes_total",
        "feature bytes shipped from PipeStores to the Tuner",
    )
    .add(feature_bytes as u64);
    g.counter(
        "ndpipe_ftdmp_steals_total",
        "FT-DMP micro-batches re-extracted away from their home store",
    )
    .add(schedule.steals as u64);
    g.counter(
        "ndpipe_ftdmp_stale_steps_total",
        "FT-DMP micro-batches extracted ahead of the Tuner's training run",
    )
    .add(schedule.stale_steps as u64);
    g.histogram(
        "ndpipe_ftdmp_bubble_seconds",
        "seconds the Tuner idled waiting for a run's features",
    )
    .observe(schedule.bubble_secs);
}

/// One pending micro-batch extraction: rows `lo..hi` of `store`'s shard
/// for pipeline run `run`, micro-batch index `mb` within that run.
#[derive(Debug, Clone, Copy)]
struct MicroBatch {
    store: usize,
    run: usize,
    mb: usize,
    lo: usize,
    hi: usize,
}

/// Shared scheduler state behind one mutex; a single condvar covers both
/// wake directions (worker→tuner "run complete", tuner→worker "staleness
/// window advanced").
struct SchedState {
    /// Per-store FIFO of pending micro-batches, front = lowest run.
    pending: Vec<VecDeque<MicroBatch>>,
    /// Gathered features, indexed `[run][store][mb]`.
    slots: Vec<Vec<Vec<Option<(Tensor, Vec<usize>)>>>>,
    /// Outstanding (pending or in-flight) tasks per run.
    remaining: Vec<usize>,
    /// Runs the Tuner has finished training.
    trained: usize,
    steals: usize,
    stale_steps: usize,
}

impl SchedState {
    /// Picks the next eligible micro-batch for a worker homed on
    /// `home` stores (`store % n_workers == worker`): home queues
    /// first, otherwise steal from the most-backlogged store. `None`
    /// while nothing is eligible under the staleness bound (the worker
    /// waits) — or forever once every queue drained (the worker exits).
    fn claim(&mut self, worker: usize, n_workers: usize, staleness: usize) -> Claim {
        let eligible = |q: &VecDeque<MicroBatch>| {
            q.front()
                .is_some_and(|t| t.run <= self.trained + staleness)
        };
        let mut any_pending = false;
        // Home pass: stores this worker is responsible for.
        let mut pick: Option<(usize, bool)> = None;
        for (s, q) in self.pending.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            any_pending = true;
            if s % n_workers == worker && eligible(q) {
                pick = Some((s, false));
                break;
            }
        }
        if pick.is_none() {
            // Steal pass: deepest eligible backlog anywhere.
            let mut best_len = 0;
            for (s, q) in self.pending.iter().enumerate() {
                if q.len() > best_len && eligible(q) {
                    best_len = q.len();
                    pick = Some((s, true));
                }
            }
        }
        match pick {
            Some((s, stolen)) => {
                let task = match self.pending[s].pop_front() {
                    Some(t) => t,
                    None => return Claim::Wait, // unreachable: guarded above
                };
                if stolen {
                    self.steals += 1;
                }
                if task.run > self.trained {
                    self.stale_steps += 1;
                }
                Claim::Task(task)
            }
            None if any_pending => Claim::Wait,
            None => Claim::Done,
        }
    }
}

enum Claim {
    Task(MicroBatch),
    Wait,
    Done,
}

/// Runs FT-DMP fine-tuning across `stores` with the 1F1B micro-batch
/// pipeline, updating the Tuner's master model and redistributing it to
/// every PipeStore as a compressed delta.
///
/// Worker threads claim `(store, run, micro-batch)` extraction tasks
/// from per-store queues — stealing from a backlogged store when their
/// own queues drain — while the caller thread trains runs in order as
/// their features complete, at most [`FtdmpConfig::staleness`] runs
/// behind extraction. Results are bit-identical to
/// [`ftdmp_fine_tune_reference`] at every staleness bound and worker
/// count: features depend only on the frozen prefix and are gathered in
/// deterministic `(store, micro-batch)` order.
///
/// # Errors
///
/// [`FtdmpError`] when `stores` is empty, `n_run` is zero, a shard is
/// smaller than `n_run`, or a shard's label space exceeds the model's.
pub fn ftdmp_fine_tune<R: Rng + ?Sized>(
    tuner: &mut Tuner,
    stores: &mut [PipeStore],
    config: &FtdmpConfig,
    rng: &mut R,
) -> Result<FtdmpReport, FtdmpError> {
    validate(tuner, stores, config)?;
    let record = telemetry::enabled();

    // 1. Distribute the current master to every store.
    let timer = record.then(|| phase_hist("distribute").start_timer());
    for s in stores.iter_mut() {
        s.install_model(tuner.model().clone());
    }
    let model_before = tuner.model().clone();
    let version_before = tuner.version();
    timer.map(|t| t.observe_and_disarm());

    // 2. Build the task table: every run slice of every store, split
    // into contiguous micro-batches. Concatenating completed slots in
    // (store, mb) order reproduces the reference row order exactly.
    let n_run = config.n_run;
    let mut pending: Vec<VecDeque<MicroBatch>> = Vec::with_capacity(stores.len());
    let mut slots: Vec<Vec<Vec<Option<(Tensor, Vec<usize>)>>>> =
        vec![Vec::with_capacity(stores.len()); n_run];
    let mut remaining = vec![0usize; n_run];
    let mut micro_batches = 0usize;
    for (si, s) in stores.iter().enumerate() {
        let n = s.shard_len();
        let mut q = VecDeque::new();
        for (run, rem) in remaining.iter_mut().enumerate() {
            let lo = run * n / n_run;
            let hi = (run + 1) * n / n_run;
            let n_mb = config.micro_batches_for(hi - lo);
            for mb in 0..n_mb {
                let mlo = lo + mb * (hi - lo) / n_mb;
                let mhi = lo + (mb + 1) * (hi - lo) / n_mb;
                q.push_back(MicroBatch {
                    store: si,
                    run,
                    mb,
                    lo: mlo,
                    hi: mhi,
                });
            }
            slots[run].push(vec![None; n_mb]);
            *rem += n_mb;
            micro_batches += n_mb;
        }
        pending.push(q);
    }

    let n_workers = ndpipe_data::deflate::configured_threads()
        .max(1)
        .min(stores.len());
    let state = Mutex::new(SchedState {
        pending,
        slots,
        remaining,
        trained: 0,
        steals: 0,
        stale_steps: 0,
    });
    let wake = Condvar::new();
    let engine_cfg = EngineConfig::default();
    let staleness = config.staleness;
    let stores_shared: &[PipeStore] = stores;

    let mut run_losses = Vec::with_capacity(n_run);
    let mut feature_bytes = 0usize;
    let mut examples = 0usize;
    let mut bubble_secs = 0.0f64;

    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let state = &state;
            let wake = &wake;
            let engine_cfg = &engine_cfg;
            scope.spawn(move || loop {
                let task = {
                    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        match st.claim(w, n_workers, staleness) {
                            Claim::Task(t) => break t,
                            Claim::Done => return,
                            Claim::Wait => {
                                st = wake
                                    .wait(st)
                                    .unwrap_or_else(|e| e.into_inner());
                            }
                        }
                    }
                };
                let out = stores_shared[task.store]
                    .extract_features_batched(task.lo..task.hi, engine_cfg)
                    .0;
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.slots[task.run][task.store][task.mb] = Some(out);
                st.remaining[task.run] -= 1;
                drop(st);
                wake.notify_all();
            });
        }

        // Tuner side: train runs in order as their features land.
        for run in 0..n_run {
            let t0 = Instant::now();
            let run_slots = {
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                while st.remaining[run] > 0 {
                    st = wake.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                std::mem::take(&mut st.slots[run])
            };
            bubble_secs += t0.elapsed().as_secs_f64();

            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for per_store in &run_slots {
                for slot in per_store {
                    if let Some((f, l)) = slot {
                        feature_bytes += f.len() * 4;
                        for i in 0..l.len() {
                            rows.push(f.row(i));
                        }
                        labels.extend_from_slice(l);
                    }
                }
            }
            examples += labels.len();
            let features = Tensor::stack_rows(&rows);
            let timer = record.then(|| phase_hist("train").start_timer());
            let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
            timer.map(|t| t.observe_and_disarm());
            run_losses.push(loss);

            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            st.trained = run + 1;
            drop(st);
            wake.notify_all();
        }
    });

    let (steals, stale_steps) = {
        let st = state.lock().unwrap_or_else(|e| e.into_inner());
        (st.steals, st.stale_steps)
    };

    // 3. Redistribute the fine-tuned model as Check-N-Run deltas,
    // stamped with the Tuner's version span so replicas can audit
    // staleness.
    let timer = record.then(|| phase_hist("redistribute").start_timer());
    let delta = tuner
        .delta_from(&model_before)
        .with_versions(version_before, tuner.version());
    let mut distribution_bytes = 0usize;
    for s in stores.iter_mut() {
        if let Some(replica) = s.model_mut() {
            if delta.apply(replica).is_ok() {
                distribution_bytes += delta.wire_bytes();
            }
        }
    }
    timer.map(|t| t.observe_and_disarm());

    let schedule = ScheduleStats {
        micro_batches,
        steals,
        stale_steps,
        bubble_secs,
    };
    record_job_counters(feature_bytes, &schedule);

    Ok(FtdmpReport {
        run_losses,
        feature_bytes,
        distribution_bytes,
        distribution_reduction: delta.traffic_reduction(),
        examples,
        schedule,
    })
}

/// The historical run-at-a-time FT-DMP schedule, kept verbatim as the
/// oracle: every run's extraction fully completes (one barrier per run)
/// before the Tuner trains, and no work ever crosses run boundaries.
/// [`ftdmp_fine_tune`] must match this bit-for-bit at any staleness
/// bound; the equivalence tests below and the `ftdmp_pipeline` bench
/// both pin that.
///
/// # Errors
///
/// Same [`FtdmpError`] conditions as [`ftdmp_fine_tune`].
pub fn ftdmp_fine_tune_reference<R: Rng + ?Sized>(
    tuner: &mut Tuner,
    stores: &mut [PipeStore],
    config: &FtdmpConfig,
    rng: &mut R,
) -> Result<FtdmpReport, FtdmpError> {
    validate(tuner, stores, config)?;
    let record = telemetry::enabled();

    // 1. Distribute the current master to every store.
    let timer = record.then(|| phase_hist("distribute").start_timer());
    for s in stores.iter_mut() {
        s.install_model(tuner.model().clone());
    }
    let model_before = tuner.model().clone();
    let version_before = tuner.version();
    timer.map(|t| t.observe_and_disarm());

    // 2. Pipeline runs: extract (parallel) then tune.
    let mut run_losses = Vec::with_capacity(config.n_run);
    let mut feature_bytes = 0usize;
    let mut examples = 0usize;
    let engine_cfg = EngineConfig::default();
    // Concurrent store extractions are capped by NDPIPE_THREADS. Stores
    // are claimed dynamically from the shared worker pool, and each
    // store's features land in its own index slot, so the gathered
    // order is deterministic at any cap.
    let max_concurrent = ndpipe_data::deflate::configured_threads().max(1);
    for run in 0..config.n_run {
        let timer = record.then(|| phase_hist("extract").start_timer());
        let stores_shared: &[PipeStore] = stores;
        let extracted: Vec<(Tensor, Vec<usize>)> =
            tensor::pool::map_indexed(max_concurrent, stores_shared.len(), |i| {
                let s = &stores_shared[i];
                let n = s.shard_len();
                let lo = run * n / config.n_run;
                let hi = (run + 1) * n / config.n_run;
                s.extract_features_batched(lo..hi, &engine_cfg).0
            })
            .unwrap_or_else(|e| panic!("pipestore extraction failed: {e}"));
        timer.map(|t| t.observe_and_disarm());

        // Gather at the Tuner.
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        for (f, l) in &extracted {
            feature_bytes += f.len() * 4;
            for i in 0..l.len() {
                rows.push(f.row(i));
            }
            labels.extend_from_slice(l);
        }
        examples += labels.len();
        let features = Tensor::stack_rows(&rows);

        let timer = record.then(|| phase_hist("train").start_timer());
        let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
        timer.map(|t| t.observe_and_disarm());
        run_losses.push(loss);
    }

    // 3. Redistribute the fine-tuned model as Check-N-Run deltas.
    let timer = record.then(|| phase_hist("redistribute").start_timer());
    let delta = tuner
        .delta_from(&model_before)
        .with_versions(version_before, tuner.version());
    let mut distribution_bytes = 0usize;
    for s in stores.iter_mut() {
        if let Some(replica) = s.model_mut() {
            if delta.apply(replica).is_ok() {
                distribution_bytes += delta.wire_bytes();
            }
        }
    }
    timer.map(|t| t.observe_and_disarm());
    record_job_counters(feature_bytes, &ScheduleStats::default());

    Ok(FtdmpReport {
        run_losses,
        feature_bytes,
        distribution_bytes,
        distribution_reduction: delta.traffic_reduction(),
        examples,
        schedule: ScheduleStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{Mlp, Trainer};
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(
        rng: &mut StdRng,
        n_stores: usize,
        per_class: usize,
    ) -> (Tuner, Vec<PipeStore>, LabeledDataset) {
        let u = ClassUniverse::new(16, 8, 5, 0.25, rng);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..u.classes() {
            for _ in 0..per_class {
                rows.push(u.sample(c, rng));
                labels.push(c);
            }
        }
        let all = LabeledDataset::new(rows, labels, u.classes()).shuffled(rng);
        let test_rows: Vec<Tensor> = (0..100).map(|i| u.sample(i % 5, rng)).collect();
        let test_labels: Vec<usize> = (0..100).map(|i| i % 5).collect();
        let test = LabeledDataset::new(test_rows, test_labels, 5);

        let model = Mlp::new(&[16, 32, 24, 5], 2, rng);
        let tuner = Tuner::new(
            model,
            TrainConfig {
                batch: 16,
                ..TrainConfig::default()
            },
        );
        let stores = all
            .shards(n_stores)
            .into_iter()
            .enumerate()
            .map(|(i, shard)| PipeStore::new(i, shard))
            .collect();
        (tuner, stores, test)
    }

    fn clone_stores(stores: &[PipeStore]) -> Vec<PipeStore> {
        stores
            .iter()
            .map(|s| PipeStore::new(s.id(), s.shard().clone()))
            .collect()
    }

    #[test]
    fn distributed_fine_tuning_learns() {
        let mut rng = StdRng::seed_from_u64(71);
        let (mut tuner, mut stores, test) = world(&mut rng, 4, 40);
        let before = Trainer::evaluate(tuner.model(), &test);
        let cfg = FtdmpConfig {
            n_run: 1,
            epochs_per_run: 20,
            train: *tuner.config(),
            ..FtdmpConfig::default()
        };
        let report = ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng).expect("valid job");
        let after = Trainer::evaluate(tuner.model(), &test);
        assert!(
            after.top1 > before.top1 + 0.2,
            "{:.3} -> {:.3}",
            before.top1,
            after.top1
        );
        assert_eq!(report.examples, 200);
        assert!(report.feature_bytes > 0);
        assert!(report.schedule.micro_batches >= 4);
    }

    #[test]
    fn stores_end_up_with_the_master_model() {
        let mut rng = StdRng::seed_from_u64(72);
        let (mut tuner, mut stores, _) = world(&mut rng, 3, 20);
        let cfg = FtdmpConfig {
            n_run: 2,
            epochs_per_run: 5,
            train: *tuner.config(),
            ..FtdmpConfig::default()
        };
        ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng).expect("valid job");
        let x = Tensor::randn(&[4, 16], &mut rng);
        let master = tuner.model().forward(&x);
        for s in &stores {
            let replica = s.model().unwrap().forward(&x);
            for (a, b) in master.data().iter().zip(replica.data()) {
                assert!((a - b).abs() < 0.05, "replica diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn delta_distribution_is_cheap() {
        let mut rng = StdRng::seed_from_u64(73);
        let (mut tuner, mut stores, _) = world(&mut rng, 2, 20);
        let cfg = FtdmpConfig::default();
        let report = ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng).expect("valid job");
        assert!(
            report.distribution_reduction > 3.0,
            "reduction {}",
            report.distribution_reduction
        );
    }

    #[test]
    fn pipelined_accuracy_close_to_unpipelined_fig17() {
        let mut rng = StdRng::seed_from_u64(74);
        let (tuner0, stores0, test) = world(&mut rng, 4, 60);

        let accuracy = |n_run: usize, rng: &mut StdRng| {
            let mut tuner = tuner0.clone();
            let mut stores = clone_stores(&stores0);
            let cfg = FtdmpConfig {
                n_run,
                epochs_per_run: 30 / n_run,
                train: *tuner0.config(),
                ..FtdmpConfig::default()
            };
            ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, rng).expect("valid job");
            Trainer::evaluate(tuner.model(), &test).top1
        };
        let a1 = accuracy(1, &mut rng);
        let a3 = accuracy(3, &mut rng);
        assert!((a1 - a3).abs() < 0.08, "N_run=1 {a1:.3} vs N_run=3 {a3:.3}");
    }

    #[test]
    fn new_classes_require_widening_first() {
        let mut rng = StdRng::seed_from_u64(75);
        let (mut tuner, mut stores, _) = world(&mut rng, 2, 10);
        // Pretend a shard saw classes beyond the model's space.
        let wide = stores[0].shard().widened(9);
        stores[0].set_shard(wide);
        let err = ftdmp_fine_tune(&mut tuner, &mut stores, &FtdmpConfig::default(), &mut rng)
            .expect_err("label space exceeds the model");
        assert!(
            matches!(
                err,
                FtdmpError::ClassOverflow {
                    shard_classes: 9,
                    model_classes: 5,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("widen the Tuner model"));
    }

    #[test]
    fn entry_checks_are_typed_errors() {
        let mut rng = StdRng::seed_from_u64(76);
        let (mut tuner, mut stores, _) = world(&mut rng, 2, 10);
        assert_eq!(
            ftdmp_fine_tune(&mut tuner, &mut [], &FtdmpConfig::default(), &mut rng).unwrap_err(),
            FtdmpError::NoStores
        );
        let zero = FtdmpConfig {
            n_run: 0,
            ..FtdmpConfig::default()
        };
        assert_eq!(
            ftdmp_fine_tune(&mut tuner, &mut stores, &zero, &mut rng).unwrap_err(),
            FtdmpError::ZeroRuns
        );
        let deep = FtdmpConfig {
            n_run: 10_000,
            ..FtdmpConfig::default()
        };
        assert!(matches!(
            ftdmp_fine_tune(&mut tuner, &mut stores, &deep, &mut rng).unwrap_err(),
            FtdmpError::ShardTooSmall { n_run: 10_000, .. }
        ));
    }

    /// The pipeline at any staleness bound and micro-batch size must be
    /// bit-identical to the run-at-a-time oracle: identical losses,
    /// identical master model, identical replicas, identical byte
    /// accounting. Features depend only on the frozen prefix and are
    /// gathered in deterministic order, so the schedule cannot leak
    /// into results.
    #[test]
    fn pipelined_schedule_is_bit_identical_to_reference() {
        let mut seed_rng = StdRng::seed_from_u64(77);
        let (tuner0, stores0, _) = world(&mut seed_rng, 4, 30);
        let base = FtdmpConfig {
            n_run: 3,
            epochs_per_run: 4,
            train: *tuner0.config(),
            ..FtdmpConfig::default()
        };

        let mut rng = StdRng::seed_from_u64(7_777);
        let mut ref_tuner = tuner0.clone();
        let mut ref_stores = clone_stores(&stores0);
        let reference =
            ftdmp_fine_tune_reference(&mut ref_tuner, &mut ref_stores, &base, &mut rng)
                .expect("reference job");

        for (staleness, micro_batch) in [(0, 0), (0, 7), (1, 0), (2, 3)] {
            let cfg = FtdmpConfig {
                staleness,
                micro_batch,
                ..base
            };
            let mut rng = StdRng::seed_from_u64(7_777);
            let mut tuner = tuner0.clone();
            let mut stores = clone_stores(&stores0);
            let report =
                ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng).expect("pipelined job");
            assert_eq!(
                report.run_losses, reference.run_losses,
                "losses diverged at S={staleness} mb={micro_batch}"
            );
            assert_eq!(report.examples, reference.examples);
            assert_eq!(report.feature_bytes, reference.feature_bytes);
            assert_eq!(
                tuner.model().to_bytes(),
                ref_tuner.model().to_bytes(),
                "master model diverged at S={staleness} mb={micro_batch}"
            );
            for (a, b) in stores.iter().zip(&ref_stores) {
                assert_eq!(
                    a.model().unwrap().to_bytes(),
                    b.model().unwrap().to_bytes(),
                    "replica diverged at S={staleness} mb={micro_batch}"
                );
            }
            if staleness == 0 {
                assert_eq!(report.schedule.stale_steps, 0, "S=0 must never run ahead");
            }
        }
    }

    #[test]
    fn slow_store_converges_and_gets_robbed() {
        let mut rng = StdRng::seed_from_u64(78);
        let (mut tuner, mut stores, _) = world(&mut rng, 4, 20);
        stores[0].set_extract_delay(Some(std::time::Duration::from_micros(200)));
        let cfg = FtdmpConfig {
            n_run: 2,
            epochs_per_run: 3,
            micro_batch: 5,
            staleness: 1,
            train: *tuner.config(),
        };
        let report = ftdmp_fine_tune(&mut tuner, &mut stores, &cfg, &mut rng).expect("valid job");
        assert_eq!(report.run_losses.len(), 2);
        // Steal count depends on available parallelism; with a single
        // worker thread every store is "home", so only assert it when
        // more than one worker could have run.
        if ndpipe_data::deflate::configured_threads() > 1 {
            assert!(
                report.schedule.steals > 0,
                "no steals despite a slow store: {:?}",
                report.schedule
            );
        }
    }

    #[test]
    fn micro_batch_sizing() {
        let auto = FtdmpConfig::default();
        assert_eq!(auto.micro_batches_for(0), 1);
        assert_eq!(auto.micro_batches_for(3), 3);
        assert_eq!(auto.micro_batches_for(100), AUTO_MICRO_BATCHES);
        let fixed = FtdmpConfig {
            micro_batch: 8,
            ..FtdmpConfig::default()
        };
        assert_eq!(fixed.micro_batches_for(7), 1);
        assert_eq!(fixed.micro_batches_for(8), 1);
        assert_eq!(fixed.micro_batches_for(17), 3);
    }
}
