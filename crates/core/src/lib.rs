//! # NDPipe — near-data fine-tuning and inference for photo storage
//!
//! Reproduction of *"NDPipe: Exploiting Near-data Processing for Scalable
//! Inference and Continuous Training in Photo Storage"* (ASPLOS 2024).
//!
//! NDPipe pushes DNN fine-tuning and offline inference into storage
//! servers ("PipeStores") equipped with commodity GPUs, coordinated by a
//! training server ("Tuner"). This crate implements the paper's four
//! pillars plus the end-to-end photo-storage system around them:
//!
//! - [`ftdmp`] — **FT-DMP**: fine-tuning-based data & model parallelism.
//!   Weight-freeze layers replicated across PipeStores (forward only, no
//!   synchronization), trainable classifier on the Tuner. Includes the
//!   pipelined `N_run` variant of §5.2.
//! - [`apo`] — **APO**: automated model partitioning & organization
//!   (Algorithm 1 + `FindBestPoint`), choosing the partition point and
//!   PipeStore count that balance the two pipeline stages.
//! - [`npe`] — **NPE**: the near-data processing engine. 3-stage
//!   pipelining (load / preprocess / FE&Cl), preprocessing offload,
//!   DEFLATE-compressed preprocessed binaries, batch enlargement — both
//!   as a capacity model (Fig 12) and as a *functional* path over real
//!   blobs and the real codec.
//! - [`checknrun`] — **Check-N-Run-style model distribution**: quantized,
//!   DEFLATE-compressed deltas of the fine-tuned layers instead of whole
//!   models (§5, up to 427× traffic reduction in the paper).
//! - [`pipestore`] / [`tuner`] — the two server roles, functional:
//!   PipeStores hold photo shards and extract features with the real
//!   mini-model forward pass (in parallel via crossbeam); the Tuner
//!   trains the classifier tail on shipped features.
//! - [`labeldb`] — the versioned label database that the *outdated label*
//!   problem lives in, plus offline-relabel bookkeeping (Table 1).
//! - [`system`] — the end-to-end facade: online inference on upload,
//!   offline inference on model refresh, continuous fine-tuning.
//! - [`experiment`] — reusable drivers for the paper's accuracy
//!   experiments (Fig 4, Fig 17, Tables 1–2) shared by benches, examples
//!   and tests.
//! - [`extensions`] — the §7.1 sketches implemented: video key-frame
//!   summarization, audio spectrogram transformation, and document
//!   embeddings, all producing compact near-data representations.
//!
//! # Quickstart
//!
//! ```
//! use ndpipe::system::{NdPipeSystem, SystemConfig};
//! use ndpipe_data::DatasetSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut system = NdPipeSystem::bootstrap(
//!     SystemConfig::small_test(),
//!     DatasetSpec::tiny(),
//!     &mut rng,
//! );
//! // Photos are already sharded across PipeStores; fine-tune near data.
//! let report = system.fine_tune(&mut rng);
//! assert!(report.final_accuracy.top1 > 0.0);
//! ```

pub mod apo;
pub mod checknrun;
pub mod experiment;
pub mod extensions;
pub mod ftdmp;
pub mod labeldb;
pub mod npe;
pub mod online;
pub mod placement;
pub mod pipestore;
pub mod rpc;
pub mod sanitize;
pub mod system;
pub mod tuner;

pub use apo::{pareto_front, ApoInput, ApoResult, ParetoFront, ParetoInput, ParetoPoint};
pub use checknrun::ModelDelta;
pub use ftdmp::{
    ftdmp_fine_tune, ftdmp_fine_tune_reference, FtdmpConfig, FtdmpError, FtdmpReport,
    ScheduleStats,
};
pub use labeldb::LabelDb;
pub use placement::{PlacementError, PlacementMap};
pub use pipestore::PipeStore;
pub use tuner::Tuner;
