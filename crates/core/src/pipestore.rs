//! The PipeStore: a storage server with a commodity accelerator.
//!
//! A PipeStore owns a shard of the photo pool. It stores, per photo, the
//! raw blob and a DEFLATE-compressed preprocessed binary (§5.4's
//! offload-and-compress design), and runs near-data work with its local
//! model replica: feature extraction for FT-DMP and label extraction for
//! offline inference.

use crate::npe::engine::{self, EngineConfig, PipelineStats};
use crate::placement::PlacementMap;
use crate::rpc::wire::PhotoRecord;
use dnn::Mlp;
use ndpipe_data::deflate;
use ndpipe_data::{LabeledDataset, Photo, PhotoId};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tensor::{default_math_policy, MathPolicy, Tensor};

/// Shard count of the photo map. Sixteen is plenty to decorrelate the
/// event-driven server's worker pool (a handful of threads) while
/// keeping the whole-map snapshot cheap.
const PHOTO_SHARDS: usize = 16;

/// The photo/sidecar map, sharded `RwLock`-per-bucket so concurrent
/// readers (offline inference, persistence, scrapes) never contend with
/// each other and writers only serialize within one bucket. Every entry
/// carries a monotone insertion sequence number so whole-map snapshots
/// reproduce the exact insertion order the old `Vec` gave — ordering
/// that offline inference relies on to align photos with shard rows.
#[derive(Debug)]
struct PhotoShards {
    buckets: Box<[RwLock<Vec<(u64, StoredPhoto)>>]>,
    next_seq: AtomicU64,
    count: AtomicUsize,
}

impl PhotoShards {
    fn new() -> Self {
        PhotoShards {
            buckets: (0..PHOTO_SHARDS).map(|_| RwLock::new(Vec::new())).collect(),
            next_seq: AtomicU64::new(0),
            count: AtomicUsize::new(0),
        }
    }

    fn bucket(&self, id: PhotoId) -> &RwLock<Vec<(u64, StoredPhoto)>> {
        // Modulo keeps the index in range for any id; the expect can
        // never fire with a non-empty bucket array.
        &self.buckets[id.0 as usize % self.buckets.len()]
    }

    fn insert(&self, stored: StoredPhoto) {
        // The sequence number only has to be unique and monotone per
        // insert; ordering relative to other memory is established by
        // the bucket lock below.
        // ndlint: allow(relaxed, reason = "unique ticket draw; publication happens under the bucket lock")
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.bucket(stored.photo.id).write().push((seq, stored));
        // ndlint: allow(relaxed, reason = "pure tally; readers only need an approximate count")
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self, id: PhotoId) -> Option<StoredPhoto> {
        self.bucket(id)
            .read()
            .iter()
            .find(|(_, p)| p.photo.id == id)
            .map(|(_, p)| p.clone())
    }

    fn len(&self) -> usize {
        // ndlint: allow(relaxed, reason = "pure tally; nothing is published through it")
        self.count.load(Ordering::Relaxed)
    }

    /// All photos in insertion order (sorted by sequence number).
    fn snapshot(&self) -> Vec<StoredPhoto> {
        let mut all: Vec<(u64, StoredPhoto)> = Vec::with_capacity(self.len());
        for b in self.buckets.iter() {
            all.extend(b.read().iter().cloned());
        }
        all.sort_unstable_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, p)| p).collect()
    }

    /// Drains every bucket, returning the photos in insertion order.
    fn take_all(&self) -> Vec<StoredPhoto> {
        let mut all: Vec<(u64, StoredPhoto)> = Vec::with_capacity(self.len());
        for b in self.buckets.iter() {
            all.append(&mut b.write());
        }
        // ndlint: allow(relaxed, reason = "pure tally reset under every bucket's write lock")
        self.count.store(0, Ordering::Relaxed);
        all.sort_unstable_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, p)| p).collect()
    }
}

/// Accumulated NPE engine activity on one store: the most recent run's
/// [`PipelineStats`] plus lifetime totals. One source of truth for both
/// the Fig 12 bench and the telemetry exporters.
#[derive(Debug, Clone, Default)]
pub struct NpeActivity {
    /// Stats of the most recent pipeline run, if any ran.
    pub last: Option<PipelineStats>,
    /// Number of pipeline runs.
    pub runs: u64,
    /// Items that left the FE stage, summed over runs.
    pub items: u64,
    /// Wall-clock seconds, summed over runs.
    pub wall_secs: f64,
}

/// One stored photo entry: raw blob plus the compressed preprocessed
/// binary sidecar.
#[derive(Debug, Clone)]
pub struct StoredPhoto {
    /// The photo and its metadata.
    pub photo: Photo,
    /// DEFLATE-compressed preprocessed binary.
    pub compressed_binary: Vec<u8>,
    /// Uncompressed preprocessed-binary size, bytes (for ratio stats).
    pub preproc_bytes: usize,
}

/// A storage server holding a photo shard and a weight-freeze model
/// replica for near-data processing.
#[derive(Debug)]
pub struct PipeStore {
    id: usize,
    shard: LabeledDataset,
    photos: PhotoShards,
    model: Option<Mlp>,
    /// The published immutable model snapshot, keyed on
    /// [`Mlp::weights_version`]: readers grab an `Arc` clone without
    /// touching (or blocking) the mutable replica. Re-published lazily
    /// whenever the version diverges, so Check-N-Run delta application
    /// invalidates it automatically.
    published: RwLock<Option<(u64, Arc<Mlp>)>>,
    /// The placement map this store last accepted (epoch-monotone).
    placement: RwLock<Option<PlacementMap>>,
    /// Replica copies of *other* nodes' training shards, keyed by the
    /// owning placement node id. FT-DMP reroutes a dead peer's
    /// extraction assignment here ([`PipeStore::shard_for`]).
    replica_shards: BTreeMap<u64, LabeledDataset>,
    metrics: Arc<telemetry::Registry>,
    npe: Mutex<NpeActivity>,
    /// Artificial per-extraction sleep, for straggler simulation in
    /// benches and soaks ([`PipeStore::set_extract_delay`]).
    extract_delay: Option<std::time::Duration>,
    /// The [`MathPolicy`] every FE forward on this store runs under.
    /// Defaults to the process default (`NDPIPE_MATH` / `--math`);
    /// [`PipeStore::set_math_policy`] overrides per store so mixed
    /// fleets can be simulated in one process. Reported over RPC in
    /// `ShardInfo` so the Tuner can audit fleet uniformity.
    math: MathPolicy,
}

impl PipeStore {
    /// Creates a PipeStore over a data shard (no photos attached yet).
    pub fn new(id: usize, shard: LabeledDataset) -> Self {
        PipeStore {
            id,
            shard,
            photos: PhotoShards::new(),
            model: None,
            published: RwLock::new(None),
            placement: RwLock::new(None),
            replica_shards: BTreeMap::new(),
            metrics: Arc::new(telemetry::Registry::new()),
            npe: Mutex::new(NpeActivity::default()),
            extract_delay: None,
            math: default_math_policy(),
        }
    }

    /// The store's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The [`MathPolicy`] this store's feature-extraction paths use.
    pub fn math_policy(&self) -> MathPolicy {
        self.math
    }

    /// Overrides the FE [`MathPolicy`] for this store only (the
    /// constructor picks up the process default). Takes effect on the
    /// next extraction; results under a different policy than before
    /// are not comparable bit-for-bit.
    pub fn set_math_policy(&mut self, policy: MathPolicy) {
        self.math = policy;
    }

    /// Makes every feature-extraction call sleep for `delay` *per
    /// extracted row* first — a deliberate straggler for pipeline benches
    /// and the slow-peer soak (`None` restores full speed). The penalty
    /// scales with rows, not calls, so micro-batching a run does not
    /// change the total sleep but stolen rows escape it entirely.
    /// Results are unaffected; only wall-clock changes.
    pub fn set_extract_delay(&mut self, delay: Option<std::time::Duration>) {
        self.extract_delay = delay;
    }

    /// This store's own metric registry. Each PipeStore keeps local
    /// metrics (rather than the process [`telemetry::global`] registry)
    /// so co-located stores — common in tests and the simulated cluster —
    /// stay distinguishable, and the Tuner's scrape can label each
    /// store's snapshot by peer.
    pub fn metrics(&self) -> &Arc<telemetry::Registry> {
        &self.metrics
    }

    /// Stats of the most recent NPE pipeline run on this store, if any.
    pub fn last_pipeline_stats(&self) -> Option<PipelineStats> {
        self.npe.lock().expect("npe activity lock").last.clone()
    }

    /// Accumulated NPE engine activity (runs, items, wall time).
    pub fn npe_activity(&self) -> NpeActivity {
        self.npe.lock().expect("npe activity lock").clone()
    }

    /// Folds one pipeline run into the activity record and the metric
    /// registry. Metric recording is skipped while telemetry is
    /// disabled; the activity record always updates (it feeds the Fig 12
    /// bench, not just observability).
    fn record_npe(&self, stats: &PipelineStats) {
        {
            let mut acc = self.npe.lock().expect("npe activity lock");
            acc.runs += 1;
            acc.items += stats.fe.items as u64;
            acc.wall_secs += stats.wall_secs;
            acc.last = Some(stats.clone());
        }
        if !telemetry::enabled() {
            return;
        }
        let m = &self.metrics;
        for (name, s) in [
            ("load", stats.load),
            ("decode", stats.decode),
            ("fe", stats.fe),
        ] {
            m.histogram_with(
                "ndpipe_npe_stage_busy_seconds",
                &[("stage", name)],
                "per-run busy seconds of one NPE stage",
            )
            .observe(s.busy_secs);
            m.counter_with(
                "ndpipe_npe_stage_items_total",
                &[("stage", name)],
                "items that passed through one NPE stage",
            )
            .add(s.items as u64);
        }
        let occ = stats.occupancies();
        for (name, o) in [("load", occ[0]), ("decode", occ[1]), ("fe", occ[2])] {
            m.gauge_with(
                "ndpipe_npe_stage_occupancy",
                &[("stage", name)],
                "fraction of the last run's wall time the stage was busy",
            )
            .set(o);
        }
        m.counter(
            "ndpipe_npe_batches_total",
            "batched forward passes issued by the FE stage",
        )
        .add(stats.batches as u64);
        m.histogram(
            "ndpipe_npe_run_wall_seconds",
            "end-to-end wall time of one NPE pipeline run",
        )
        .observe(stats.wall_secs);
        for (queue, q) in [("in", stats.in_queue), ("mid", stats.mid_queue)] {
            m.gauge_with(
                "ndpipe_npe_queue_depth_mean",
                &[("queue", queue)],
                "mean sampled depth of an inter-stage queue, last run",
            )
            .set(q.mean());
            m.gauge_with(
                "ndpipe_npe_queue_depth_max",
                &[("queue", queue)],
                "max sampled depth of an inter-stage queue, last run",
            )
            .set(q.depth_max as f64);
        }
        m.counter_with(
            "ndpipe_npe_stage_errors_total",
            &[("stage", "decode")],
            "items dropped because a pipeline stage failed (decode error or contained panic)",
        )
        .add(stats.stage_errors as u64);
    }

    /// Number of training examples in the local shard.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// The local training shard.
    pub fn shard(&self) -> &LabeledDataset {
        &self.shard
    }

    /// Replaces the local shard (e.g. when new uploads land here).
    pub fn set_shard(&mut self, shard: LabeledDataset) {
        self.shard = shard;
    }

    /// The placement map this store currently holds (a clone).
    pub fn placement(&self) -> Option<PlacementMap> {
        let _w = crate::sanitize::order(crate::sanitize::RANK_PLACEMENT, "placement");
        self.placement.read().clone()
    }

    /// Accepts an epoch-numbered placement map. Epochs are monotone: a
    /// map older than the one held is refused, so a delayed publish can
    /// never roll placement backwards. Re-installing the held epoch is
    /// an idempotent success.
    ///
    /// # Errors
    ///
    /// Returns the held (newer) epoch when `map` is stale.
    pub fn install_placement(&self, map: PlacementMap) -> Result<u64, u64> {
        let w = crate::sanitize::order(crate::sanitize::RANK_PLACEMENT, "placement");
        let mut guard = self.placement.write();
        if let Some(held) = guard.as_ref() {
            if map.epoch() < held.epoch() {
                return Err(held.epoch());
            }
        }
        let epoch = map.epoch();
        *guard = Some(map);
        drop(guard);
        drop(w);
        if telemetry::enabled() {
            self.metrics
                .gauge(
                    "ndpipe_placement_epoch",
                    "epoch of the placement map this store holds",
                )
                .set(epoch as f64);
        }
        Ok(epoch)
    }

    /// Attaches a replica copy of another node's training shard, so
    /// this store can stand in for `node` during FT-DMP extraction.
    pub fn add_replica_shard(&mut self, node: u64, shard: LabeledDataset) {
        self.replica_shards.insert(node, shard);
    }

    /// Placement node ids whose shards this store replicates.
    pub fn replica_nodes(&self) -> Vec<u64> {
        self.replica_shards.keys().copied().collect()
    }

    /// The training shard for placement node `node`: the store's own
    /// shard when `node` is its id, otherwise an attached replica.
    pub fn shard_for(&self, node: u64) -> Option<&LabeledDataset> {
        if node == self.id as u64 {
            Some(&self.shard)
        } else {
            self.replica_shards.get(&node)
        }
    }

    /// Number of stored photos.
    pub fn photo_count(&self) -> usize {
        self.photos.len()
    }

    /// Stores a photo: compresses its preprocessed binary (shipped by the
    /// inference server under the §5.4 offload design) and keeps both.
    /// Takes `&self` — ingest lands in a sharded map, so concurrent
    /// stores (and concurrent readers) don't serialize on the store.
    pub fn store_photo(&self, photo: Photo, preprocessed: Vec<u8>) {
        let compressed = deflate::compress_chunked(&preprocessed, deflate::DEFAULT_CHUNK_SIZE);
        if telemetry::enabled() {
            self.metrics
                .counter("ndpipe_store_photos_total", "photos ingested by this store")
                .inc();
            self.metrics
                .counter(
                    "ndpipe_store_sidecar_bytes_total",
                    "compressed preprocessed-binary sidecar bytes written",
                )
                .add(compressed.len() as u64);
            self.metrics
                .counter(
                    "ndpipe_store_preproc_bytes_total",
                    "uncompressed preprocessed-binary bytes ingested",
                )
                .add(preprocessed.len() as u64);
        }
        self.photos.insert(StoredPhoto {
            photo,
            compressed_binary: compressed,
            preproc_bytes: preprocessed.len(),
        });
    }

    /// Looks up a stored photo by id (an owned clone — the entry lives
    /// behind a shard lock that must not be held across caller code).
    pub fn photo(&self, id: PhotoId) -> Option<StoredPhoto> {
        self.photos.get(id)
    }

    /// Adopts one replicated photo record off the wire: the sidecar
    /// arrives already chunked-DEFLATE compressed, so no re-preprocess
    /// or re-compress happens here. Idempotent — a record whose id is
    /// already stored is skipped (rebalance may legitimately retry),
    /// returning `false`.
    pub fn store_photo_record(&self, rec: PhotoRecord) -> bool {
        let id = PhotoId(rec.id);
        if self.photos.get(id).is_some() {
            return false;
        }
        if telemetry::enabled() {
            self.metrics
                .counter("ndpipe_store_photos_total", "photos ingested by this store")
                .inc();
            self.metrics
                .counter(
                    "ndpipe_store_sidecar_bytes_total",
                    "compressed preprocessed-binary sidecar bytes written",
                )
                .add(rec.sidecar.len() as u64);
            self.metrics
                .counter(
                    "ndpipe_store_preproc_bytes_total",
                    "uncompressed preprocessed-binary bytes ingested",
                )
                .add(rec.preproc_bytes as u64);
        }
        self.photos.insert(StoredPhoto {
            photo: Photo {
                id,
                class: rec.class as usize,
                day: rec.day as usize,
                blob: bytes::Bytes::from(rec.blob),
            },
            compressed_binary: rec.sidecar,
            preproc_bytes: rec.preproc_bytes as usize,
        });
        true
    }

    /// The wire-shaped record for one stored photo, for replication and
    /// rebalance reads.
    pub fn photo_record(&self, id: PhotoId) -> Option<PhotoRecord> {
        let stored = self.photos.get(id)?;
        Some(PhotoRecord {
            id: stored.photo.id.0,
            class: stored.photo.class as u32,
            day: stored.photo.day as u32,
            preproc_bytes: stored.preproc_bytes as u32,
            blob: stored.photo.blob.to_vec(),
            sidecar: stored.compressed_binary,
        })
    }

    /// Ids of every stored photo, ascending.
    pub fn photo_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .photos
            .snapshot()
            .into_iter()
            .map(|p| p.photo.id.0)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Mutates one stored photo in place under its shard lock, returning
    /// the closure's result (`None` if the id is unknown). Test and
    /// repair paths use this where they previously indexed the photo
    /// `Vec` directly.
    pub fn with_photo_mut<R>(
        &self,
        id: PhotoId,
        f: impl FnOnce(&mut StoredPhoto) -> R,
    ) -> Option<R> {
        let _w = crate::sanitize::order(crate::sanitize::RANK_PHOTOS, "photos");
        let mut bucket = self.photos.bucket(id).write();
        bucket
            .iter_mut()
            .find(|(_, p)| p.photo.id == id)
            .map(|(_, p)| f(p))
    }

    /// The stored photos, in insertion order (an owned snapshot).
    pub fn photos(&self) -> Vec<StoredPhoto> {
        self.photos.snapshot()
    }

    /// Removes and returns all stored photos (used when resharding moves
    /// a server's archive to its replacement).
    pub fn take_photos(&mut self) -> Vec<StoredPhoto> {
        self.photos.take_all()
    }

    /// Adopts already-compressed photos (the counterpart of
    /// [`PipeStore::take_photos`]).
    pub fn adopt_photos(&mut self, photos: Vec<StoredPhoto>) {
        for p in photos {
            self.photos.insert(p);
        }
    }

    /// Average storage overhead of the compressed sidecars relative to
    /// the raw blobs (the paper's 17.5 % figure before compression).
    ///
    /// Returns `None` when no photos are stored.
    pub fn sidecar_overhead(&self) -> Option<f64> {
        let photos = self.photos.snapshot();
        if photos.is_empty() {
            return None;
        }
        let raw: usize = photos.iter().map(|p| p.photo.size()).sum();
        let side: usize = photos.iter().map(|p| p.compressed_binary.len()).sum();
        Some(side as f64 / raw as f64)
    }

    /// Installs (or replaces) the local model replica and immediately
    /// publishes its immutable snapshot for lock-free readers.
    pub fn install_model(&mut self, model: Mlp) {
        self.model = Some(model);
        self.republish_model();
    }

    /// The local model replica, if one has been distributed.
    pub fn model(&self) -> Option<&Mlp> {
        self.model.as_ref()
    }

    /// Mutable model access (for applying Check-N-Run deltas). Mutation
    /// bumps the weight version, so the next [`PipeStore::model_snapshot`]
    /// republishes automatically; call [`PipeStore::republish_model`] to
    /// do it eagerly.
    pub fn model_mut(&mut self) -> Option<&mut Mlp> {
        self.model.as_mut()
    }

    /// The version key of the published snapshot path: the replica's
    /// current [`Mlp::weights_version`], `None` without a model.
    pub fn model_version(&self) -> Option<u64> {
        self.model.as_ref().map(Mlp::weights_version)
    }

    /// An immutable `Arc` snapshot of the model replica, arc-swap style:
    /// readers clone the `Arc` and run forwards without holding any
    /// store lock. The snapshot is keyed on [`Mlp::weights_version`] —
    /// if the replica changed since the last publication (install or
    /// delta apply), a fresh snapshot is published first, so readers can
    /// never observe half-applied weights.
    pub fn model_snapshot(&self) -> Option<Arc<Mlp>> {
        let model = self.model.as_ref()?;
        let v = model.weights_version();
        let _w = crate::sanitize::order(crate::sanitize::RANK_PUBLISHED, "published");
        if let Some((pv, arc)) = &*self.published.read() {
            if *pv == v {
                return Some(Arc::clone(arc));
            }
        }
        let arc = Arc::new(model.clone());
        *self.published.write() = Some((v, Arc::clone(&arc)));
        Some(arc)
    }

    /// Eagerly (re)publishes the model snapshot at the replica's current
    /// weight version (or clears it when no model is installed). The RPC
    /// server calls this right after applying a delta so concurrent
    /// `Infer` traffic flips to the new weights at a frame boundary.
    pub fn republish_model(&self) {
        let _w = crate::sanitize::order(crate::sanitize::RANK_PUBLISHED, "published");
        *self.published.write() = self
            .model
            .as_ref()
            .map(|m| (m.weights_version(), Arc::new(m.clone())));
    }

    /// FT-DMP Store-stage: runs the weight-freeze prefix over (a slice
    /// of) the local shard and returns `(features, labels)` to ship to
    /// the Tuner. Serial reference implementation — one forward over the
    /// whole slice; see [`PipeStore::extract_features_batched`] for the
    /// pipelined production path.
    ///
    /// # Panics
    ///
    /// Panics if no model is installed or the range is out of bounds.
    pub fn extract_features(&self, range: std::ops::Range<usize>) -> (Tensor, Vec<usize>) {
        let model = self.model.as_ref().expect("no model installed");
        assert!(range.end <= self.shard.len(), "range out of bounds");
        let idx: Vec<usize> = range.collect();
        let slice = self.shard.select(&idx);
        let features = model.features_with(slice.features(), self.math);
        (features, slice.labels().to_vec())
    }

    /// [`PipeStore::extract_features`] through the threaded NPE engine:
    /// rows stream through the 3-stage pipeline and the FE stage runs one
    /// batched forward per [`EngineConfig::batch`] rows. Features and
    /// labels are bit-identical to the serial path at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if no model is installed or the range is out of bounds.
    pub fn extract_features_batched(
        &self,
        range: std::ops::Range<usize>,
        cfg: &EngineConfig,
    ) -> ((Tensor, Vec<usize>), PipelineStats) {
        self.extract_on(&self.shard, range, cfg)
    }

    /// [`PipeStore::extract_features_batched`] over the *replica shard*
    /// of placement node `node` — the mid-sweep reroute path: a
    /// surviving replica extracts a dead peer's assignment with its own
    /// installed model, bit-identical to what the dead peer would have
    /// produced. `None` when this store holds no shard for `node`.
    ///
    /// # Panics
    ///
    /// Panics if no model is installed or the range is out of bounds.
    pub fn extract_features_batched_for(
        &self,
        node: u64,
        range: std::ops::Range<usize>,
        cfg: &EngineConfig,
    ) -> Option<((Tensor, Vec<usize>), PipelineStats)> {
        let shard = self.shard_for(node)?;
        Some(self.extract_on(shard, range, cfg))
    }

    fn extract_on(
        &self,
        shard: &LabeledDataset,
        range: std::ops::Range<usize>,
        cfg: &EngineConfig,
    ) -> ((Tensor, Vec<usize>), PipelineStats) {
        if let Some(delay) = self.extract_delay {
            // Straggler simulation only; never set on production paths.
            // Per *row*, so the penalty models a slow device: splitting a
            // run into micro-batches does not change the total sleep, but
            // every row stolen away by a healthy replica escapes it.
            std::thread::sleep(delay * range.len() as u32);
        }
        let model = self.model.as_ref().expect("no model installed");
        assert!(range.end <= shard.len(), "range out of bounds");
        let feature_dim = model.feature_dim();
        let (pairs, stats) = engine::run_pipeline(
            cfg,
            range,
            // Decode stage: fetch the (already preprocessed) row — the
            // FT-DMP path has no decompression work by design (§5.4's
            // fine-tune task reads preprocessed binaries).
            |_, i| (shard.features().row(i), shard.labels()[i]),
            |batch: Vec<(Tensor, usize)>| {
                let (rows, labels): (Vec<Tensor>, Vec<usize>) = batch.into_iter().unzip();
                let x = Tensor::stack_rows(&rows);
                let f = model.features_with(&x, self.math);
                labels
                    .into_iter()
                    .enumerate()
                    .map(|(r, l)| (f.row(r), l))
                    .collect()
            },
        );
        let (rows, labels): (Vec<Tensor>, Vec<usize>) = pairs.into_iter().unzip();
        let features = if rows.is_empty() {
            Tensor::zeros(&[0, feature_dim])
        } else {
            Tensor::stack_rows(&rows)
        };
        self.record_npe(&stats);
        ((features, labels), stats)
    }

    /// Persists every stored photo (raw blob + compressed sidecar) into a
    /// Haystack-style [`objstore::ObjectStore`]. Keys are shard-aware
    /// ([`objstore::keys`]): blobs under `keys::blob(store_id, photo)`,
    /// sidecars under `keys::sidecar(store_id, photo)` with the
    /// uncompressed length prepended; [`PipeStore::restore_photos`]
    /// inverts this. With replication the same `ObjectStore` can hold
    /// several stores' archives without key collisions.
    ///
    /// # Errors
    ///
    /// Propagates object-store I/O errors; a photo id outside the
    /// packed-key budget is [`objstore::StoreError::KeyOutOfRange`].
    pub fn persist_photos(
        &self,
        store: &mut objstore::ObjectStore,
    ) -> Result<usize, objstore::StoreError> {
        let shard_id = self.id as u64;
        let photos = self.photos.snapshot();
        for p in &photos {
            store.put(objstore::keys::blob(shard_id, p.photo.id.0)?, &p.photo.blob)?;
            let mut sidecar = Vec::with_capacity(4 + p.compressed_binary.len());
            sidecar.extend_from_slice(&(p.preproc_bytes as u32).to_le_bytes());
            sidecar.extend_from_slice(&p.compressed_binary);
            store.put(objstore::keys::sidecar(shard_id, p.photo.id.0)?, &sidecar)?;
        }
        store.sync()?;
        Ok(photos.len())
    }

    /// Reloads photos previously written by [`PipeStore::persist_photos`],
    /// replacing the in-memory photo list. Only keys in this store's
    /// shard keyspace are considered, so co-located archives of other
    /// stores are left alone. Photo class/day metadata is recovered from
    /// the synthetic blob header.
    ///
    /// # Errors
    ///
    /// Propagates object-store errors; corrupt sidecars are an error.
    pub fn restore_photos(
        &mut self,
        store: &mut objstore::ObjectStore,
    ) -> Result<usize, objstore::StoreError> {
        let shard_id = self.id as u64;
        let mut blob_keys: Vec<u64> = store
            .keys()
            .filter(|&k| objstore::keys::is_blob(k) && objstore::keys::shard_of(k) == shard_id)
            .collect();
        blob_keys.sort_unstable();
        let mut restored = Vec::with_capacity(blob_keys.len());
        for key in blob_keys {
            let Some(blob) = store.get(key)? else {
                continue;
            };
            let Some(sidecar) = store.get(key + 1)? else {
                continue; // blob without sidecar: skip
            };
            if blob.len() < 16 || sidecar.len() < 4 {
                return Err(objstore::StoreError::Corrupt {
                    offset: 0,
                    reason: "photo record too short",
                });
            }
            let class = u32::from_le_bytes(blob[4..8].try_into().expect("fixed")) as usize;
            let day = u32::from_le_bytes(blob[8..12].try_into().expect("fixed")) as usize;
            let preproc_bytes =
                u32::from_le_bytes(sidecar[..4].try_into().expect("fixed")) as usize;
            restored.push(StoredPhoto {
                photo: Photo {
                    id: PhotoId(objstore::keys::photo_of(key)),
                    class,
                    day,
                    blob: bytes::Bytes::from(blob),
                },
                compressed_binary: sidecar[4..].to_vec(),
                preproc_bytes,
            });
        }
        self.photos.take_all();
        for p in restored {
            self.photos.insert(p);
        }
        Ok(self.photos.len())
    }

    /// Offline inference over every stored photo: decompresses each
    /// preprocessed binary (integrity-checked), runs the full local
    /// model, and returns `(photo id, label)` pairs — the only bytes that
    /// leave the server.
    ///
    /// Runs through the threaded NPE engine with the default
    /// [`EngineConfig`]; results are bit-identical to
    /// [`PipeStore::offline_inference_serial`]. Corrupt sidecars are
    /// dropped and counted, not panicked on.
    ///
    /// # Panics
    ///
    /// Panics if no model is installed.
    pub fn offline_inference(&self) -> Vec<(PhotoId, usize)> {
        self.offline_inference_pipelined(&EngineConfig::default()).0
    }

    /// Serial reference implementation of offline inference: load,
    /// decompress and classify one photo at a time, one forward per
    /// photo. Kept as the ground truth the pipelined engine is checked
    /// against (and as the baseline the NPE bench compares to).
    ///
    /// # Panics
    ///
    /// Panics if no model is installed or a sidecar fails to decompress.
    pub fn offline_inference_serial(&self) -> Vec<(PhotoId, usize)> {
        let model = self.model.as_ref().expect("no model installed");
        let photos = self.photos.snapshot();
        let mut out = Vec::with_capacity(photos.len());
        for (i, stored) in photos.iter().enumerate() {
            let bin = deflate::decompress_framed(&stored.compressed_binary)
                .expect("stored sidecar is valid deflate");
            assert_eq!(bin.len(), stored.preproc_bytes, "sidecar corrupted");
            // Classify the corresponding shard row (photos and shard rows
            // are aligned by construction in `system`).
            let row = i % self.shard.len().max(1);
            let x = self.shard.features().row(row);
            let logits = model.forward(&x.reshape(&[1, x.len()]).expect("row reshape"));
            out.push((stored.photo.id, logits.argmax()));
        }
        out
    }

    /// Offline inference through the threaded 3-stage NPE engine (§5.4):
    /// a loader streams compressed sidecars, the decode pool inflates
    /// them in parallel, and the FE&Cl stage classifies whole batches
    /// with a single forward pass each. Returns the `(photo id, label)`
    /// pairs plus per-stage pipeline statistics.
    ///
    /// A corrupt sidecar no longer panics a decode-pool worker: the item
    /// is dropped, counted in `ndpipe_npe_stage_errors_total` (and
    /// [`PipelineStats::stage_errors`]), and every other photo still
    /// classifies.
    ///
    /// # Panics
    ///
    /// Panics if no model is installed.
    pub fn offline_inference_pipelined(
        &self,
        cfg: &EngineConfig,
    ) -> (Vec<(PhotoId, usize)>, PipelineStats) {
        let model = self.model.as_ref().expect("no model installed");
        let n_shard = self.shard.len().max(1);
        let photos = self.photos.snapshot();
        let (out, stats) = engine::run_pipeline_fallible(
            cfg,
            // Stage 1: fetch each photo's compressed sidecar.
            photos.into_iter().enumerate().map(|(i, stored)| {
                (
                    stored.photo.id,
                    stored.preproc_bytes,
                    stored.compressed_binary,
                    i,
                )
            }),
            // Stage 2: real DEFLATE inflation + integrity check, then
            // pick the classification input (photos and shard rows are
            // aligned by construction in `system`).
            |_, (id, preproc_bytes, compressed, i)| {
                let bin = deflate::decompress_framed(&compressed)
                    .map_err(|e| format!("photo {}: sidecar decompress failed: {e}", id.0))?;
                if bin.len() != preproc_bytes {
                    return Err(format!(
                        "photo {}: sidecar corrupted ({} != {} bytes)",
                        id.0,
                        bin.len(),
                        preproc_bytes
                    ));
                }
                Ok((id, self.shard.features().row(i % n_shard)))
            },
            // Stage 3: one batched forward, then a per-row argmax.
            |batch: Vec<(PhotoId, Tensor)>| {
                let (ids, rows): (Vec<PhotoId>, Vec<Tensor>) = batch.into_iter().unzip();
                let x = Tensor::stack_rows(&rows);
                let logits = model.forward(&x);
                ids.into_iter()
                    .enumerate()
                    .map(|(r, id)| (id, logits.row(r).argmax()))
                    .collect()
            },
        );
        self.record_npe(&stats);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpipe_data::photo::{preprocessed_binary, PhotoFactory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shard(rng: &mut StdRng) -> LabeledDataset {
        let u = ndpipe_data::ClassUniverse::new(8, 4, 3, 0.2, rng);
        let rows: Vec<Tensor> = (0..9).map(|i| u.sample(i % 3, rng)).collect();
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        LabeledDataset::new(rows, labels, 3)
    }

    fn model(rng: &mut StdRng) -> Mlp {
        Mlp::new(&[8, 12, 6, 3], 2, rng)
    }

    #[test]
    fn stores_photos_with_compressed_sidecars() {
        let mut rng = StdRng::seed_from_u64(41);
        let ps = PipeStore::new(0, shard(&mut rng));
        let mut factory = PhotoFactory::new(4096);
        for i in 0..3 {
            let p = factory.make(i, 0, &mut rng);
            let bin = preprocessed_binary(2048, &mut rng);
            ps.store_photo(p, bin);
        }
        assert_eq!(ps.photo_count(), 3);
        // Sidecars compress: stored bytes < raw preprocessed bytes.
        for p in ps.photos() {
            assert!(p.compressed_binary.len() < p.preproc_bytes);
        }
        let overhead = ps.sidecar_overhead().unwrap();
        assert!(overhead < 0.5, "overhead {overhead}");
    }

    #[test]
    fn feature_extraction_matches_model() {
        let mut rng = StdRng::seed_from_u64(42);
        let s = shard(&mut rng);
        let m = model(&mut rng);
        let mut ps = PipeStore::new(1, s.clone());
        ps.install_model(m.clone());
        let (feats, labels) = ps.extract_features(0..4);
        assert_eq!(feats.dims(), &[4, 6]);
        assert_eq!(labels, &s.labels()[0..4]);
        // Same computation as calling the model directly.
        let direct = m.features(&s.select(&[0, 1, 2, 3]).features().clone());
        assert_eq!(feats.data(), direct.data());
    }

    #[test]
    fn offline_inference_returns_label_per_photo() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut ps = PipeStore::new(2, shard(&mut rng));
        ps.install_model(model(&mut rng));
        let mut factory = PhotoFactory::new(1024);
        for i in 0..5 {
            let p = factory.make(i % 3, 0, &mut rng);
            ps.store_photo(p, preprocessed_binary(512, &mut rng));
        }
        let labels = ps.offline_inference();
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|&(_, l)| l < 3));
    }

    #[test]
    fn pipelined_inference_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut ps = PipeStore::new(6, shard(&mut rng));
        ps.install_model(model(&mut rng));
        let mut factory = PhotoFactory::new(1024);
        for i in 0..37 {
            let p = factory.make(i % 3, 0, &mut rng);
            ps.store_photo(p, preprocessed_binary(512, &mut rng));
        }
        let serial = ps.offline_inference_serial();
        // Identical labels at every batch size and worker count — the
        // determinism the NDPIPE_THREADS knob promises.
        for (batch, workers) in [(1, 1), (3, 2), (8, 4), (128, 2)] {
            let cfg = EngineConfig {
                batch,
                decomp_workers: workers,
                queue_depth: 4,
            };
            let (out, stats) = ps.offline_inference_pipelined(&cfg);
            assert_eq!(out, serial, "batch={batch} workers={workers}");
            assert_eq!(stats.fe.items, 37);
            assert_eq!(stats.decode.items, 37);
            assert_eq!(stats.batches, 37usize.div_ceil(batch));
        }
        // The default path is the pipelined one.
        assert_eq!(ps.offline_inference(), serial);
    }

    #[test]
    fn corrupt_sidecar_is_dropped_counted_and_isolated() {
        telemetry::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(50);
        let mut ps = PipeStore::new(9, shard(&mut rng));
        ps.install_model(model(&mut rng));
        let mut factory = PhotoFactory::new(1024);
        for i in 0..12 {
            let p = factory.make(i % 3, 0, &mut rng);
            ps.store_photo(p, preprocessed_binary(512, &mut rng));
        }
        let serial = ps.offline_inference_serial();

        // Clobber one photo's sidecar past recognition (frame magic gone).
        let victim = ps.photos()[5].photo.id;
        ps.with_photo_mut(victim, |p| p.compressed_binary.truncate(3))
            .expect("victim exists");

        let cfg = EngineConfig {
            batch: 4,
            decomp_workers: 2,
            queue_depth: 4,
        };
        let (out, stats) = ps.offline_inference_pipelined(&cfg);

        // The corrupt photo is dropped; every other photo still classifies
        // with results identical to the serial reference.
        let expect: Vec<(PhotoId, usize)> = serial
            .iter()
            .copied()
            .filter(|&(id, _)| id != victim)
            .collect();
        assert_eq!(out, expect);
        assert_eq!(stats.stage_errors, 1);
        assert_eq!(stats.fe.items, 11);
        let msg = stats.first_error.as_deref().expect("error recorded");
        assert!(
            msg.contains(&format!("photo {}", victim.0)),
            "error names the photo: {msg}"
        );

        // The drop is observable: the error counter reflects the run.
        let snap = ps.metrics().snapshot();
        assert_eq!(
            snap.counter_value("ndpipe_npe_stage_errors_total"),
            Some(1),
            "one dropped item counted"
        );
    }

    #[test]
    fn batched_extraction_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(48);
        let s = shard(&mut rng);
        let mut ps = PipeStore::new(7, s);
        ps.install_model(model(&mut rng));
        let (serial_f, serial_l) = ps.extract_features(0..9);
        for (batch, workers) in [(1, 1), (2, 3), (4, 2), (128, 1)] {
            let cfg = EngineConfig {
                batch,
                decomp_workers: workers,
                queue_depth: 2,
            };
            let ((f, l), stats) = ps.extract_features_batched(0..9, &cfg);
            assert_eq!(f.dims(), serial_f.dims());
            assert_eq!(f.data(), serial_f.data(), "batch={batch} workers={workers}");
            assert_eq!(l, serial_l);
            assert_eq!(stats.fe.items, 9);
        }
    }

    #[test]
    fn npe_activity_and_metrics_reflect_runs() {
        telemetry::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(49);
        let mut ps = PipeStore::new(8, shard(&mut rng));
        ps.install_model(model(&mut rng));
        let mut factory = PhotoFactory::new(1024);
        for i in 0..10 {
            let p = factory.make(i % 3, 0, &mut rng);
            ps.store_photo(p, preprocessed_binary(512, &mut rng));
        }
        assert!(ps.last_pipeline_stats().is_none(), "no runs yet");

        let cfg = EngineConfig {
            batch: 4,
            decomp_workers: 2,
            queue_depth: 4,
        };
        let (_, stats) = ps.offline_inference_pipelined(&cfg);
        let _ = ps.extract_features_batched(0..9, &cfg);

        let last = ps.last_pipeline_stats().expect("a run happened");
        assert_eq!(last.fe.items, 9, "last run is the extraction");
        let acc = ps.npe_activity();
        assert_eq!(acc.runs, 2);
        assert_eq!(acc.items, stats.fe.items as u64 + 9);

        let snap = ps.metrics().snapshot();
        assert_eq!(snap.counter_value("ndpipe_store_photos_total"), Some(10));
        assert_eq!(
            snap.counter_value("ndpipe_npe_stage_items_total"),
            Some((stats.fe.items + 9) as u64 * 3),
            "items counted once per stage"
        );
        assert!(snap.find("ndpipe_npe_run_wall_seconds").is_some());
    }

    #[test]
    fn photo_records_roundtrip_and_dedupe() {
        let mut rng = StdRng::seed_from_u64(53);
        let ps = PipeStore::new(12, shard(&mut rng));
        let mut factory = PhotoFactory::new(512);
        let p = factory.make(1, 2, &mut rng);
        let id = p.id;
        ps.store_photo(p, preprocessed_binary(256, &mut rng));

        let rec = ps.photo_record(id).expect("record");
        assert_eq!(rec.id, id.0);
        assert_eq!(rec.class, 1);
        assert_eq!(rec.day, 2);
        assert_eq!(rec.preproc_bytes, 256);

        // A replica adopting the record stores identical bytes without
        // recompressing, and a duplicate put is a no-op.
        let replica = PipeStore::new(13, shard(&mut rng));
        assert!(replica.store_photo_record(rec.clone()));
        assert!(!replica.store_photo_record(rec.clone()), "dedupe on id");
        assert_eq!(replica.photo_count(), 1);
        let back = replica.photo_record(id).expect("replicated record");
        assert_eq!(back, rec);
        let stored = replica.photo(id).expect("stored");
        assert_eq!(
            deflate::decompress_framed(&stored.compressed_binary)
                .expect("sidecar decompresses")
                .len(),
            256
        );
        assert_eq!(replica.photo_ids(), vec![id.0]);
    }

    #[test]
    fn placement_installs_are_epoch_monotone() {
        let mut rng = StdRng::seed_from_u64(54);
        let ps = PipeStore::new(0, shard(&mut rng));
        assert!(ps.placement().is_none());
        let mut map = PlacementMap::new(&[0, 1, 2], 2).expect("map");
        assert_eq!(ps.install_placement(map.clone()), Ok(1));
        map.mark_down(1).expect("known");
        assert_eq!(ps.install_placement(map.clone()), Ok(2));
        // Re-installing the held epoch is idempotent; an older one is
        // refused with the held epoch.
        assert_eq!(ps.install_placement(map), Ok(2));
        let stale = PlacementMap::new(&[0, 1, 2], 2).expect("map");
        assert_eq!(ps.install_placement(stale), Err(2));
        assert_eq!(ps.placement().expect("held").epoch(), 2);
    }

    #[test]
    fn replica_shard_extraction_matches_the_owner() {
        let mut rng = StdRng::seed_from_u64(55);
        let owner_shard = shard(&mut rng);
        let m = model(&mut rng);
        let mut owner = PipeStore::new(1, owner_shard.clone());
        owner.install_model(m.clone());
        let cfg = EngineConfig::default();
        let ((want_f, want_l), _) = owner.extract_features_batched(0..owner_shard.len(), &cfg);

        let mut replica = PipeStore::new(2, shard(&mut rng));
        replica.install_model(m);
        assert!(
            replica
                .extract_features_batched_for(1, 0..1, &cfg)
                .is_none(),
            "no replica shard attached yet"
        );
        replica.add_replica_shard(1, owner_shard.clone());
        assert_eq!(replica.replica_nodes(), vec![1]);
        assert_eq!(replica.shard_for(2).expect("own shard").len(), 9);
        let ((f, l), _) = replica
            .extract_features_batched_for(1, 0..owner_shard.len(), &cfg)
            .expect("replica shard attached");
        assert_eq!(f.data(), want_f.data(), "reroute is bit-identical");
        assert_eq!(l, want_l);
    }

    #[test]
    fn photo_lookup() {
        let mut rng = StdRng::seed_from_u64(44);
        let ps = PipeStore::new(3, shard(&mut rng));
        let mut factory = PhotoFactory::new(256);
        let p = factory.make(0, 0, &mut rng);
        let id = p.id;
        ps.store_photo(p, preprocessed_binary(128, &mut rng));
        assert!(ps.photo(id).is_some());
        assert!(ps.photo(PhotoId(999)).is_none());
    }

    #[test]
    fn model_snapshots_cached_and_keyed_on_weight_version() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut ps = PipeStore::new(10, shard(&mut rng));
        assert!(ps.model_snapshot().is_none(), "no model, no snapshot");
        ps.install_model(model(&mut rng));
        let v1 = ps.model_version().expect("version");
        let s1 = ps.model_snapshot().expect("snapshot");
        let s2 = ps.model_snapshot().expect("snapshot");
        assert!(
            Arc::ptr_eq(&s1, &s2),
            "unchanged weights reuse the published Arc"
        );
        // Mutating the replica bumps the weight version; the next
        // snapshot must republish rather than serve stale weights.
        {
            let m = ps.model_mut().expect("model");
            let l = &mut m.classifier_layers_mut()[0];
            let (w, b) = (l.weights().clone(), l.bias().clone());
            l.set_weights(w, b);
        }
        let v2 = ps.model_version().expect("version");
        assert_ne!(v1, v2, "mutation bumps the version key");
        let s3 = ps.model_snapshot().expect("snapshot");
        assert!(!Arc::ptr_eq(&s1, &s3), "version change republishes");
        assert_eq!(s3.weights_version(), v2);
    }

    #[test]
    fn concurrent_ingest_lands_every_photo() {
        // `store_photo(&self)`: parallel writers into the sharded map
        // must not lose entries, and the snapshot keeps insertion order
        // per writer (global order across writers is interleaved).
        let mut rng = StdRng::seed_from_u64(52);
        let ps = std::sync::Arc::new(PipeStore::new(11, shard(&mut rng)));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let ps = std::sync::Arc::clone(&ps);
            joins.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                let mut factory = PhotoFactory::new(256);
                for i in 0..25 {
                    let p = factory.make((t as usize + i) % 3, 0, &mut rng);
                    ps.store_photo(p, preprocessed_binary(128, &mut rng));
                }
            }));
        }
        for j in joins {
            j.join().expect("writer");
        }
        assert_eq!(ps.photo_count(), 100);
        assert_eq!(ps.photos().len(), 100);
    }

    #[test]
    #[should_panic(expected = "no model installed")]
    fn extraction_requires_model() {
        let mut rng = StdRng::seed_from_u64(45);
        let ps = PipeStore::new(4, shard(&mut rng));
        let _ = ps.extract_features(0..1);
    }

    #[test]
    fn photos_persist_and_restore_through_the_object_store() {
        let mut rng = StdRng::seed_from_u64(46);
        let dir = std::env::temp_dir().join(format!(
            "ndpipe-ps-objstore-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                std::fs::remove_dir_all(&self.0).ok();
            }
        }
        let _c = Cleanup(dir.clone());

        let ps = PipeStore::new(5, shard(&mut rng));
        let mut factory = PhotoFactory::new(2048);
        for i in 0..4 {
            let p = factory.make(i % 3, 2, &mut rng);
            ps.store_photo(p, preprocessed_binary(1024, &mut rng));
        }
        {
            let mut os = objstore::ObjectStore::open(&dir, 1 << 20).expect("open");
            assert_eq!(ps.persist_photos(&mut os).expect("persist"), 4);
        }
        // A fresh PipeStore (e.g. after a server restart) restores them.
        let mut restored = PipeStore::new(5, shard(&mut rng));
        let mut os = objstore::ObjectStore::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(restored.restore_photos(&mut os).expect("restore"), 4);
        for (a, b) in ps.photos().into_iter().zip(restored.photos()) {
            assert_eq!(a.photo.id, b.photo.id);
            assert_eq!(a.photo.class, b.photo.class);
            assert_eq!(a.photo.day, b.photo.day);
            assert_eq!(a.photo.blob, b.photo.blob);
            assert_eq!(a.compressed_binary, b.compressed_binary);
            assert_eq!(a.preproc_bytes, b.preproc_bytes);
        }
    }
}
