//! Multi-process NDPipe node, mirroring the paper's artifact workflow
//! ("initiate Tuner ... then begin to run PipeStores by matching the port
//! number on the Tuner side") — except our PipeStores listen and the
//! Tuner connects, so no coordination service is needed.
//!
//! Every node derives its data deterministically from `--seed`, so shards
//! started on different machines fit together.
//!
//! ```bash
//! # terminal 1..3: storage nodes, each also replicating one peer's shard
//! ndpipe_node pipestore --listen 127.0.0.1:7401 --shard 0/3 --seed 42 --replicas 2
//! ndpipe_node pipestore --listen 127.0.0.1:7402 --shard 1/3 --seed 42 --replicas 2
//! ndpipe_node pipestore --listen 127.0.0.1:7403 --shard 2/3 --seed 42 --replicas 2
//! # terminal 4: the Tuner (placement-aware — a dead store's shard is
//! # extracted from a surviving replica instead of being dropped)
//! ndpipe_node tuner --connect 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403 \
//!     --seed 42 --replicas 2 --quorum 2
//! ```
//!
//! With `--replicas R` every node derives the same rendezvous-hash
//! [`PlacementMap`] from the shard count, so the fleet agrees on which
//! stores replicate which shards without any coordination service.

use dnn::{Mlp, ModelProfile, TrainConfig, Trainer};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::rpc::{Cluster, FailurePolicy, PipeStoreServer, ServerConfig};
use ndpipe::{pareto_front, ParetoInput, PipeStore, PlacementMap, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use tensor::{set_default_math_policy, MathPolicy};

const CLASSES: usize = 8;
const INPUT_DIM: usize = 16;
const PER_CLASS: usize = 60;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ndpipe_node pipestore --listen ADDR --shard I/N [--seed S] [--replicas R] \
         [--math deterministic|fast|int8]\n  \
         ndpipe_node tuner --connect ADDR[,ADDR...] [--seed S] [--runs ROUNDS] [--n-run N] \
         [--micro-batch M] [--staleness S] [--epochs E] [--quorum K] [--replicas R] \
         [--math deterministic|fast|int8] [--auto] [--partition K] [--peers N]"
    );
    ExitCode::FAILURE
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Applies `--math POLICY` (if present) as the process-wide default
/// before any store or kernel consults it. `Ok(None)` when the flag is
/// absent (the `NDPIPE_MATH` env default stays in force).
fn apply_math_flag(args: &[String]) -> Result<Option<MathPolicy>, ExitCode> {
    let Some(raw) = arg_value(args, "--math") else {
        return Ok(None);
    };
    let Some(policy) = MathPolicy::parse(&raw) else {
        eprintln!("bad --math {raw}: expected deterministic|fast|int8");
        return Err(usage());
    };
    if !set_default_math_policy(policy) {
        eprintln!("--math {policy} lost to an earlier default; startup ordering bug");
        return Err(ExitCode::FAILURE);
    }
    Ok(Some(policy))
}

/// The full training corpus every node can rebuild from the seed.
fn corpus(seed: u64) -> (ClassUniverse, LabeledDataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = ClassUniverse::new(INPUT_DIM, 8, CLASSES, 0.3, &mut rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..CLASSES {
        for _ in 0..PER_CLASS {
            rows.push(universe.sample(c, &mut rng));
            labels.push(c);
        }
    }
    let data = LabeledDataset::new(rows, labels, CLASSES).shuffled(&mut rng);
    (universe, data)
}

fn run_pipestore(args: &[String]) -> ExitCode {
    let math = match apply_math_flag(args) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let Some(listen) = arg_value(args, "--listen") else {
        return usage();
    };
    let Some(shard_spec) = arg_value(args, "--shard") else {
        return usage();
    };
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let Some((i, n)) = shard_spec
        .split_once('/')
        .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
    else {
        return usage();
    };
    if n == 0 || i >= n {
        eprintln!("bad shard spec {shard_spec}");
        return ExitCode::FAILURE;
    }
    let replicas: usize = arg_value(args, "--replicas")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let (_, data) = corpus(seed);
    let mut shards = data.shards(n);
    let shard = shards[i].clone();
    eprintln!(
        "pipestore {i}/{n}: {} local examples, serving on {listen}",
        shard.len()
    );
    let mut store = PipeStore::new(i, shard);
    if let Some(policy) = math {
        // `new` already picked up the pinned default; restate it so the
        // log line records what `Describe` will report over RPC.
        store.set_math_policy(policy);
        eprintln!("pipestore {i}/{n}: math policy {policy}");
    }
    if replicas > 1 {
        // Same seed + same shard count on every node → identical map, so
        // the fleet agrees on replica placement with no coordination.
        let ids: Vec<u64> = (0..n as u64).collect();
        let map = match PlacementMap::new(&ids, replicas) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("pipestore {i}/{n}: bad --replicas {replicas}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (a, peer_shard) in shards.drain(..).enumerate() {
            if a != i && map.shard_holders(a as u64).contains(&(i as u64)) {
                eprintln!("pipestore {i}/{n}: replicating shard {a}/{n}");
                store.add_replica_shard(a as u64, peer_shard);
            }
        }
        match store.install_placement(map) {
            Ok(epoch) => eprintln!("pipestore {i}/{n}: placement epoch {epoch}"),
            Err(held) => {
                eprintln!("pipestore {i}/{n}: placement rejected (held epoch {held})");
                return ExitCode::FAILURE;
            }
        }
    }
    let server = match PipeStoreServer::bind(store, &listen, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pipestore {i}/{n}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("pipestore {i}/{n}: listening on {}", server.local_addr());
    // Serve until the first Tuner session finishes, then drain & exit —
    // the artifact workflow runs one fine-tuning round per invocation.
    server.wait_idle(1);
    match server.shutdown() {
        Ok(store) => {
            eprintln!(
                "pipestore {i}/{n}: session complete (model installed: {})",
                store.model().is_some()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipestore {i}/{n}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_tuner(args: &[String]) -> ExitCode {
    if let Err(code) = apply_math_flag(args) {
        return code;
    }
    let Some(connect) = arg_value(args, "--connect") else {
        return usage();
    };
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    // `--runs`: pipelined fine-tuning rounds driven back to back; each
    // round is `--n-run` FT-DMP runs. `--micro-batch 0` sizes
    // micro-batches automatically; `--staleness 0` reproduces the
    // run-at-a-time barrier schedule exactly.
    let rounds: usize = arg_value(args, "--runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let defaults = FtdmpConfig::default();
    let n_run: usize = arg_value(args, "--n-run")
        .and_then(|s| s.parse().ok())
        .unwrap_or(defaults.n_run);
    // `--auto`: seed partition point, fleet width, and micro-batch count
    // from the APO Pareto knee (paper-default deployment profile).
    // Explicit `--partition` / `--peers` / `--micro-batch` flags override
    // the knee value individually.
    let knee = args.iter().any(|a| a == "--auto").then(|| {
        let front = pareto_front(&ParetoInput::paper_default(ModelProfile::resnet50()));
        eprintln!(
            "tuner: APO knee partition={} pipestores={} micro-batch={} ({} candidates)",
            front.knee.partition, front.knee.n_pipestores, front.knee.micro_batch, front.candidates
        );
        front.knee
    });
    let micro_batch: usize = arg_value(args, "--micro-batch")
        .and_then(|s| s.parse().ok())
        .or(knee.as_ref().map(|k| k.micro_batch))
        .unwrap_or(defaults.micro_batch);
    let staleness: usize = arg_value(args, "--staleness")
        .and_then(|s| s.parse().ok())
        .unwrap_or(defaults.staleness);
    let epochs: usize = arg_value(args, "--epochs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    // `--quorum K`: keep going as long as K stores survive the round;
    // without it any peer failure aborts (strict).
    let policy = match arg_value(args, "--quorum").map(|s| s.parse::<usize>()) {
        Some(Ok(k)) => FailurePolicy::Quorum(k),
        Some(Err(_)) => return usage(),
        None => FailurePolicy::Strict,
    };
    let replicas: usize = arg_value(args, "--replicas")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let (universe, _) = corpus(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A_BE);
    // `--partition K` (or the knee) picks how many of the 3 MLP layers
    // freeze on the PipeStores, clamped so at least one layer trains.
    let partition: usize = arg_value(args, "--partition")
        .and_then(|s| s.parse().ok())
        .or(knee.as_ref().map(|k| k.partition))
        .unwrap_or(2)
        .min(2);
    let model = Mlp::new(&[INPUT_DIM, 24, 16, CLASSES], partition, &mut rng);
    let test_rows: Vec<tensor::Tensor> = (0..400)
        .map(|k| universe.sample(k % CLASSES, &mut rng))
        .collect();
    let test_labels: Vec<usize> = (0..400).map(|k| k % CLASSES).collect();
    let test = LabeledDataset::new(test_rows, test_labels, CLASSES);

    let cfg = TrainConfig {
        batch: 16,
        ..TrainConfig::default()
    };
    let mut tuner = Tuner::new(model, cfg);
    eprintln!(
        "tuner: untrained accuracy {}",
        Trainer::evaluate(tuner.model(), &test)
    );

    // `--peers N` (or the knee) drives only the first N connected
    // stores — the APO-chosen fleet width, never more than were given.
    let mut addrs: Vec<&str> = connect.split(',').map(str::trim).collect();
    let peers: usize = arg_value(args, "--peers")
        .and_then(|s| s.parse().ok())
        .or(knee.as_ref().map(|k| k.n_pipestores))
        .unwrap_or(addrs.len())
        .clamp(1, addrs.len());
    if peers < addrs.len() {
        eprintln!("tuner: driving first {peers} of {} given peers", addrs.len());
        addrs.truncate(peers);
    }
    let cluster = match Cluster::builder().policy(policy).connect(&addrs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tuner: cannot build cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in cluster.initial_failures() {
        eprintln!("tuner: peer down at connect (will retry per-op): {f}");
    }
    eprintln!(
        "tuner: driving {} store(s) under policy {:?}",
        cluster.len(),
        cluster.policy()
    );

    // With `--replicas R` the Tuner publishes the same map the stores
    // derived locally and drives a placement-aware sweep: a dead store's
    // shard is extracted from a surviving replica instead of dropped.
    let placement = if replicas > 1 {
        let ids: Vec<u64> = (0..addrs.len() as u64).collect();
        let map = match PlacementMap::new(&ids, replicas) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("tuner: bad --replicas {replicas}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for f in cluster.publish_placement(&map).failures {
            eprintln!("tuner: placement publish warning: {f}");
        }
        Some(map)
    } else {
        None
    };

    let outcome = match cluster.ftdmp_fine_tune_pipelined(
        &mut tuner,
        &FtdmpConfig {
            n_run,
            epochs_per_run: epochs,
            micro_batch,
            staleness,
            train: cfg,
        },
        rounds,
        &mut rng,
        placement.as_ref(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tuner: fine-tune failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in cluster.shutdown().failures {
        eprintln!("tuner: shutdown warning: {f}");
    }

    let report = &outcome.report;
    for f in &outcome.failures {
        eprintln!("tuner: peer excluded mid-round: {f}");
    }
    println!("peers completed       {}", outcome.peers_used.len());
    if placement.is_some() {
        println!("shard reroutes        {}", outcome.reroutes);
    }
    println!("examples trained      {}", report.examples);
    println!("feature bytes moved   {}", report.feature_bytes);
    println!(
        "pipeline schedule     {} micro-batches, {} steals, {} stale steps, {:.3}s bubble",
        report.schedule.micro_batches,
        report.schedule.steals,
        report.schedule.stale_steps,
        report.schedule.bubble_secs
    );
    println!(
        "model delta vs full   {} B ({:.1}x smaller)",
        report.distribution_bytes, report.distribution_reduction
    );
    println!(
        "final accuracy        {}",
        Trainer::evaluate(tuner.model(), &test)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("pipestore") => run_pipestore(&args),
        Some("tuner") => run_tuner(&args),
        _ => usage(),
    }
}
