//! Runtime invariant sanitizer — the dynamic cross-check for ndlint's
//! static concurrency rules. Compiled to no-ops unless the build sets
//! `RUSTFLAGS='--cfg ndpipe_sanitize'` (CI runs the failover and
//! event-server suites once in that configuration; see scripts/check.sh).
//!
//! Two witnesses:
//!
//! - **Lock-ordering witness**: every instrumented acquisition pushes
//!   `(rank, name)` onto a thread-local stack and panics if the new rank
//!   is *lower* than the rank currently on top — i.e. the thread is
//!   acquiring against the declared global order and a concurrent thread
//!   walking the same pair in declared order could deadlock it. The
//!   declared order (low rank acquired first) mirrors ndlint's
//!   `lock_order` acquisition graph:
//!
//!   | rank | lock |
//!   |-----:|------|
//!   | 10   | `store` — the `RwLock<PipeStore>` every RPC path enters |
//!   | 20   | `placement` — the epoch-versioned placement map |
//!   | 30   | `photos` — per-bucket photo-record locks |
//!   | 40   | `published` — the published-model snapshot |
//!   | 90   | `first_error` — terminal error slot (leaf; never nests) |
//!
//! - **Channel-depth watchdog**: send-side sampling of the bounded
//!   queues. Panics if a queue ever reports a depth above its declared
//!   capacity (a broken bound) and records per-queue high-water marks
//!   that soak/failover tests assert against via [`high_water`].
//!
//! The no-op variants keep the exact same signatures, so call sites need
//! no `cfg` of their own and the instrumented binary differs only by the
//! flag.

/// Acquisition rank of the `RwLock<PipeStore>` store lock.
pub const RANK_STORE: u8 = 10;
/// Acquisition rank of the placement-map lock.
pub const RANK_PLACEMENT: u8 = 20;
/// Acquisition rank of the photo-bucket locks.
pub const RANK_PHOTOS: u8 = 30;
/// Acquisition rank of the published-model lock.
pub const RANK_PUBLISHED: u8 = 40;
/// Acquisition rank of the server's terminal-error slot (leaf).
pub const RANK_FIRST_ERROR: u8 = 90;

#[cfg(ndpipe_sanitize)]
mod active {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    thread_local! {
        static LOCK_STACK: RefCell<Vec<(u8, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Total witness validations performed (both kinds), for the tests'
    /// "the sanitizer actually ran" sanity check.
    static CHECKS: AtomicU64 = AtomicU64::new(0);

    /// Per-queue high-water marks, keyed by queue name.
    static HIGH_WATER: Mutex<BTreeMap<&'static str, usize>> = Mutex::new(BTreeMap::new());

    /// RAII witness for one instrumented lock acquisition.
    pub struct OrderWitness {
        rank: u8,
    }

    /// Validates `rank` against the thread's acquisition stack; panics
    /// on inversion. The returned witness pops on drop, so hold it
    /// exactly as long as the guard it shadows.
    #[track_caller]
    pub fn order(rank: u8, name: &'static str) -> OrderWitness {
        // ndlint: allow(relaxed, reason = "monotone diagnostics counter; tests only need an eventually-visible lower bound")
        CHECKS.fetch_add(1, Ordering::Relaxed);
        LOCK_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(&(top_rank, top_name)) = s.last() {
                assert!(
                    top_rank <= rank,
                    "ndpipe_sanitize: lock-order violation: acquiring `{name}` \
                     (rank {rank}) while `{top_name}` (rank {top_rank}) is \
                     held; declared order requires `{name}` first"
                );
            }
            s.push((rank, name));
        });
        OrderWitness { rank }
    }

    impl Drop for OrderWitness {
        fn drop(&mut self) {
            LOCK_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Pop the most recent entry of this rank — witnesses of
                // equal rank are indistinguishable and interchangeable.
                if let Some(i) = s.iter().rposition(|&(r, _)| r == self.rank) {
                    s.remove(i);
                }
            });
        }
    }

    /// Records a bounded queue's depth at a send; panics if the bound is
    /// broken.
    #[track_caller]
    pub fn channel_depth(name: &'static str, len: usize, cap: usize) {
        // ndlint: allow(relaxed, reason = "monotone diagnostics counter; tests only need an eventually-visible lower bound")
        CHECKS.fetch_add(1, Ordering::Relaxed);
        assert!(
            len <= cap,
            "ndpipe_sanitize: bounded queue `{name}` reports depth {len} \
             above its capacity {cap}"
        );
        let mut hw = HIGH_WATER.lock().unwrap_or_else(|e| e.into_inner());
        let entry = hw.entry(name).or_insert(0);
        if len > *entry {
            *entry = len;
        }
    }

    /// High-water mark recorded for `name` (0 if never sampled).
    pub fn high_water(name: &str) -> usize {
        let hw = HIGH_WATER.lock().unwrap_or_else(|e| e.into_inner());
        hw.get(name).copied().unwrap_or(0)
    }

    /// Number of witness validations performed so far, process-wide.
    pub fn checks_performed() -> u64 {
        // ndlint: allow(relaxed, reason = "diagnostics read; a stale lower bound is acceptable to the asserting test")
        CHECKS.load(Ordering::Relaxed)
    }
}

#[cfg(ndpipe_sanitize)]
pub use active::{channel_depth, checks_performed, high_water, order, OrderWitness};

#[cfg(not(ndpipe_sanitize))]
mod inert {
    /// No-op stand-in; constructing it costs nothing.
    pub struct OrderWitness;

    #[inline(always)]
    pub fn order(_rank: u8, _name: &'static str) -> OrderWitness {
        OrderWitness
    }

    #[inline(always)]
    pub fn channel_depth(_name: &'static str, _len: usize, _cap: usize) {}

    #[inline(always)]
    pub fn high_water(_name: &str) -> usize {
        0
    }

    #[inline(always)]
    pub fn checks_performed() -> u64 {
        0
    }
}

#[cfg(not(ndpipe_sanitize))]
pub use inert::{channel_depth, checks_performed, high_water, order, OrderWitness};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_acquisition_is_quiet() {
        let a = order(RANK_STORE, "store");
        let b = order(RANK_PUBLISHED, "published");
        drop(b);
        drop(a);
    }

    #[cfg(ndpipe_sanitize)]
    #[test]
    fn inverted_acquisition_panics() {
        let result = std::panic::catch_unwind(|| {
            let _hi = order(RANK_FIRST_ERROR, "first_error");
            let _lo = order(RANK_STORE, "store");
        });
        assert!(result.is_err(), "inversion must panic under the sanitizer");
        // The unwound witnesses must not poison this thread's stack.
        let _ok = order(RANK_STORE, "store");
    }

    #[cfg(ndpipe_sanitize)]
    #[test]
    fn broken_bound_panics_and_high_water_tracks() {
        channel_depth("test.queue", 3, 8);
        channel_depth("test.queue", 5, 8);
        assert_eq!(high_water("test.queue"), 5);
        let result = std::panic::catch_unwind(|| channel_depth("test.queue", 9, 8));
        assert!(result.is_err());
        assert!(checks_performed() >= 3);
    }

    #[cfg(not(ndpipe_sanitize))]
    #[test]
    fn inert_build_reports_nothing() {
        channel_depth("test.queue", usize::MAX, 0); // would panic if active
        assert_eq!(high_water("test.queue"), 0);
        assert_eq!(checks_performed(), 0);
    }
}
