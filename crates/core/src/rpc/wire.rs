//! Frame format: `[u32 len][u8 tag][payload]`, all little-endian.
//!
//! Sessions open with a versioned [`Handshake`]: the client sends
//! `Hello` (protocol version + feature bits), the server answers
//! `Accept` (version + features + store id) or `Reject`. Peers speaking
//! a different protocol revision fail fast with a structured
//! [`RpcError::ProtocolMismatch`] instead of a mid-stream decode error.

use crate::placement::PlacementMap;
use crate::rpc::RpcError;
use std::io::{Read, Write};
use tensor::linalg::KernelFamily;
use tensor::{MathPolicy, Tensor};

/// Hard cap on a single frame (guards against garbage length prefixes).
pub const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Wire protocol revision. Bump on any frame-layout change; the
/// handshake refuses mismatched peers before any payload moves.
/// v2: `ShardInfo` carries the store's math policy and kernel family.
pub const PROTOCOL_VERSION: u32 = 2;

/// Feature bit: the peer serves telemetry scrapes (`Metrics`).
pub const FEATURE_METRICS: u64 = 1 << 0;
/// Feature bit: the peer applies Check-N-Run deltas (`ApplyDelta`).
pub const FEATURE_DELTAS: u64 = 1 << 1;
/// Feature bit: the peer serves concurrent sessions (PipeStoreServer).
pub const FEATURE_MULTI_SESSION: u64 = 1 << 2;

/// One replicated photo as it moves between PipeStores: the original
/// blob plus the *already-compressed* chunked-DEFLATE preprocessed
/// sidecar, so replication and rebalance ride the existing codec
/// instead of re-preprocessing at the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhotoRecord {
    /// Stable photo id (the placement key).
    pub id: u64,
    /// Ground-truth class at upload time.
    pub class: u32,
    /// Upload day (drives the labeldb outdated-label bookkeeping).
    pub day: u32,
    /// Uncompressed length of the preprocessed binary inside `sidecar`.
    pub preproc_bytes: u32,
    /// The original photo blob.
    pub blob: Vec<u8>,
    /// Chunked-DEFLATE compressed preprocessed binary.
    pub sidecar: Vec<u8>,
}

impl PhotoRecord {
    /// Bytes this record puts on the wire (blob + sidecar payloads),
    /// the quantity the rebalance rate limiter budgets.
    pub fn transfer_bytes(&self) -> u64 {
        self.blob.len() as u64 + self.sidecar.len() as u64
    }

    fn encode_into(&self, p: &mut Vec<u8>) {
        put_u64(p, self.id);
        put_u32(p, self.class);
        put_u32(p, self.day);
        put_u32(p, self.preproc_bytes);
        put_u32(p, self.blob.len() as u32);
        p.extend_from_slice(&self.blob);
        put_u32(p, self.sidecar.len() as u32);
        p.extend_from_slice(&self.sidecar);
    }

    fn decode_from(c: &mut Cursor<'_>) -> Result<Self, RpcError> {
        let id = c.u64()?;
        let class = c.u32()?;
        let day = c.u32()?;
        let preproc_bytes = c.u32()?;
        let blob_len = c.u32()? as usize;
        let blob = c.take(blob_len)?.to_vec();
        let sidecar_len = c.u32()? as usize;
        let sidecar = c.take(sidecar_len)?.to_vec();
        Ok(PhotoRecord {
            id,
            class,
            day,
            preproc_bytes,
            blob,
            sidecar,
        })
    }
}

/// Requests the Tuner sends to a PipeStore.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Install a full model replica (serialized `Mlp`).
    InstallModel(Vec<u8>),
    /// Extract features for pipeline run `run` of `n_run`.
    ExtractFeatures {
        /// Zero-based run index.
        run: u32,
        /// Total pipeline runs.
        n_run: u32,
    },
    /// Run offline inference over the local shard.
    OfflineInfer,
    /// Apply a Check-N-Run delta to the local replica.
    ApplyDelta(Vec<u8>),
    /// Report shard metadata.
    Describe,
    /// Scrape the store's telemetry registry.
    Metrics,
    /// Classify one feature row with the store's published model
    /// snapshot. The event-driven server coalesces `Infer` requests from
    /// *different* sessions into one batched forward (cross-session
    /// dynamic batching); the reply is a single [`Reply::Label`].
    Infer {
        /// One feature row, model-input-width floats.
        features: Vec<f32>,
    },
    /// Fetch the placement map the store currently holds.
    Placement,
    /// Publish an epoch-numbered placement map. Stores accept only
    /// epochs at or above the one they hold (monotone), so a delayed
    /// publish cannot roll placement backwards.
    InstallPlacement(PlacementMap),
    /// Store one replicated photo record (write-path replication and
    /// rebalance copies both land here).
    PutPhoto(PhotoRecord),
    /// Read one photo record by id (read-failover walks the replica
    /// set with this).
    GetPhoto(u64),
    /// List the photo ids this store holds (rebalance planning).
    ListPhotos,
    /// Extract features for run `run` of `n_run` over the *replica
    /// shard* of node `node` instead of the store's own shard — the
    /// mid-sweep reroute path when `node` died.
    ExtractFeaturesFor {
        /// Whose shard to extract (a placement node id).
        node: u64,
        /// Zero-based run index.
        run: u32,
        /// Total pipeline runs.
        n_run: u32,
    },
    /// Streaming micro-batch extraction: micro-batch `mb` of `n_mb`
    /// within run `run` of `n_run`, over node `node`'s shard (the
    /// store's own when `node` is its id, otherwise a replica — which
    /// makes this single op both the pipelined extract *and* the
    /// straggler-steal path).
    ExtractSlice {
        /// Whose shard to extract (a placement node id).
        node: u64,
        /// Zero-based run index.
        run: u32,
        /// Total pipeline runs.
        n_run: u32,
        /// Zero-based micro-batch index within the run slice.
        mb: u32,
        /// Total micro-batches the run slice splits into.
        n_mb: u32,
    },
    /// Report shard metadata for node `node` (own shard or a held
    /// replica) — how the pipelined scheduler sizes micro-batch counts
    /// for shards it must steal.
    DescribeNode(u64),
    /// Close the session.
    Shutdown,
}

impl Request {
    /// Stable operation name, used as the `op` metric label on both
    /// sides of the wire.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::InstallModel(_) => "install_model",
            Request::ExtractFeatures { .. } => "extract_features",
            Request::OfflineInfer => "offline_infer",
            Request::ApplyDelta(_) => "apply_delta",
            Request::Describe => "describe",
            Request::Metrics => "metrics",
            Request::Infer { .. } => "infer",
            Request::Placement => "placement",
            Request::InstallPlacement(_) => "install_placement",
            Request::PutPhoto(_) => "put_photo",
            Request::GetPhoto(_) => "get_photo",
            Request::ListPhotos => "list_photos",
            Request::ExtractFeaturesFor { .. } => "extract_features_for",
            Request::ExtractSlice { .. } => "extract_slice",
            Request::DescribeNode(_) => "describe_node",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Shard metadata reported by `Describe`/`DescribeNode`: how much data
/// the store holds for that node plus the numerical contract it is
/// extracting features under. The Tuner uses `examples`/`classes` to
/// size micro-batches and `math`/`kernel` to verify a fleet runs a
/// uniform policy before mixing features from different stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDesc {
    /// Local examples for the described node.
    pub examples: u64,
    /// Label-space size.
    pub classes: u32,
    /// The [`MathPolicy`] the store's FE paths run under.
    pub math: MathPolicy,
    /// The kernel family that policy dispatches to on the store's host.
    pub kernel: KernelFamily,
}

/// Replies a PipeStore sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Plain acknowledgment.
    Ack,
    /// Extracted features plus their labels.
    Features {
        /// `[rows, dim]` feature matrix.
        features: Tensor,
        /// One label per row.
        labels: Vec<u32>,
    },
    /// Offline-inference output: `(photo index, label)` pairs.
    Labels(Vec<(u64, u32)>),
    /// Shard metadata ([`ShardDesc`]).
    ShardInfo(ShardDesc),
    /// A telemetry snapshot of the store's registry.
    Metrics(telemetry::Snapshot),
    /// The predicted class for one [`Request::Infer`] row.
    Label(u32),
    /// The placement map a store holds ([`Request::Placement`]).
    Placement(PlacementMap),
    /// One photo record ([`Request::GetPhoto`]).
    Photo(PhotoRecord),
    /// The photo ids a store holds ([`Request::ListPhotos`]),
    /// ascending.
    PhotoIds(Vec<u64>),
    /// The store failed to handle the request.
    Error(String),
}

/// Session-opening frames. A session is exactly one `Hello` from the
/// connecting Tuner answered by one `Accept` or `Reject` from the store;
/// only then does the request/reply stream begin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Handshake {
    /// Client greeting: protocol revision and the features it can use.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Feature bits the client understands.
        features: u64,
    },
    /// Server acceptance: the session may proceed.
    Accept {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Feature bits the server offers.
        features: u64,
        /// Stable identity of the PipeStore behind this socket.
        store_id: u64,
    },
    /// Server refusal; the connection closes after this frame.
    Reject {
        /// The server's [`PROTOCOL_VERSION`] so the client can tell a
        /// version skew from an operational refusal (e.g. session cap).
        version: u32,
        /// Human-readable refusal reason.
        reason: String,
    },
}

const TAG_INSTALL: u8 = 1;
const TAG_EXTRACT: u8 = 2;
const TAG_INFER: u8 = 3;
const TAG_DELTA: u8 = 4;
const TAG_DESCRIBE: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_METRICS_REQ: u8 = 7;
const TAG_INFER_ROW: u8 = 8;
const TAG_PLACEMENT_REQ: u8 = 9;
const TAG_INSTALL_PLACEMENT: u8 = 10;
const TAG_PUT_PHOTO: u8 = 11;
const TAG_GET_PHOTO: u8 = 12;
const TAG_LIST_PHOTOS: u8 = 13;
const TAG_EXTRACT_FOR: u8 = 14;
const TAG_EXTRACT_SLICE: u8 = 15;
const TAG_DESCRIBE_NODE: u8 = 16;
const TAG_HELLO: u8 = 32;
const TAG_ACCEPT: u8 = 33;
const TAG_REJECT: u8 = 34;
const TAG_ACK: u8 = 64;
const TAG_FEATURES: u8 = 65;
const TAG_LABELS: u8 = 66;
const TAG_SHARD_INFO: u8 = 67;
const TAG_METRICS: u8 = 68;
const TAG_LABEL: u8 = 69;
const TAG_PLACEMENT: u8 = 70;
const TAG_PHOTO: u8 = 71;
const TAG_PHOTO_IDS: u8 = 72;
const TAG_ERROR: u8 = 127;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RpcError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(RpcError::Protocol("payload truncated"))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(RpcError::Protocol("payload truncated"))?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, RpcError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, RpcError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| RpcError::Protocol("payload truncated"))?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, RpcError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| RpcError::Protocol("payload truncated"))?;
        Ok(u64::from_le_bytes(b))
    }
    fn finish(self) -> Result<(), RpcError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(RpcError::Protocol("trailing bytes in payload"))
        }
    }
}

impl Request {
    pub(crate) fn encode_body(&self) -> (u8, Vec<u8>) {
        match self {
            Request::InstallModel(m) => (TAG_INSTALL, m.clone()),
            Request::ExtractFeatures { run, n_run } => {
                let mut p = Vec::with_capacity(8);
                put_u32(&mut p, *run);
                put_u32(&mut p, *n_run);
                (TAG_EXTRACT, p)
            }
            Request::OfflineInfer => (TAG_INFER, Vec::new()),
            Request::ApplyDelta(d) => (TAG_DELTA, d.clone()),
            Request::Describe => (TAG_DESCRIBE, Vec::new()),
            Request::Metrics => (TAG_METRICS_REQ, Vec::new()),
            Request::Infer { features } => {
                let mut p = Vec::with_capacity(4 + features.len() * 4);
                put_u32(&mut p, features.len() as u32);
                for &x in features {
                    p.extend_from_slice(&x.to_le_bytes());
                }
                (TAG_INFER_ROW, p)
            }
            Request::Placement => (TAG_PLACEMENT_REQ, Vec::new()),
            Request::InstallPlacement(map) => (TAG_INSTALL_PLACEMENT, map.to_bytes()),
            Request::PutPhoto(rec) => {
                let mut p = Vec::new();
                rec.encode_into(&mut p);
                (TAG_PUT_PHOTO, p)
            }
            Request::GetPhoto(id) => {
                let mut p = Vec::with_capacity(8);
                put_u64(&mut p, *id);
                (TAG_GET_PHOTO, p)
            }
            Request::ListPhotos => (TAG_LIST_PHOTOS, Vec::new()),
            Request::ExtractFeaturesFor { node, run, n_run } => {
                let mut p = Vec::with_capacity(16);
                put_u64(&mut p, *node);
                put_u32(&mut p, *run);
                put_u32(&mut p, *n_run);
                (TAG_EXTRACT_FOR, p)
            }
            Request::ExtractSlice {
                node,
                run,
                n_run,
                mb,
                n_mb,
            } => {
                let mut p = Vec::with_capacity(24);
                put_u64(&mut p, *node);
                put_u32(&mut p, *run);
                put_u32(&mut p, *n_run);
                put_u32(&mut p, *mb);
                put_u32(&mut p, *n_mb);
                (TAG_EXTRACT_SLICE, p)
            }
            Request::DescribeNode(node) => {
                let mut p = Vec::with_capacity(8);
                put_u64(&mut p, *node);
                (TAG_DESCRIBE_NODE, p)
            }
            Request::Shutdown => (TAG_SHUTDOWN, Vec::new()),
        }
    }

    pub(crate) fn decode_body(tag: u8, payload: &[u8]) -> Result<Request, RpcError> {
        match tag {
            TAG_INSTALL => Ok(Request::InstallModel(payload.to_vec())),
            TAG_EXTRACT => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let run = c.u32()?;
                let n_run = c.u32()?;
                c.finish()?;
                Ok(Request::ExtractFeatures { run, n_run })
            }
            TAG_INFER => Ok(Request::OfflineInfer),
            TAG_DELTA => Ok(Request::ApplyDelta(payload.to_vec())),
            TAG_DESCRIBE => Ok(Request::Describe),
            TAG_METRICS_REQ => Ok(Request::Metrics),
            TAG_INFER_ROW => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let n = c.u32()? as usize;
                let bytes = n
                    .checked_mul(4)
                    .ok_or(RpcError::Protocol("infer row too large"))?;
                let raw = c.take(bytes)?;
                let mut features = Vec::with_capacity(n);
                for b in raw.chunks_exact(4) {
                    let arr: [u8; 4] = b
                        .try_into()
                        .map_err(|_| RpcError::Protocol("payload truncated"))?;
                    features.push(f32::from_le_bytes(arr));
                }
                c.finish()?;
                Ok(Request::Infer { features })
            }
            TAG_PLACEMENT_REQ => Ok(Request::Placement),
            TAG_INSTALL_PLACEMENT => PlacementMap::from_bytes(payload)
                .map(Request::InstallPlacement)
                .map_err(|_| RpcError::Protocol("corrupt placement map")),
            TAG_PUT_PHOTO => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let rec = PhotoRecord::decode_from(&mut c)?;
                c.finish()?;
                Ok(Request::PutPhoto(rec))
            }
            TAG_GET_PHOTO => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let id = c.u64()?;
                c.finish()?;
                Ok(Request::GetPhoto(id))
            }
            TAG_LIST_PHOTOS => Ok(Request::ListPhotos),
            TAG_EXTRACT_FOR => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let node = c.u64()?;
                let run = c.u32()?;
                let n_run = c.u32()?;
                c.finish()?;
                Ok(Request::ExtractFeaturesFor { node, run, n_run })
            }
            TAG_EXTRACT_SLICE => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let node = c.u64()?;
                let run = c.u32()?;
                let n_run = c.u32()?;
                let mb = c.u32()?;
                let n_mb = c.u32()?;
                c.finish()?;
                Ok(Request::ExtractSlice {
                    node,
                    run,
                    n_run,
                    mb,
                    n_mb,
                })
            }
            TAG_DESCRIBE_NODE => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let node = c.u64()?;
                c.finish()?;
                Ok(Request::DescribeNode(node))
            }
            TAG_SHUTDOWN => Ok(Request::Shutdown),
            _ => Err(RpcError::Protocol("unknown request tag")),
        }
    }
}

impl Reply {
    pub(crate) fn encode_body(&self) -> (u8, Vec<u8>) {
        match self {
            Reply::Ack => (TAG_ACK, Vec::new()),
            Reply::Features { features, labels } => {
                let mut p = Vec::new();
                // A non-2D tensor is a caller bug; encode (0, 0) so the
                // peer rejects the frame instead of panicking here.
                let (rows, cols) = match *features.dims() {
                    [r, c] => (r, c),
                    _ => (0, 0),
                };
                put_u32(&mut p, rows as u32);
                put_u32(&mut p, cols as u32);
                for &x in features.data() {
                    p.extend_from_slice(&x.to_le_bytes());
                }
                put_u32(&mut p, labels.len() as u32);
                for &l in labels {
                    put_u32(&mut p, l);
                }
                (TAG_FEATURES, p)
            }
            Reply::Labels(pairs) => {
                let mut p = Vec::with_capacity(4 + pairs.len() * 12);
                put_u32(&mut p, pairs.len() as u32);
                for &(id, label) in pairs {
                    put_u64(&mut p, id);
                    put_u32(&mut p, label);
                }
                (TAG_LABELS, p)
            }
            Reply::ShardInfo(desc) => {
                let mut p = Vec::with_capacity(14);
                put_u64(&mut p, desc.examples);
                put_u32(&mut p, desc.classes);
                p.push(desc.math.to_u8());
                p.push(desc.kernel.to_u8());
                (TAG_SHARD_INFO, p)
            }
            Reply::Metrics(snapshot) => (TAG_METRICS, snapshot.to_bytes()),
            Reply::Label(label) => {
                let mut p = Vec::with_capacity(4);
                put_u32(&mut p, *label);
                (TAG_LABEL, p)
            }
            Reply::Placement(map) => (TAG_PLACEMENT, map.to_bytes()),
            Reply::Photo(rec) => {
                let mut p = Vec::new();
                rec.encode_into(&mut p);
                (TAG_PHOTO, p)
            }
            Reply::PhotoIds(ids) => {
                let mut p = Vec::with_capacity(4 + ids.len() * 8);
                put_u32(&mut p, ids.len() as u32);
                for &id in ids {
                    put_u64(&mut p, id);
                }
                (TAG_PHOTO_IDS, p)
            }
            Reply::Error(msg) => (TAG_ERROR, msg.as_bytes().to_vec()),
        }
    }

    pub(crate) fn decode_body(tag: u8, payload: &[u8]) -> Result<Reply, RpcError> {
        match tag {
            TAG_ACK => Ok(Reply::Ack),
            TAG_FEATURES => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let rows = c.u32()? as usize;
                let dim = c.u32()? as usize;
                if rows == 0 || dim == 0 {
                    return Err(RpcError::Protocol("empty feature matrix"));
                }
                // Checked arithmetic: a crafted frame must not wrap the
                // element count into a small number that parses.
                let bytes = rows
                    .checked_mul(dim)
                    .and_then(|n| n.checked_mul(4))
                    .ok_or(RpcError::Protocol("feature matrix too large"))?;
                let raw = c.take(bytes)?;
                let mut data = Vec::with_capacity(rows * dim);
                for b in raw.chunks_exact(4) {
                    let arr: [u8; 4] = b
                        .try_into()
                        .map_err(|_| RpcError::Protocol("payload truncated"))?;
                    data.push(f32::from_le_bytes(arr));
                }
                let n_labels = c.u32()? as usize;
                if n_labels != rows {
                    return Err(RpcError::Protocol("label count mismatch"));
                }
                let mut labels = Vec::with_capacity(n_labels);
                for _ in 0..n_labels {
                    labels.push(c.u32()?);
                }
                c.finish()?;
                Ok(Reply::Features {
                    features: Tensor::from_vec(data, &[rows, dim]),
                    labels,
                })
            }
            TAG_LABELS => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let n = c.u32()? as usize;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = c.u64()?;
                    let label = c.u32()?;
                    pairs.push((id, label));
                }
                c.finish()?;
                Ok(Reply::Labels(pairs))
            }
            TAG_SHARD_INFO => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let examples = c.u64()?;
                let classes = c.u32()?;
                let math = MathPolicy::from_u8(c.u8()?)
                    .ok_or(RpcError::Protocol("unknown math policy"))?;
                let kernel = KernelFamily::from_u8(c.u8()?)
                    .ok_or(RpcError::Protocol("unknown kernel family"))?;
                c.finish()?;
                Ok(Reply::ShardInfo(ShardDesc {
                    examples,
                    classes,
                    math,
                    kernel,
                }))
            }
            TAG_METRICS => telemetry::Snapshot::from_bytes(payload)
                .map(Reply::Metrics)
                .map_err(RpcError::Protocol),
            TAG_LABEL => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let label = c.u32()?;
                c.finish()?;
                Ok(Reply::Label(label))
            }
            TAG_PLACEMENT => PlacementMap::from_bytes(payload)
                .map(Reply::Placement)
                .map_err(|_| RpcError::Protocol("corrupt placement map")),
            TAG_PHOTO => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let rec = PhotoRecord::decode_from(&mut c)?;
                c.finish()?;
                Ok(Reply::Photo(rec))
            }
            TAG_PHOTO_IDS => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let n = c.u32()? as usize;
                // 8 bytes per id must still be present in the payload.
                let mut ids = Vec::with_capacity(n.min(payload.len() / 8 + 1));
                for _ in 0..n {
                    ids.push(c.u64()?);
                }
                c.finish()?;
                Ok(Reply::PhotoIds(ids))
            }
            TAG_ERROR => Ok(Reply::Error(String::from_utf8_lossy(payload).into_owned())),
            _ => Err(RpcError::Protocol("unknown reply tag")),
        }
    }
}

impl Handshake {
    pub(crate) fn encode_body(&self) -> (u8, Vec<u8>) {
        match self {
            Handshake::Hello { version, features } => {
                let mut p = Vec::with_capacity(12);
                put_u32(&mut p, *version);
                put_u64(&mut p, *features);
                (TAG_HELLO, p)
            }
            Handshake::Accept {
                version,
                features,
                store_id,
            } => {
                let mut p = Vec::with_capacity(20);
                put_u32(&mut p, *version);
                put_u64(&mut p, *features);
                put_u64(&mut p, *store_id);
                (TAG_ACCEPT, p)
            }
            Handshake::Reject { version, reason } => {
                let mut p = Vec::with_capacity(4 + reason.len());
                put_u32(&mut p, *version);
                p.extend_from_slice(reason.as_bytes());
                (TAG_REJECT, p)
            }
        }
    }

    pub(crate) fn decode_body(tag: u8, payload: &[u8]) -> Result<Handshake, RpcError> {
        match tag {
            TAG_HELLO => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let version = c.u32()?;
                let features = c.u64()?;
                c.finish()?;
                Ok(Handshake::Hello { version, features })
            }
            TAG_ACCEPT => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let version = c.u32()?;
                let features = c.u64()?;
                let store_id = c.u64()?;
                c.finish()?;
                Ok(Handshake::Accept {
                    version,
                    features,
                    store_id,
                })
            }
            TAG_REJECT => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let version = c.u32()?;
                let reason =
                    String::from_utf8_lossy(c.take(payload.len().saturating_sub(4))?).into_owned();
                Ok(Handshake::Reject { version, reason })
            }
            _ => Err(RpcError::Protocol("expected handshake frame")),
        }
    }
}

/// Writes a handshake frame, returning the bytes put on the wire.
///
/// # Errors
///
/// Socket or framing errors.
pub fn write_handshake<W: Write>(w: &mut W, hs: &Handshake) -> Result<usize, RpcError> {
    let (tag, payload) = hs.encode_body();
    write_frame(w, tag, &payload)
}

/// Reads a handshake frame. Any non-handshake tag is a protocol error —
/// a pre-handshake peer fails here with a clear message rather than a
/// mid-stream decode failure.
///
/// # Errors
///
/// Socket or framing errors.
pub fn read_handshake<R: Read>(r: &mut R) -> Result<Handshake, RpcError> {
    let (tag, payload) = read_frame(r)?;
    Handshake::decode_body(tag, &payload)
}

fn write_frame_noflush<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<usize, RpcError> {
    if payload.len() > MAX_FRAME {
        return Err(RpcError::Protocol("frame too large"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    Ok(5 + payload.len())
}

fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<usize, RpcError> {
    let n = write_frame_noflush(w, tag, payload)?;
    w.flush()?;
    Ok(n)
}

fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), RpcError> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let [l0, l1, l2, l3, tag] = head;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > MAX_FRAME {
        return Err(RpcError::Protocol("frame too large"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Serializes one complete frame (`[u32 len][u8 tag][payload]`) into an
/// owned buffer. The event-driven server's workers encode replies with
/// this and hand the bytes to the event thread for nonblocking writes.
pub(crate) fn frame_bytes(tag: u8, payload: &[u8]) -> Result<Vec<u8>, RpcError> {
    if payload.len() > MAX_FRAME {
        return Err(RpcError::Protocol("frame too large"));
    }
    let mut out = Vec::with_capacity(5 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(tag);
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame decoder for nonblocking sockets.
///
/// Bytes arrive in arbitrary chunks via [`FrameDecoder::feed`]; complete
/// frames drain out of [`FrameDecoder::next_frame`] as `(tag, payload)`.
/// The decoder produces *exactly* the same frame sequence as the
/// blocking [`read_frame`] path regardless of how reads were sliced
/// (property-tested below). A length prefix above [`MAX_FRAME`] is a
/// sticky protocol error: the session must be torn down, since the
/// byte stream can no longer be trusted.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by drained frames; compacted
    /// lazily so a burst of small frames doesn't memmove per frame.
    pos: usize,
}

impl FrameDecoder {
    /// Fresh decoder with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly-read socket bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: drained prefix space is reused instead
        // of letting the buffer creep.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet drained as frames.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`RpcError::Protocol`] when the length prefix exceeds
    /// [`MAX_FRAME`]; the connection is unrecoverable after that.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, RpcError> {
        let avail = self.buf.get(self.pos..).unwrap_or(&[]);
        let Some(head) = avail.get(..5) else {
            return Ok(None);
        };
        let (len, tag) = match head {
            [l0, l1, l2, l3, tag] => (u32::from_le_bytes([*l0, *l1, *l2, *l3]) as usize, *tag),
            // `get(..5)` returned a slice, so it has exactly 5 bytes;
            // this arm is unreachable but keeps the match total without
            // indexing.
            _ => return Ok(None),
        };
        if len > MAX_FRAME {
            return Err(RpcError::Protocol("frame too large"));
        }
        let Some(payload) = avail.get(5..5 + len) else {
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.pos += 5 + len;
        Ok(Some((tag, payload)))
    }
}

/// Writes a request frame, returning the bytes put on the wire.
///
/// # Errors
///
/// Socket or framing errors.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> Result<usize, RpcError> {
    let (tag, payload) = req.encode_body();
    write_frame(w, tag, &payload)
}

/// Writes a request frame without flushing the writer, so a pipelining
/// client can queue a whole window of requests and flush once.
///
/// # Errors
///
/// Socket or framing errors.
pub(crate) fn write_request_noflush<W: Write>(w: &mut W, req: &Request) -> Result<usize, RpcError> {
    let (tag, payload) = req.encode_body();
    write_frame_noflush(w, tag, &payload)
}

/// Reads a request frame, returning it with the bytes consumed.
///
/// # Errors
///
/// Socket or framing errors.
pub fn read_request<R: Read>(r: &mut R) -> Result<(Request, usize), RpcError> {
    let (tag, payload) = read_frame(r)?;
    let n = 5 + payload.len();
    Ok((Request::decode_body(tag, &payload)?, n))
}

/// Writes a reply frame, returning the bytes put on the wire.
///
/// # Errors
///
/// Socket or framing errors.
pub fn write_reply<W: Write>(w: &mut W, reply: &Reply) -> Result<usize, RpcError> {
    let (tag, payload) = reply.encode_body();
    write_frame(w, tag, &payload)
}

/// Reads a reply frame (with the bytes consumed). `Error` replies come
/// back as [`Reply::Error`]; the client layer converts them into
/// [`RpcError::Remote`] enriched with the peer address and operation.
///
/// # Errors
///
/// Socket or framing errors.
pub fn read_reply<R: Read>(r: &mut R) -> Result<(Reply, usize), RpcError> {
    let (tag, payload) = read_frame(r)?;
    let n = 5 + payload.len();
    Ok((Reply::decode_body(tag, &payload)?, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        let wrote = write_request(&mut buf, &req).expect("write");
        assert_eq!(wrote, buf.len(), "write_request reports wire bytes");
        let (back, read) = read_request(&mut buf.as_slice()).expect("read");
        assert_eq!(back, req);
        assert_eq!(read, buf.len(), "read_request reports wire bytes");
    }

    fn roundtrip_reply(reply: Reply) {
        let mut buf = Vec::new();
        let wrote = write_reply(&mut buf, &reply).expect("write");
        assert_eq!(wrote, buf.len(), "write_reply reports wire bytes");
        let (back, read) = read_reply(&mut buf.as_slice()).expect("read");
        assert_eq!(back, reply);
        assert_eq!(read, buf.len(), "read_reply reports wire bytes");
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::InstallModel(vec![1, 2, 3]));
        roundtrip_req(Request::ExtractFeatures { run: 2, n_run: 3 });
        roundtrip_req(Request::OfflineInfer);
        roundtrip_req(Request::ApplyDelta(vec![9; 100]));
        roundtrip_req(Request::Describe);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Infer {
            features: vec![0.5, -1.25, f32::MAX, 0.0],
        });
        roundtrip_req(Request::Infer { features: vec![] });
        roundtrip_req(Request::Shutdown);
    }

    fn sample_record() -> PhotoRecord {
        PhotoRecord {
            id: 42,
            class: 3,
            day: 7,
            preproc_bytes: 1024,
            blob: vec![5; 96],
            sidecar: vec![9; 33],
        }
    }

    #[test]
    fn placement_ops_roundtrip() {
        let mut map = crate::placement::PlacementMap::new(&[0, 1, 2, 3], 2).expect("map");
        map.mark_down(1).expect("known node");
        roundtrip_req(Request::Placement);
        roundtrip_req(Request::InstallPlacement(map.clone()));
        roundtrip_req(Request::PutPhoto(sample_record()));
        roundtrip_req(Request::GetPhoto(u64::MAX));
        roundtrip_req(Request::ListPhotos);
        roundtrip_req(Request::ExtractFeaturesFor {
            node: 9,
            run: 1,
            n_run: 4,
        });
        roundtrip_req(Request::ExtractSlice {
            node: 3,
            run: 1,
            n_run: 4,
            mb: 2,
            n_mb: 8,
        });
        roundtrip_req(Request::DescribeNode(u64::MAX));
        roundtrip_reply(Reply::Placement(map));
        roundtrip_reply(Reply::Photo(sample_record()));
        roundtrip_reply(Reply::PhotoIds(vec![1, 2, 3, u64::MAX]));
        roundtrip_reply(Reply::PhotoIds(Vec::new()));
    }

    #[test]
    fn truncated_photo_record_rejected() {
        let (tag, full) = Request::PutPhoto(sample_record()).encode_body();
        for cut in 0..full.len() {
            assert!(
                Request::decode_body(tag, &full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Trailing garbage is a protocol error too.
        let mut padded = full;
        padded.push(0);
        assert!(Request::decode_body(tag, &padded).is_err());
    }

    #[test]
    fn corrupt_placement_payload_is_a_protocol_error() {
        assert!(matches!(
            Request::decode_body(TAG_INSTALL_PLACEMENT, &[1, 2, 3]),
            Err(RpcError::Protocol("corrupt placement map"))
        ));
        assert!(matches!(
            Reply::decode_body(TAG_PLACEMENT, &[0; 7]),
            Err(RpcError::Protocol("corrupt placement map"))
        ));
    }

    #[test]
    fn overclaimed_photo_id_count_rejected() {
        // Claims u32::MAX ids, carries one: must error, not allocate.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        put_u64(&mut p, 1);
        assert!(Reply::decode_body(TAG_PHOTO_IDS, &p).is_err());
    }

    #[test]
    fn label_reply_roundtrips() {
        roundtrip_reply(Reply::Label(0));
        roundtrip_reply(Reply::Label(u32::MAX));
    }

    #[test]
    fn truncated_infer_row_rejected() {
        // Claims 3 floats, carries 2.
        let mut p = Vec::new();
        put_u32(&mut p, 3);
        p.extend_from_slice(&1.0f32.to_le_bytes());
        p.extend_from_slice(&2.0f32.to_le_bytes());
        assert!(Request::decode_body(TAG_INFER_ROW, &p).is_err());
        // Overflowing element count must not wrap into a small read.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        assert!(Request::decode_body(TAG_INFER_ROW, &p).is_err());
    }

    #[test]
    fn metrics_reply_roundtrips_a_real_registry() {
        let reg = telemetry::Registry::new();
        reg.counter_with("ndpipe_rpc_requests_total", &[("op", "describe")], "reqs")
            .add(4);
        reg.histogram("ndpipe_rpc_op_seconds", "latency")
            .observe(0.003);
        let snap = reg.snapshot();
        roundtrip_reply(Reply::Metrics(snap.clone()));

        // And over a simulated wire the decoded snapshot still answers
        // queries.
        let mut buf = Vec::new();
        write_reply(&mut buf, &Reply::Metrics(snap)).expect("write");
        match read_reply(&mut buf.as_slice()).expect("read").0 {
            Reply::Metrics(back) => {
                assert_eq!(back.counter_value("ndpipe_rpc_requests_total"), Some(4));
            }
            other => panic!("expected metrics reply, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_metrics_payload_is_a_protocol_error() {
        assert!(matches!(
            Reply::decode_body(TAG_METRICS, &[1, 2, 3]),
            Err(RpcError::Protocol(_))
        ));
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip_reply(Reply::Ack);
        roundtrip_reply(Reply::Features {
            features: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            labels: vec![0, 1],
        });
        roundtrip_reply(Reply::Labels(vec![(7, 3), (9, 0)]));
        roundtrip_reply(Reply::ShardInfo(ShardDesc {
            examples: 123,
            classes: 10,
            math: MathPolicy::Fast,
            kernel: KernelFamily::Avx512,
        }));
    }

    #[test]
    fn shard_info_rejects_unknown_policy_bytes() {
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        put_u32(&mut p, 2);
        p.push(99); // no such MathPolicy
        p.push(0);
        assert!(matches!(
            Reply::decode_body(TAG_SHARD_INFO, &p),
            Err(RpcError::Protocol("unknown math policy"))
        ));
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        put_u32(&mut p, 2);
        p.push(0);
        p.push(99); // no such KernelFamily
        assert!(matches!(
            Reply::decode_body(TAG_SHARD_INFO, &p),
            Err(RpcError::Protocol("unknown kernel family"))
        ));
    }

    #[test]
    fn remote_error_reply_roundtrips() {
        let mut buf = Vec::new();
        write_reply(&mut buf, &Reply::Error("shard missing".into())).expect("write");
        match read_reply(&mut buf.as_slice()) {
            Ok((Reply::Error(msg), _)) => assert!(msg.contains("shard missing")),
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    #[test]
    fn handshake_roundtrips() {
        for hs in [
            Handshake::Hello {
                version: PROTOCOL_VERSION,
                features: FEATURE_METRICS | FEATURE_DELTAS,
            },
            Handshake::Accept {
                version: PROTOCOL_VERSION,
                features: FEATURE_METRICS | FEATURE_DELTAS | FEATURE_MULTI_SESSION,
                store_id: 7,
            },
            Handshake::Reject {
                version: 2,
                reason: "session cap reached".into(),
            },
        ] {
            let mut buf = Vec::new();
            let wrote = write_handshake(&mut buf, &hs).expect("write");
            assert_eq!(wrote, buf.len());
            let back = read_handshake(&mut buf.as_slice()).expect("read");
            assert_eq!(back, hs);
        }
    }

    #[test]
    fn pre_handshake_request_is_a_clear_error() {
        // An old-protocol peer that skips the handshake and sends a
        // request first must fail fast, not misparse.
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Describe).expect("write");
        assert!(matches!(
            read_handshake(&mut buf.as_slice()),
            Err(RpcError::Protocol("expected handshake frame"))
        ));
    }

    #[test]
    fn truncated_handshake_rejected() {
        assert!(Handshake::decode_body(TAG_ACCEPT, &[1, 2, 3]).is_err());
        assert!(Handshake::decode_body(TAG_HELLO, &[0; 11]).is_err());
        // Reject with an empty reason is fine (version survives).
        match Handshake::decode_body(TAG_REJECT, &9u32.to_le_bytes()) {
            Ok(Handshake::Reject { version, reason }) => {
                assert_eq!(version, 9);
                assert!(reason.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.push(TAG_ACK);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(RpcError::Protocol("frame too large"))
        ));
    }

    #[test]
    fn overflowing_feature_dims_rejected() {
        // rows * dim * 4 would wrap; must be a protocol error, not a
        // misparse.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        put_u32(&mut p, u32::MAX);
        let r = Reply::decode_body(TAG_FEATURES, &p);
        assert!(r.is_err(), "wrapped dimensions accepted: {r:?}");
    }

    #[test]
    fn label_count_mismatch_rejected() {
        // Hand-craft a Features payload with inconsistent counts.
        let mut p = Vec::new();
        put_u32(&mut p, 2);
        put_u32(&mut p, 1);
        p.extend_from_slice(&1.0f32.to_le_bytes());
        p.extend_from_slice(&2.0f32.to_le_bytes());
        put_u32(&mut p, 1); // wrong: 2 rows but 1 label
        put_u32(&mut p, 0);
        assert!(Reply::decode_body(TAG_FEATURES, &p).is_err());
    }

    /// Drains every complete frame currently buffered in `dec`.
    fn drain(dec: &mut FrameDecoder) -> Vec<(u8, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().expect("decode") {
            out.push(f);
        }
        out
    }

    #[test]
    fn decoder_matches_blocking_codec_byte_at_a_time() {
        let reqs = vec![
            Request::Describe,
            Request::Infer {
                features: vec![1.0, 2.0, 3.0],
            },
            Request::InstallModel(vec![7; 33]),
            Request::Shutdown,
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            write_request(&mut wire, r).expect("write");
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            got.extend(drain(&mut dec));
        }
        let back: Vec<Request> = got
            .into_iter()
            .map(|(tag, p)| Request::decode_body(tag, &p).expect("decode body"))
            .collect();
        assert_eq!(back, reqs);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_length_prefix() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        dec.feed(&[TAG_ACK]);
        assert!(matches!(
            dec.next_frame(),
            Err(RpcError::Protocol("frame too large"))
        ));
    }

    #[test]
    fn decoder_holds_partial_frames() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::ApplyDelta(vec![1; 64])).expect("write");
        let mut dec = FrameDecoder::new();
        let (head, tail) = wire.split_at(wire.len() - 1);
        dec.feed(head);
        assert!(dec.next_frame().expect("partial").is_none());
        dec.feed(tail);
        let (tag, p) = dec.next_frame().expect("full").expect("frame");
        assert_eq!(
            Request::decode_body(tag, &p).expect("body"),
            Request::ApplyDelta(vec![1; 64])
        );
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_request() -> impl Strategy<Value = Request> {
            prop_oneof![
                Just(Request::Describe),
                Just(Request::Metrics),
                Just(Request::OfflineInfer),
                Just(Request::Shutdown),
                (0u32..8, 1u32..8).prop_map(|(run, n_run)| Request::ExtractFeatures { run, n_run }),
                proptest::collection::vec(any::<u8>(), 0..256).prop_map(Request::InstallModel),
                proptest::collection::vec(any::<u8>(), 0..256).prop_map(Request::ApplyDelta),
                proptest::collection::vec(-1e6f32..1e6, 0..64)
                    .prop_map(|features| Request::Infer { features }),
                Just(Request::Placement),
                Just(Request::ListPhotos),
                any::<u64>().prop_map(Request::GetPhoto),
                (any::<u64>(), 0u32..8, 1u32..8)
                    .prop_map(|(node, run, n_run)| Request::ExtractFeaturesFor {
                        node,
                        run,
                        n_run
                    }),
                (any::<u64>(), 0u32..8, 1u32..8, 0u32..8, 1u32..8).prop_map(
                    |(node, run, n_run, mb, n_mb)| Request::ExtractSlice {
                        node,
                        run,
                        n_run,
                        mb,
                        n_mb
                    }
                ),
                any::<u64>().prop_map(Request::DescribeNode),
                (
                    any::<u64>(),
                    0u32..1000,
                    0u32..4000,
                    proptest::collection::vec(any::<u8>(), 0..128),
                    proptest::collection::vec(any::<u8>(), 0..128),
                )
                    .prop_map(|(id, class, day, blob, sidecar)| {
                        let preproc_bytes = sidecar.len() as u32 * 3;
                        Request::PutPhoto(PhotoRecord {
                            id,
                            class,
                            day,
                            preproc_bytes,
                            blob,
                            sidecar,
                        })
                    }),
            ]
        }

        proptest! {
            /// Satellite: interleaved partial-frame reads across many
            /// sessions decode to exactly what the blocking codec wrote,
            /// per session, in order — regardless of chunk boundaries.
            #[test]
            fn interleaved_sessions_decode_identically(
                sessions in proptest::collection::vec(
                    proptest::collection::vec(arb_request(), 1..8), 2..6),
                chunk_sizes in proptest::collection::vec(1usize..48, 1..64),
                seed in any::<u64>(),
            ) {
                // Encode each session's stream with the blocking writer.
                let wires: Vec<Vec<u8>> = sessions.iter().map(|reqs| {
                    let mut w = Vec::new();
                    for r in reqs {
                        write_request(&mut w, r).expect("write");
                    }
                    w
                }).collect();

                // Interleave: round-robin with pseudorandom chunk sizes,
                // each session owning its own decoder (as the event loop
                // does).
                let mut offsets = vec![0usize; wires.len()];
                let mut decs: Vec<FrameDecoder> =
                    wires.iter().map(|_| FrameDecoder::new()).collect();
                let mut outs: Vec<Vec<Request>> = wires.iter().map(|_| Vec::new()).collect();
                let mut rr = seed as usize;
                let mut ci = 0usize;
                while offsets.iter().zip(&wires).any(|(o, w)| *o < w.len()) {
                    let s = rr % wires.len();
                    rr = rr.wrapping_mul(6364136223846793005).wrapping_add(1) >> 3;
                    let (off, wire) = (&mut offsets[s], &wires[s]);
                    if *off >= wire.len() {
                        continue;
                    }
                    let n = chunk_sizes[ci % chunk_sizes.len()].min(wire.len() - *off);
                    ci += 1;
                    decs[s].feed(&wire[*off..*off + n]);
                    *off += n;
                    while let Some((tag, p)) = decs[s].next_frame().expect("decode") {
                        outs[s].push(Request::decode_body(tag, &p).expect("body"));
                    }
                }
                prop_assert_eq!(outs, sessions);
                for d in &decs {
                    prop_assert_eq!(d.pending_bytes(), 0);
                }
            }

            /// Satellite: malformed bytes must surface as a structured
            /// error (`RpcError::Protocol`) or an incomplete-frame stall —
            /// never a panic, and never a silently misparsed frame that
            /// decodes to garbage without a diagnostic.
            #[test]
            fn malformed_frames_yield_structured_errors(
                junk in proptest::collection::vec(any::<u8>(), 0..512),
                chunk in 1usize..32,
            ) {
                let mut dec = FrameDecoder::new();
                for c in junk.chunks(chunk) {
                    dec.feed(c);
                    loop {
                        match dec.next_frame() {
                            Ok(Some((tag, p))) => {
                                // A frame parsed out of junk is fine only
                                // if its body decode gives a structured
                                // verdict; both arms below are Results,
                                // so a panic here fails the test.
                                let _ = Request::decode_body(tag, &p);
                                let _ = Reply::decode_body(tag, &p);
                            }
                            Ok(None) => break,
                            Err(RpcError::Protocol(msg)) => {
                                prop_assert!(!msg.is_empty());
                                return Ok(());
                            }
                            Err(e) => return Err(TestCaseError::Fail(format!("{e:?}"))),
                        }
                    }
                }
            }
        }
    }
}
