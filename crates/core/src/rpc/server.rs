//! The PipeStore-side request loop.

use crate::checknrun::ModelDelta;
use crate::npe::engine::EngineConfig;
use crate::pipestore::PipeStore;
use crate::rpc::wire::{read_request, write_reply, Reply, Request};
use crate::rpc::RpcError;
use dnn::Mlp;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Default read/write timeout applied to accepted Tuner sockets: a stuck
/// or vanished peer releases the server instead of pinning it forever.
pub const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Serves one Tuner session over `stream`, mutating `store` as requests
/// arrive. Applies [`SERVER_IO_TIMEOUT`] to the socket and records
/// per-operation request counts, latencies and wire bytes into the
/// store's [`PipeStore::metrics`] registry. Returns cleanly when the
/// Tuner sends `Shutdown` or closes the connection.
///
/// # Errors
///
/// Socket/protocol errors (including a peer idle past the timeout).
/// Application-level failures (e.g. applying a mismatched delta) are
/// reported to the peer as `Error` replies and do not tear down the
/// session.
pub fn serve_session(store: &mut PipeStore, stream: TcpStream) -> Result<(), RpcError> {
    stream.set_read_timeout(Some(SERVER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SERVER_IO_TIMEOUT))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let (request, bytes_in) = match read_request(&mut reader) {
            Ok(r) => r,
            Err(RpcError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(()); // peer hung up
            }
            Err(e) => return Err(e),
        };
        let op = request.op_name();
        let record = telemetry::enabled();
        let timer = if record {
            let m = store.metrics();
            m.counter_with(
                "ndpipe_rpc_server_requests_total",
                &[("op", op)],
                "requests handled by this store's RPC server",
            )
            .inc();
            m.counter(
                "ndpipe_rpc_server_bytes_read_total",
                "request bytes read off the wire",
            )
            .add(bytes_in as u64);
            Some(
                m.histogram_with(
                    "ndpipe_rpc_server_op_seconds",
                    &[("op", op)],
                    "server-side handling latency per operation",
                )
                .start_timer(),
            )
        } else {
            None
        };
        let reply = handle(store, request);
        let done = reply.is_none();
        let bytes_out = write_reply(&mut writer, &reply.unwrap_or(Reply::Ack))?;
        if let Some(t) = timer {
            t.observe_and_disarm();
            store
                .metrics()
                .counter(
                    "ndpipe_rpc_server_bytes_written_total",
                    "reply bytes put on the wire",
                )
                .add(bytes_out as u64);
        }
        if done {
            return Ok(());
        }
    }
}

/// Handles one request; `None` means the session should end (after the
/// final Ack).
fn handle(store: &mut PipeStore, request: Request) -> Option<Reply> {
    Some(match request {
        Request::InstallModel(bytes) => match Mlp::from_bytes(&bytes) {
            Ok(model) => {
                store.install_model(model);
                Reply::Ack
            }
            Err(e) => Reply::Error(format!("bad model blob: {e}")),
        },
        Request::ExtractFeatures { run, n_run } => {
            if n_run == 0 || run >= n_run {
                return Some(Reply::Error("bad run index".to_string()));
            }
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let n = store.shard_len();
            let lo = run as usize * n / n_run as usize;
            let hi = (run as usize + 1) * n / n_run as usize;
            if lo >= hi {
                return Some(Reply::Error("empty run slice".to_string()));
            }
            // The batched NPE path: bit-identical to the serial
            // reference, and it feeds the store's pipeline stats.
            let ((features, labels), _stats) =
                store.extract_features_batched(lo..hi, &EngineConfig::default());
            Reply::Features {
                features,
                labels: labels.into_iter().map(|l| l as u32).collect(),
            }
        }
        Request::OfflineInfer => {
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let pairs = store
                .offline_inference()
                .into_iter()
                .map(|(id, label)| (id.0, label as u32))
                .collect();
            Reply::Labels(pairs)
        }
        Request::ApplyDelta(bytes) => match ModelDelta::from_bytes(&bytes) {
            Ok(delta) => match store.model_mut() {
                Some(model) => match delta.apply(model) {
                    Ok(()) => Reply::Ack,
                    Err(e) => Reply::Error(format!("delta apply failed: {e}")),
                },
                None => Reply::Error("no model installed".to_string()),
            },
            Err(e) => Reply::Error(format!("bad delta blob: {e}")),
        },
        Request::Describe => Reply::ShardInfo {
            examples: store.shard_len() as u64,
            classes: store.shard().num_classes() as u32,
        },
        Request::Metrics => Reply::Metrics(store.metrics().snapshot()),
        Request::Shutdown => return None,
    })
}

/// Binds `addr`, accepts exactly one Tuner connection, and serves it to
/// completion. Returns the bound address before blocking via the
/// `on_ready` callback (useful for ephemeral ports in tests/examples).
///
/// # Errors
///
/// Bind/accept/socket errors.
pub fn serve_pipestore_once(
    mut store: PipeStore,
    addr: &str,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<PipeStore, RpcError> {
    let listener = TcpListener::bind(addr)?;
    on_ready(listener.local_addr()?);
    let (stream, _) = listener.accept()?;
    stream.set_nodelay(true).ok();
    serve_session(&mut store, stream)?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store(rng: &mut StdRng) -> PipeStore {
        let u = ClassUniverse::new(8, 4, 3, 0.2, rng);
        let rows: Vec<tensor::Tensor> = (0..9).map(|i| u.sample(i % 3, rng)).collect();
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        PipeStore::new(0, LabeledDataset::new(rows, labels, 3))
    }

    #[test]
    fn handle_rejects_work_without_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = store(&mut rng);
        match handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 1 }) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
        match handle(&mut s, Request::OfflineInfer) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_describe_and_install() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = store(&mut rng);
        match handle(&mut s, Request::Describe) {
            Some(Reply::ShardInfo { examples, classes }) => {
                assert_eq!(examples, 9);
                assert_eq!(classes, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&mut s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        match handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 3 }) {
            Some(Reply::Features { features, labels }) => {
                assert_eq!(features.dims()[0], labels.len());
                assert_eq!(features.dims()[1], 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_rejects_garbage_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = store(&mut rng);
        assert!(matches!(
            handle(&mut s, Request::InstallModel(vec![0, 1, 2])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&mut s, Request::ApplyDelta(vec![1])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&mut s, Request::ExtractFeatures { run: 5, n_run: 3 }),
            Some(Reply::Error(_))
        ));
    }

    #[test]
    fn handle_metrics_returns_store_snapshot() {
        telemetry::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = store(&mut rng);
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&mut s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        // An extraction run populates NPE metrics in the store registry.
        let _ = handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 1 });
        match handle(&mut s, Request::Metrics) {
            Some(Reply::Metrics(snap)) => {
                assert!(!snap.is_empty(), "store registry must have NPE metrics");
                assert!(snap.find("ndpipe_npe_run_wall_seconds").is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shutdown_ends_session() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = store(&mut rng);
        assert_eq!(handle(&mut s, Request::Shutdown), None);
    }
}
