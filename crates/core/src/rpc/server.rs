//! The PipeStore-side RPC serving machinery.
//!
//! [`PipeStoreServer`] is the deployment shape: a session-capped accept
//! loop, one thread per live Tuner session, every session opened by the
//! versioned [`Handshake`] and multiplexed over the same
//! `Mutex<PipeStore>` so concurrent Tuners (or one Tuner's parallel
//! fan-out) can talk to the store at once. [`serve_session`] remains as
//! the single-session, post-handshake building block.

use crate::checknrun::ModelDelta;
use crate::npe::engine::EngineConfig;
use crate::pipestore::PipeStore;
use crate::rpc::wire::{
    read_handshake, read_request, write_handshake, write_reply, Handshake, Reply, Request,
    FEATURE_DELTAS, FEATURE_METRICS, FEATURE_MULTI_SESSION, PROTOCOL_VERSION,
};
use crate::rpc::RpcError;
use dnn::Mlp;
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default read/write timeout applied to accepted Tuner sockets: a stuck
/// or vanished peer releases the server instead of pinning it forever.
pub const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Feature bits this server offers in its handshake `Accept`.
pub const SERVER_FEATURES: u64 = FEATURE_METRICS | FEATURE_DELTAS | FEATURE_MULTI_SESSION;

/// How the accept loop polls for new connections and the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Tuning knobs for [`PipeStoreServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent session cap; connection attempts beyond it are refused
    /// with a handshake `Reject` so the Tuner sees a clear error instead
    /// of an unbounded thread pile-up on the store.
    pub max_sessions: usize,
    /// Read/write timeout on accepted sockets (`None` blocks forever).
    pub io_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 32,
            io_timeout: Some(SERVER_IO_TIMEOUT),
        }
    }
}

/// Performs the server half of the session handshake: read the client's
/// `Hello`, answer `Accept` (or `Reject` on version skew). Handshake
/// frames are deliberately *not* counted in the per-op request metrics —
/// they are session plumbing, not store work.
///
/// # Errors
///
/// [`RpcError::ProtocolMismatch`] when the peer speaks another protocol
/// revision (after telling the peer so), socket/protocol errors
/// otherwise.
fn greet<R: Read, W: Write>(reader: &mut R, writer: &mut W, store_id: u64) -> Result<(), RpcError> {
    match read_handshake(reader)? {
        Handshake::Hello { version, .. } => {
            if version == PROTOCOL_VERSION {
                write_handshake(
                    writer,
                    &Handshake::Accept {
                        version: PROTOCOL_VERSION,
                        features: SERVER_FEATURES,
                        store_id,
                    },
                )?;
                Ok(())
            } else {
                write_handshake(
                    writer,
                    &Handshake::Reject {
                        version: PROTOCOL_VERSION,
                        reason: format!("server speaks protocol v{PROTOCOL_VERSION}"),
                    },
                )?;
                Err(RpcError::ProtocolMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                })
            }
        }
        Handshake::Accept { .. } | Handshake::Reject { .. } => {
            Err(RpcError::Protocol("expected hello from client"))
        }
    }
}

/// The post-handshake request loop, generic over how the store is
/// reached so the same code serves both the exclusive single-session
/// path and the mutex-shared concurrent path.
fn session_loop<R: Read, W: Write>(
    registry: &telemetry::Registry,
    reader: &mut R,
    writer: &mut W,
    mut with_store: impl FnMut(Request) -> Option<Reply>,
) -> Result<(), RpcError> {
    loop {
        let (request, bytes_in) = match read_request(reader) {
            Ok(r) => r,
            Err(RpcError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(()); // peer hung up
            }
            Err(e) => return Err(e),
        };
        let op = request.op_name();
        let record = telemetry::enabled();
        let timer = if record {
            registry
                .counter_with(
                    "ndpipe_rpc_server_requests_total",
                    &[("op", op)],
                    "requests handled by this store's RPC server",
                )
                .inc();
            registry
                .counter(
                    "ndpipe_rpc_server_bytes_read_total",
                    "request bytes read off the wire",
                )
                .add(bytes_in as u64);
            Some(
                registry
                    .histogram_with(
                        "ndpipe_rpc_server_op_seconds",
                        &[("op", op)],
                        "server-side handling latency per operation",
                    )
                    .start_timer(),
            )
        } else {
            None
        };
        let reply = with_store(request);
        let done = reply.is_none();
        let bytes_out = write_reply(writer, &reply.unwrap_or(Reply::Ack))?;
        if let Some(t) = timer {
            t.observe_and_disarm();
            registry
                .counter(
                    "ndpipe_rpc_server_bytes_written_total",
                    "reply bytes put on the wire",
                )
                .add(bytes_out as u64);
        }
        if done {
            return Ok(());
        }
    }
}

/// Serves one already-handshaken Tuner session over `stream`, mutating
/// `store` as requests arrive. Applies [`SERVER_IO_TIMEOUT`] to the
/// socket and records per-operation request counts, latencies and wire
/// bytes into the store's [`PipeStore::metrics`] registry. Returns
/// cleanly when the Tuner sends `Shutdown` or closes the connection.
///
/// # Errors
///
/// Socket/protocol errors (including a peer idle past the timeout).
/// Application-level failures (e.g. applying a mismatched delta) are
/// reported to the peer as `Error` replies and do not tear down the
/// session.
pub fn serve_session(store: &mut PipeStore, stream: TcpStream) -> Result<(), RpcError> {
    stream.set_read_timeout(Some(SERVER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SERVER_IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let registry = Arc::clone(store.metrics());
    session_loop(&registry, &mut reader, &mut writer, |req| {
        handle(store, req)
    })
}

/// Handles one request; `None` means the session should end (after the
/// final Ack).
fn handle(store: &mut PipeStore, request: Request) -> Option<Reply> {
    Some(match request {
        Request::InstallModel(bytes) => match Mlp::from_bytes(&bytes) {
            Ok(model) => {
                store.install_model(model);
                Reply::Ack
            }
            Err(e) => Reply::Error(format!("bad model blob: {e}")),
        },
        Request::ExtractFeatures { run, n_run } => {
            if n_run == 0 || run >= n_run {
                return Some(Reply::Error("bad run index".to_string()));
            }
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let n = store.shard_len();
            let lo = run as usize * n / n_run as usize;
            let hi = (run as usize + 1) * n / n_run as usize;
            if lo >= hi {
                return Some(Reply::Error("empty run slice".to_string()));
            }
            // The batched NPE path: bit-identical to the serial
            // reference, and it feeds the store's pipeline stats.
            let ((features, labels), _stats) =
                store.extract_features_batched(lo..hi, &EngineConfig::default());
            Reply::Features {
                features,
                labels: labels.into_iter().map(|l| l as u32).collect(),
            }
        }
        Request::OfflineInfer => {
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let pairs = store
                .offline_inference()
                .into_iter()
                .map(|(id, label)| (id.0, label as u32))
                .collect();
            Reply::Labels(pairs)
        }
        Request::ApplyDelta(bytes) => match ModelDelta::from_bytes(&bytes) {
            Ok(delta) => match store.model_mut() {
                Some(model) => match delta.apply(model) {
                    Ok(()) => Reply::Ack,
                    Err(e) => Reply::Error(format!("delta apply failed: {e}")),
                },
                None => Reply::Error("no model installed".to_string()),
            },
            Err(e) => Reply::Error(format!("bad delta blob: {e}")),
        },
        Request::Describe => Reply::ShardInfo {
            examples: store.shard_len() as u64,
            classes: store.shard().num_classes() as u32,
        },
        Request::Metrics => Reply::Metrics(store.metrics().snapshot()),
        Request::Shutdown => return None,
    })
}

/// A live session tracked by the server: the raw socket (so
/// [`PipeStoreServer::abort`] can slam it) and the serving thread.
struct SessionSlot {
    stream: TcpStream,
    thread: JoinHandle<()>,
}

/// State shared between the server handle, the accept thread, and every
/// session thread.
struct Shared {
    store: Mutex<PipeStore>,
    /// The store's registry, cloned out so sessions record metrics
    /// without holding the store lock.
    registry: Arc<telemetry::Registry>,
    store_id: u64,
    cfg: ServerConfig,
    stop: AtomicBool,
    active: AtomicUsize,
    completed: AtomicUsize,
    sessions: Mutex<Vec<SessionSlot>>,
    first_error: Mutex<Option<RpcError>>,
}

impl Shared {
    fn session_gauge(&self, delta: f64) {
        if telemetry::enabled() {
            self.registry
                .gauge(
                    "ndpipe_rpc_sessions_active",
                    "live Tuner sessions on this store's RPC server",
                )
                .add(delta);
        }
    }
}

/// A concurrent RPC server wrapping one [`PipeStore`]: binds a listener,
/// accepts up to [`ServerConfig::max_sessions`] simultaneous Tuner
/// sessions (thread-per-connection over the shared store), and gives the
/// store back on [`PipeStoreServer::shutdown`].
///
/// ```no_run
/// use ndpipe::rpc::{PipeStoreServer, ServerConfig};
/// # fn demo(store: ndpipe::PipeStore) -> Result<(), ndpipe::rpc::RpcError> {
/// let server = PipeStoreServer::bind(store, "127.0.0.1:0", ServerConfig::default())?;
/// println!("serving on {}", server.local_addr());
/// // ... Tuners connect, do work, end their sessions ...
/// let store = server.shutdown()?;
/// # let _ = store; Ok(()) }
/// ```
pub struct PipeStoreServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl PipeStoreServer {
    /// Binds `addr` and starts the accept loop in a background thread.
    ///
    /// # Errors
    ///
    /// Bind/socket errors.
    pub fn bind(store: PipeStore, addr: &str, cfg: ServerConfig) -> Result<Self, RpcError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let registry = Arc::clone(store.metrics());
        let store_id = store.id() as u64;
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            registry,
            store_id,
            cfg,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            sessions: Mutex::new(Vec::new()),
            first_error: Mutex::new(None),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name(format!("ndpipe-accept-{store_id}"))
            .spawn(move || accept_loop(&accept_shared, &listener))?;
        Ok(PipeStoreServer {
            shared,
            accept: Some(accept),
            addr: local,
        })
    }

    /// The bound listen address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Sessions that have ended (cleanly or not) since bind.
    pub fn completed_sessions(&self) -> usize {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Blocks until at least `min_completed` sessions have ended and no
    /// session is in flight.
    pub fn wait_idle(&self, min_completed: usize) {
        loop {
            if self.shared.completed.load(Ordering::SeqCst) >= min_completed
                && self.shared.active.load(Ordering::SeqCst) == 0
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Like [`PipeStoreServer::wait_idle`] but gives up after `timeout`,
    /// returning whether the condition was reached.
    pub fn wait_idle_timeout(&self, min_completed: usize, timeout: Duration) -> bool {
        let t0 = Instant::now();
        loop {
            if self.shared.completed.load(Ordering::SeqCst) >= min_completed
                && self.shared.active.load(Ordering::SeqCst) == 0
            {
                return true;
            }
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops accepting, drains in-flight sessions (each runs until its
    /// Tuner ends the session, hangs up, or idles past the I/O timeout),
    /// and returns the store.
    ///
    /// # Errors
    ///
    /// The first session-level error observed since bind, if any.
    pub fn shutdown(self) -> Result<PipeStore, RpcError> {
        self.teardown(false)
    }

    /// Hard-stops the server: slams every live session socket shut and
    /// closes the listener, so peers observe connection errors. Session
    /// errors caused by the abort are discarded. Used by failure-injection
    /// tests to simulate a killed store.
    ///
    /// # Errors
    ///
    /// Only internal teardown failures; peer-visible errors are expected
    /// and swallowed.
    pub fn abort(self) -> Result<PipeStore, RpcError> {
        self.teardown(true)
    }

    fn teardown(mut self, hard: bool) -> Result<PipeStore, RpcError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if hard {
            for slot in self.shared.sessions.lock().iter() {
                let _ = slot.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let slots = std::mem::take(&mut *self.shared.sessions.lock());
        for slot in slots {
            let _ = slot.thread.join();
        }
        let PipeStoreServer { shared, .. } = self;
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| RpcError::Protocol("server state still referenced after join"))?;
        let store = shared.store.into_inner();
        match shared.first_error.into_inner() {
            Some(e) if !hard => Err(e),
            _ => Ok(store),
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_sessions {
                    refuse(stream, "session cap reached");
                    continue;
                }
                spawn_session(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Refuses a connection with a handshake `Reject` (best-effort; the peer
/// may already be gone).
fn refuse(stream: TcpStream, reason: &str) {
    let mut writer = BufWriter::new(stream);
    let _ = write_handshake(
        &mut writer,
        &Handshake::Reject {
            version: PROTOCOL_VERSION,
            reason: reason.to_string(),
        },
    );
}

fn spawn_session(shared: &Arc<Shared>, stream: TcpStream) {
    let conn = match stream.try_clone() {
        Ok(c) => c,
        Err(_) => return, // socket already dead
    };
    shared.active.fetch_add(1, Ordering::SeqCst);
    shared.session_gauge(1.0);
    let sh = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("ndpipe-session".to_string())
        .spawn(move || {
            let result = serve_shared_session(&sh, stream);
            match result {
                Ok(()) => {}
                // A version-skewed peer was told so and refused; that is
                // the server working as designed, not a server fault.
                Err(RpcError::ProtocolMismatch { .. }) => {}
                Err(e) => {
                    let mut slot = sh.first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
            sh.active.fetch_sub(1, Ordering::SeqCst);
            sh.completed.fetch_add(1, Ordering::SeqCst);
            sh.session_gauge(-1.0);
        });
    match spawned {
        Ok(thread) => shared.sessions.lock().push(SessionSlot {
            stream: conn,
            thread,
        }),
        Err(_) => {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.session_gauge(-1.0);
        }
    }
}

/// One session over the shared store: handshake, then the request loop
/// locking the store per-request (so parallel sessions interleave at
/// request granularity instead of serializing whole sessions).
fn serve_shared_session(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), RpcError> {
    stream.set_read_timeout(shared.cfg.io_timeout)?;
    stream.set_write_timeout(shared.cfg.io_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    greet(&mut reader, &mut writer, shared.store_id)?;
    session_loop(&shared.registry, &mut reader, &mut writer, |req| {
        handle(&mut shared.store.lock(), req)
    })
}

/// Binds `addr`, serves Tuner sessions until the first one completes,
/// then shuts down and returns the store. Reports the bound address via
/// `on_ready` before serving (useful for ephemeral ports).
///
/// # Errors
///
/// Bind/accept/socket errors.
#[deprecated(note = "use PipeStoreServer::bind for concurrent, session-capped serving")]
pub fn serve_pipestore_once(
    store: PipeStore,
    addr: &str,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<PipeStore, RpcError> {
    let server = PipeStoreServer::bind(store, addr, ServerConfig::default())?;
    on_ready(server.local_addr());
    server.wait_idle(1);
    server.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store(rng: &mut StdRng) -> PipeStore {
        let u = ClassUniverse::new(8, 4, 3, 0.2, rng);
        let rows: Vec<tensor::Tensor> = (0..9).map(|i| u.sample(i % 3, rng)).collect();
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        PipeStore::new(0, LabeledDataset::new(rows, labels, 3))
    }

    #[test]
    fn handle_rejects_work_without_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = store(&mut rng);
        match handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 1 }) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
        match handle(&mut s, Request::OfflineInfer) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_describe_and_install() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = store(&mut rng);
        match handle(&mut s, Request::Describe) {
            Some(Reply::ShardInfo { examples, classes }) => {
                assert_eq!(examples, 9);
                assert_eq!(classes, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&mut s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        match handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 3 }) {
            Some(Reply::Features { features, labels }) => {
                assert_eq!(features.dims()[0], labels.len());
                assert_eq!(features.dims()[1], 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_rejects_garbage_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = store(&mut rng);
        assert!(matches!(
            handle(&mut s, Request::InstallModel(vec![0, 1, 2])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&mut s, Request::ApplyDelta(vec![1])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&mut s, Request::ExtractFeatures { run: 5, n_run: 3 }),
            Some(Reply::Error(_))
        ));
    }

    #[test]
    fn handle_metrics_returns_store_snapshot() {
        telemetry::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = store(&mut rng);
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&mut s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        // An extraction run populates NPE metrics in the store registry.
        let _ = handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 1 });
        match handle(&mut s, Request::Metrics) {
            Some(Reply::Metrics(snap)) => {
                assert!(!snap.is_empty(), "store registry must have NPE metrics");
                assert!(snap.find("ndpipe_npe_run_wall_seconds").is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shutdown_ends_session() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = store(&mut rng);
        assert_eq!(handle(&mut s, Request::Shutdown), None);
    }

    #[test]
    fn greet_accepts_matching_version() {
        let mut hello = Vec::new();
        write_handshake(
            &mut hello,
            &Handshake::Hello {
                version: PROTOCOL_VERSION,
                features: 0,
            },
        )
        .expect("encode hello");
        let mut out = Vec::new();
        greet(&mut hello.as_slice(), &mut out, 42).expect("greet");
        match read_handshake(&mut out.as_slice()).expect("decode accept") {
            Handshake::Accept {
                version, store_id, ..
            } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(store_id, 42);
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn greet_rejects_version_skew_with_structured_error() {
        let mut hello = Vec::new();
        write_handshake(
            &mut hello,
            &Handshake::Hello {
                version: 99,
                features: 0,
            },
        )
        .expect("encode hello");
        let mut out = Vec::new();
        match greet(&mut hello.as_slice(), &mut out, 1) {
            Err(RpcError::ProtocolMismatch { ours, theirs }) => {
                assert_eq!(ours, PROTOCOL_VERSION);
                assert_eq!(theirs, 99);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        // And the peer was told, with our version so it can diagnose.
        match read_handshake(&mut out.as_slice()).expect("decode reject") {
            Handshake::Reject { version, reason } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert!(reason.contains("protocol"));
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }
}
