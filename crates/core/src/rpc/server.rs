//! The PipeStore-side request loop.

use crate::checknrun::ModelDelta;
use crate::pipestore::PipeStore;
use crate::rpc::wire::{read_request, write_reply, Reply, Request};
use crate::rpc::RpcError;
use dnn::Mlp;
use std::net::{TcpListener, TcpStream};

/// Serves one Tuner session over `stream`, mutating `store` as requests
/// arrive. Returns cleanly when the Tuner sends `Shutdown` or closes the
/// connection.
///
/// # Errors
///
/// Socket/protocol errors. Application-level failures (e.g. applying a
/// mismatched delta) are reported to the peer as `Error` replies and do
/// not tear down the session.
pub fn serve_session(store: &mut PipeStore, stream: TcpStream) -> Result<(), RpcError> {
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(RpcError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(()); // peer hung up
            }
            Err(e) => return Err(e),
        };
        let reply = handle(store, request);
        let done = reply.is_none();
        write_reply(&mut writer, &reply.unwrap_or(Reply::Ack))?;
        if done {
            return Ok(());
        }
    }
}

/// Handles one request; `None` means the session should end (after the
/// final Ack).
fn handle(store: &mut PipeStore, request: Request) -> Option<Reply> {
    Some(match request {
        Request::InstallModel(bytes) => match Mlp::from_bytes(&bytes) {
            Ok(model) => {
                store.install_model(model);
                Reply::Ack
            }
            Err(e) => Reply::Error(format!("bad model blob: {e}")),
        },
        Request::ExtractFeatures { run, n_run } => {
            if n_run == 0 || run >= n_run {
                return Some(Reply::Error("bad run index".to_string()));
            }
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let n = store.shard_len();
            let lo = run as usize * n / n_run as usize;
            let hi = (run as usize + 1) * n / n_run as usize;
            if lo >= hi {
                return Some(Reply::Error("empty run slice".to_string()));
            }
            let (features, labels) = store.extract_features(lo..hi);
            Reply::Features {
                features,
                labels: labels.into_iter().map(|l| l as u32).collect(),
            }
        }
        Request::OfflineInfer => {
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let pairs = store
                .offline_inference()
                .into_iter()
                .map(|(id, label)| (id.0, label as u32))
                .collect();
            Reply::Labels(pairs)
        }
        Request::ApplyDelta(bytes) => match ModelDelta::from_bytes(&bytes) {
            Ok(delta) => match store.model_mut() {
                Some(model) => match delta.apply(model) {
                    Ok(()) => Reply::Ack,
                    Err(e) => Reply::Error(format!("delta apply failed: {e}")),
                },
                None => Reply::Error("no model installed".to_string()),
            },
            Err(e) => Reply::Error(format!("bad delta blob: {e}")),
        },
        Request::Describe => Reply::ShardInfo {
            examples: store.shard_len() as u64,
            classes: store.shard().num_classes() as u32,
        },
        Request::Shutdown => return None,
    })
}

/// Binds `addr`, accepts exactly one Tuner connection, and serves it to
/// completion. Returns the bound address before blocking via the
/// `on_ready` callback (useful for ephemeral ports in tests/examples).
///
/// # Errors
///
/// Bind/accept/socket errors.
pub fn serve_pipestore_once(
    mut store: PipeStore,
    addr: &str,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<PipeStore, RpcError> {
    let listener = TcpListener::bind(addr)?;
    on_ready(listener.local_addr()?);
    let (stream, _) = listener.accept()?;
    stream.set_nodelay(true).ok();
    serve_session(&mut store, stream)?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store(rng: &mut StdRng) -> PipeStore {
        let u = ClassUniverse::new(8, 4, 3, 0.2, rng);
        let rows: Vec<tensor::Tensor> = (0..9).map(|i| u.sample(i % 3, rng)).collect();
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        PipeStore::new(0, LabeledDataset::new(rows, labels, 3))
    }

    #[test]
    fn handle_rejects_work_without_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = store(&mut rng);
        match handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 1 }) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
        match handle(&mut s, Request::OfflineInfer) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_describe_and_install() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = store(&mut rng);
        match handle(&mut s, Request::Describe) {
            Some(Reply::ShardInfo { examples, classes }) => {
                assert_eq!(examples, 9);
                assert_eq!(classes, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&mut s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        match handle(&mut s, Request::ExtractFeatures { run: 0, n_run: 3 }) {
            Some(Reply::Features { features, labels }) => {
                assert_eq!(features.dims()[0], labels.len());
                assert_eq!(features.dims()[1], 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_rejects_garbage_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = store(&mut rng);
        assert!(matches!(
            handle(&mut s, Request::InstallModel(vec![0, 1, 2])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&mut s, Request::ApplyDelta(vec![1])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&mut s, Request::ExtractFeatures { run: 5, n_run: 3 }),
            Some(Reply::Error(_))
        ));
    }

    #[test]
    fn shutdown_ends_session() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = store(&mut rng);
        assert_eq!(handle(&mut s, Request::Shutdown), None);
    }
}
