//! The PipeStore-side RPC serving machinery: an event-driven front door.
//!
//! [`PipeStoreServer`] runs one *event thread* over a readiness loop
//! ([`crate::rpc::sys::poll_fds`]): nonblocking accepts, per-session
//! read/write buffers with incremental frame decode
//! ([`crate::rpc::wire::FrameDecoder`]), and request pipelining — a
//! session may have many requests in flight, and replies flush back in
//! request order through a per-session reorder buffer. Store work runs
//! on a small configurable worker pool ([`ServerConfig::workers`]) so a
//! slow operation never blocks the poll loop, and `Infer` rows from
//! *different* sessions are coalesced into one batched forward call
//! (cross-session dynamic batching, [`ServerConfig::batch`]).
//!
//! The session cap is a real concurrency cap, not a thread cap: the
//! default [`ServerConfig::max_sessions`] admits thousands of idle
//! sessions because each one costs a slab slot and two buffers, not a
//! stack. [`serve_session`] remains as the blocking, single-session,
//! post-handshake building block.

use crate::checknrun::ModelDelta;
use crate::npe::engine::EngineConfig;
use crate::online::BatchPolicy;
use crate::pipestore::PipeStore;
use crate::rpc::sys::{poll_fds, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::rpc::wire::{
    frame_bytes, read_request, write_reply, FrameDecoder, Handshake, Reply, Request, ShardDesc,
    FEATURE_DELTAS, FEATURE_METRICS, FEATURE_MULTI_SESSION, PROTOCOL_VERSION,
};
use crate::rpc::RpcError;
use crossbeam::channel::{Receiver, Sender, TrySendError};
use dnn::Mlp;
use ndpipe_data::PhotoId;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// Default idle timeout on accepted sessions: a stuck or vanished peer
/// releases its slot instead of pinning it forever.
pub const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Feature bits this server offers in its handshake `Accept`.
pub const SERVER_FEATURES: u64 = FEATURE_METRICS | FEATURE_DELTAS | FEATURE_MULTI_SESSION;

/// Bounded depth of the event-thread → worker-pool request queue; the
/// event thread drains finished replies while waiting for space, so a
/// full queue is backpressure, not a deadlock.
const WORK_QUEUE_CAP: usize = 1024;

/// Bounded depth of the worker-pool → event-thread reply queue.
const DONE_QUEUE_CAP: usize = 4096;

/// Poll timeout when nothing is due: the loop also re-checks the stop
/// flag and the idle sweep at this cadence.
const IDLE_TICK: Duration = Duration::from_millis(10);

/// Read buffer per readable event; large enough to swallow a batch of
/// pipelined frames in one syscall.
const READ_CHUNK: usize = 64 * 1024;

/// Tuning knobs for [`PipeStoreServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent session cap; connection attempts beyond it are refused
    /// with a handshake `Reject` so the Tuner sees a clear error. The
    /// event-driven server spends a slab slot (not a thread) per
    /// session, so the default is generous.
    pub max_sessions: usize,
    /// Idle timeout: a session with no traffic and no work in flight for
    /// this long is closed (`None` keeps idle sessions forever).
    pub io_timeout: Option<Duration>,
    /// Worker threads executing store operations off the event thread.
    pub workers: usize,
    /// Coalesce `Infer` rows from different sessions into one batched
    /// forward call. When `false` every `Infer` runs as its own
    /// single-row forward (the per-session baseline).
    pub coalesce: bool,
    /// Batch window for cross-session coalescing: fire on
    /// [`BatchPolicy::max_batch`] rows or [`BatchPolicy::max_delay`],
    /// whichever comes first.
    pub batch: BatchPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 4096,
            io_timeout: Some(SERVER_IO_TIMEOUT),
            workers: 2,
            coalesce: true,
            batch: BatchPolicy::default(),
        }
    }
}

/// Outcome of the server half of the session handshake.
#[derive(Debug)]
enum Greeting {
    /// Send this `Accept` frame; the session proceeds to requests.
    Accepted(Handshake),
    /// Send this `Reject` frame; the session ends once it flushes.
    Refused(Handshake),
}

/// Decides the server's answer to a client's opening handshake frame.
/// Version skew is an expected condition (the peer is told and refused),
/// not a server fault. Handshake frames are deliberately *not* counted
/// in the per-op request metrics — they are session plumbing, not store
/// work.
///
/// # Errors
///
/// [`RpcError::Protocol`] when the peer opens with `Accept` or `Reject`
/// instead of `Hello` — only clients greet first.
fn greet(hs: &Handshake, store_id: u64) -> Result<Greeting, RpcError> {
    match hs {
        Handshake::Hello { version, .. } => {
            if *version == PROTOCOL_VERSION {
                Ok(Greeting::Accepted(Handshake::Accept {
                    version: PROTOCOL_VERSION,
                    features: SERVER_FEATURES,
                    store_id,
                }))
            } else {
                Ok(Greeting::Refused(Handshake::Reject {
                    version: PROTOCOL_VERSION,
                    reason: format!("server speaks protocol v{PROTOCOL_VERSION}"),
                }))
            }
        }
        Handshake::Accept { .. } | Handshake::Reject { .. } => {
            Err(RpcError::Protocol("expected hello from client"))
        }
    }
}

/// The blocking post-handshake request loop, kept for the
/// single-session [`serve_session`] building block (the concurrent
/// server uses the event loop instead).
fn session_loop<R: Read, W: Write>(
    registry: &telemetry::Registry,
    reader: &mut R,
    writer: &mut W,
    mut with_store: impl FnMut(Request) -> Option<Reply>,
) -> Result<(), RpcError> {
    loop {
        let (request, bytes_in) = match read_request(reader) {
            Ok(r) => r,
            Err(RpcError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(()); // peer hung up
            }
            Err(e) => return Err(e),
        };
        let op = request.op_name();
        let record = telemetry::enabled();
        let timer = if record {
            registry
                .counter_with(
                    "ndpipe_rpc_server_requests_total",
                    &[("op", op)],
                    "requests handled by this store's RPC server",
                )
                .inc();
            registry
                .counter(
                    "ndpipe_rpc_server_bytes_read_total",
                    "request bytes read off the wire",
                )
                .add(bytes_in as u64);
            Some(
                registry
                    .histogram_with(
                        "ndpipe_rpc_server_op_seconds",
                        &[("op", op)],
                        "server-side handling latency per operation",
                    )
                    .start_timer(),
            )
        } else {
            None
        };
        let reply = with_store(request);
        let done = reply.is_none();
        let bytes_out = write_reply(writer, &reply.unwrap_or(Reply::Ack))?;
        if let Some(t) = timer {
            t.observe_and_disarm();
            registry
                .counter(
                    "ndpipe_rpc_server_bytes_written_total",
                    "reply bytes put on the wire",
                )
                .add(bytes_out as u64);
        }
        if done {
            return Ok(());
        }
    }
}

/// Serves one already-handshaken Tuner session over `stream`, blocking
/// the calling thread. Applies [`SERVER_IO_TIMEOUT`] to the socket and
/// records per-operation request counts, latencies and wire bytes into
/// the store's [`PipeStore::metrics`] registry. Returns cleanly when the
/// Tuner sends `Shutdown` or closes the connection.
///
/// # Errors
///
/// Socket/protocol errors (including a peer idle past the timeout).
/// Application-level failures (e.g. applying a mismatched delta) are
/// reported to the peer as `Error` replies and do not tear down the
/// session.
pub fn serve_session(store: &RwLock<PipeStore>, stream: TcpStream) -> Result<(), RpcError> {
    stream.set_read_timeout(Some(SERVER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SERVER_IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let registry = Arc::clone(store.read().metrics());
    session_loop(&registry, &mut reader, &mut writer, |req| {
        handle(store, req)
    })
}

/// Handles one request; `None` means the session should end (after the
/// final Ack). Read-mostly operations take the store's read lock so
/// parallel workers can overlap; `InstallModel` and `ApplyDelta` take
/// the write lock for exclusivity.
fn handle(store: &RwLock<PipeStore>, request: Request) -> Option<Reply> {
    // Sanitizer witness for the store lock each arm acquires; held for
    // the whole dispatch, which over-approximates the guard's extent in
    // exactly the direction the ordering check needs.
    let _w = crate::sanitize::order(crate::sanitize::RANK_STORE, "store");
    Some(match request {
        Request::InstallModel(bytes) => match Mlp::from_bytes(&bytes) {
            Ok(model) => {
                // ndlint: allow(blocking, reason = "this resolves to PipeStore::install_model (in-memory swap + republish); the widened chain through the Tuner-side Client::install_model is a different receiver type")
                store.write().install_model(model);
                Reply::Ack
            }
            Err(e) => Reply::Error(format!("bad model blob: {e}")),
        },
        Request::ExtractFeatures { run, n_run } => {
            if n_run == 0 || run >= n_run {
                return Some(Reply::Error("bad run index".to_string()));
            }
            let store = store.read();
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let n = store.shard_len();
            let lo = run as usize * n / n_run as usize;
            let hi = (run as usize + 1) * n / n_run as usize;
            if lo >= hi {
                return Some(Reply::Error("empty run slice".to_string()));
            }
            // The batched NPE path: bit-identical to the serial
            // reference, and it feeds the store's pipeline stats.
            let cfg = EngineConfig::default();
            // ndlint: allow(blocking, reason = "the only sleep on this path is the opt-in straggler simulation delay (PipeStore::set_extract_delay), never set on production paths; extraction itself must hold the store guard")
            let ((features, labels), _stats) = store.extract_features_batched(lo..hi, &cfg);
            Reply::Features {
                features,
                labels: labels.into_iter().map(|l| l as u32).collect(),
            }
        }
        Request::OfflineInfer => {
            let store = store.read();
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let pairs = store
                .offline_inference()
                .into_iter()
                .map(|(id, label)| (id.0, label as u32))
                .collect();
            Reply::Labels(pairs)
        }
        Request::ApplyDelta(bytes) => match ModelDelta::from_bytes(&bytes) {
            Ok(delta) => {
                let mut guard = store.write();
                match guard.model_mut() {
                    Some(model) => match delta.apply(model) {
                        Ok(()) => {
                            // Republish eagerly so the next batched Infer
                            // reads the fine-tuned snapshot without paying
                            // the lazy version check.
                            guard.republish_model();
                            Reply::Ack
                        }
                        Err(e) => Reply::Error(format!("delta apply failed: {e}")),
                    },
                    None => Reply::Error("no model installed".to_string()),
                }
            }
            Err(e) => Reply::Error(format!("bad delta blob: {e}")),
        },
        Request::Describe => {
            let store = store.read();
            Reply::ShardInfo(ShardDesc {
                examples: store.shard_len() as u64,
                classes: store.shard().num_classes() as u32,
                math: store.math_policy(),
                kernel: tensor::linalg::selected_kernel(store.math_policy()),
            })
        }
        Request::Infer { features } => infer_one(&store.read(), &features),
        Request::Metrics => Reply::Metrics(store.read().metrics().snapshot()),
        // ndlint: allow(blocking, reason = "this resolves to PipeStore::placement (clones the cached map); the widened chain through Client::placement is a different receiver type")
        Request::Placement => match store.read().placement() {
            Some(map) => Reply::Placement(map),
            None => Reply::Error("no placement map installed".to_string()),
        },
        // ndlint: allow(blocking, reason = "this resolves to PipeStore::install_placement (epoch-checked map swap); the widened chain through Client::install_placement is a different receiver type")
        Request::InstallPlacement(map) => match store.read().install_placement(map) {
            Ok(_) => Reply::Ack,
            Err(held) => Reply::Error(format!("stale placement epoch (holding {held})")),
        },
        Request::PutPhoto(rec) => {
            // Duplicate ids are an idempotent success: rebalance and a
            // retried replicated write may both land the same record.
            store.read().store_photo_record(rec);
            Reply::Ack
        }
        Request::GetPhoto(id) => match store.read().photo_record(PhotoId(id)) {
            Some(rec) => Reply::Photo(rec),
            None => Reply::Error(format!("photo {id} not stored here")),
        },
        Request::ListPhotos => Reply::PhotoIds(store.read().photo_ids()),
        Request::ExtractFeaturesFor { node, run, n_run } => {
            if n_run == 0 || run >= n_run {
                return Some(Reply::Error("bad run index".to_string()));
            }
            let store = store.read();
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let Some(shard) = store.shard_for(node) else {
                return Some(Reply::Error(format!("no replica shard for node {node}")));
            };
            let n = shard.len();
            let lo = run as usize * n / n_run as usize;
            let hi = (run as usize + 1) * n / n_run as usize;
            if lo >= hi {
                return Some(Reply::Error("empty run slice".to_string()));
            }
            // ndlint: allow(blocking, reason = "the only sleep on this path is the opt-in straggler simulation delay (PipeStore::set_extract_delay), never set on production paths; extraction itself must hold the store guard")
            match store.extract_features_batched_for(node, lo..hi, &EngineConfig::default()) {
                Some(((features, labels), _stats)) => Reply::Features {
                    features,
                    labels: labels.into_iter().map(|l| l as u32).collect(),
                },
                None => Reply::Error(format!("no replica shard for node {node}")),
            }
        }
        Request::ExtractSlice {
            node,
            run,
            n_run,
            mb,
            n_mb,
        } => {
            if n_run == 0 || run >= n_run {
                return Some(Reply::Error("bad run index".to_string()));
            }
            if n_mb == 0 || mb >= n_mb {
                return Some(Reply::Error("bad micro-batch index".to_string()));
            }
            let store = store.read();
            if store.model().is_none() {
                return Some(Reply::Error("no model installed".to_string()));
            }
            let Some(shard) = store.shard_for(node) else {
                return Some(Reply::Error(format!("no replica shard for node {node}")));
            };
            let n = shard.len();
            let lo = run as usize * n / n_run as usize;
            let hi = (run as usize + 1) * n / n_run as usize;
            // Micro-batch sub-slices partition [lo, hi) contiguously, so
            // concatenating replies in mb order is bit-identical to one
            // whole-run extraction.
            let mlo = lo + mb as usize * (hi - lo) / n_mb as usize;
            let mhi = lo + (mb as usize + 1) * (hi - lo) / n_mb as usize;
            if mlo >= mhi {
                return Some(Reply::Error("empty micro-batch slice".to_string()));
            }
            // ndlint: allow(blocking, reason = "the only sleep on this path is the opt-in straggler simulation delay (PipeStore::set_extract_delay), never set on production paths; extraction itself must hold the store guard")
            match store.extract_features_batched_for(node, mlo..mhi, &EngineConfig::default()) {
                Some(((features, labels), _stats)) => Reply::Features {
                    features,
                    labels: labels.into_iter().map(|l| l as u32).collect(),
                },
                None => Reply::Error(format!("no replica shard for node {node}")),
            }
        }
        Request::DescribeNode(node) => {
            let store = store.read();
            match store.shard_for(node) {
                Some(shard) => Reply::ShardInfo(ShardDesc {
                    examples: shard.len() as u64,
                    classes: shard.num_classes() as u32,
                    math: store.math_policy(),
                    kernel: tensor::linalg::selected_kernel(store.math_policy()),
                }),
                None => Reply::Error(format!("no replica shard for node {node}")),
            }
        }
        Request::Shutdown => return None,
    })
}

/// Classifies one feature row against the store's published model
/// snapshot (the un-coalesced path: blocking sessions, or
/// [`ServerConfig::coalesce`] off).
fn infer_one(store: &PipeStore, features: &[f32]) -> Reply {
    match store.model_snapshot() {
        Some(model) => classify_row(&model, features),
        None => Reply::Error("no model installed".to_string()),
    }
}

/// One single-row forward; dimension mismatches are application errors,
/// not session faults.
fn classify_row(model: &Mlp, features: &[f32]) -> Reply {
    let dim = model.input_dim();
    if features.len() != dim {
        return Reply::Error(format!(
            "bad feature dim: got {}, model wants {dim}",
            features.len()
        ));
    }
    let x = Tensor::from_vec(features.to_vec(), &[1, dim]);
    Reply::Label(model.forward(&x).argmax() as u32)
}

/// Argmax of row `row` in a `[rows, classes]` logits tensor, without
/// materializing per-row tensors.
fn row_argmax(logits: &Tensor, row: usize) -> usize {
    let classes = logits.dims().get(1).copied().unwrap_or(0).max(1);
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    let lo = row * classes;
    let cells = logits.data().get(lo..lo + classes).unwrap_or(&[]);
    for (j, v) in cells.iter().enumerate() {
        if *v > best_v {
            best_v = *v;
            best = j;
        }
    }
    best
}

/// One pending `Infer` row in the cross-session batch.
struct BatchItem {
    slot: usize,
    gen: u64,
    seq: u64,
    t0: Instant,
    features: Vec<f32>,
}

/// A unit handed to the worker pool.
enum Work {
    /// One request from one session.
    One {
        slot: usize,
        gen: u64,
        seq: u64,
        t0: Instant,
        req: Request,
    },
    /// A coalesced cross-session inference batch.
    Batch(Vec<BatchItem>),
}

/// A finished reply heading back to the event thread; `(slot, gen)`
/// route it, `seq` orders it within the session, `end` closes the
/// session after this reply flushes.
struct Done {
    slot: usize,
    gen: u64,
    seq: u64,
    frame: Vec<u8>,
    end: bool,
}

/// An encoded reply waiting in the reorder buffer for its turn on the
/// wire.
struct Flush {
    frame: Vec<u8>,
    end: bool,
}

/// Where a session is in its life.
enum Phase {
    /// Waiting for the client's `Hello`.
    Greeting,
    /// Handshake accepted; frames are requests.
    Open,
    /// Refused (cap or version skew): inbound bytes are drained and
    /// discarded so closing never turns the queued `Reject` into a TCP
    /// RST; the session ends on peer EOF or the idle sweep.
    Refused,
}

/// What an I/O step decided about a session's future.
enum Fate {
    Alive,
    Closed(Option<RpcError>),
}

/// One live session in the event loop's slab.
struct Session {
    stream: TcpStream,
    /// Generation tag: replies carry `(slot, gen)` so a reply for a
    /// closed session can never be misrouted to the slot's next tenant.
    gen: u64,
    phase: Phase,
    decoder: FrameDecoder,
    /// Outbound bytes; `wpos` marks how much has hit the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next request sequence number (assigned at dispatch).
    next_seq: u64,
    /// Next sequence number allowed onto the wire — replies flush in
    /// request order even when workers finish out of order.
    next_flush: u64,
    reorder: BTreeMap<u64, Flush>,
    /// Requests dispatched but not yet flushed back.
    inflight: usize,
    read_closed: bool,
    close_after_flush: bool,
    /// Whether this session occupies a slot under `max_sessions` (cap
    /// refusals are parked uncounted).
    counted: bool,
    last_activity: Instant,
}

/// State shared between the server handle, the event thread, and the
/// worker pool.
struct Shared {
    store: RwLock<PipeStore>,
    /// The store's registry, cloned out so workers record metrics
    /// without touching the store lock.
    registry: Arc<telemetry::Registry>,
    store_id: u64,
    cfg: ServerConfig,
    /// Soft stop: stop accepting, drain live sessions, then exit.
    stop: AtomicBool,
    /// Hard stop: slam every session shut and exit now.
    halt: AtomicBool,
    /// Live counted sessions. Written with `Release` by the event
    /// thread, read with `Acquire` by observers: an observer that sees
    /// the count move also sees the session transition that caused it
    /// (the pairing `wait_idle` relies on).
    active: AtomicUsize,
    /// Counted sessions ended since bind; same Release/Acquire pairing
    /// as `active`, and always incremented *after* the matching `active`
    /// decrement so `completed >= n && active == 0` is a stable "n
    /// sessions fully drained" condition.
    completed: AtomicUsize,
    first_error: Mutex<Option<RpcError>>,
}

impl Shared {
    fn session_gauge(&self, delta: f64) {
        if telemetry::enabled() {
            self.registry
                .gauge(
                    "ndpipe_rpc_sessions_active",
                    "live Tuner sessions on this store's RPC server",
                )
                .add(delta);
        }
    }
}

/// Records the first session-level fault since bind. Version skew is
/// excluded: telling a mismatched peer "no" is the server working as
/// designed.
fn record_first_error(shared: &Shared, e: RpcError) {
    if matches!(e, RpcError::ProtocolMismatch { .. }) {
        return;
    }
    let _w = crate::sanitize::order(crate::sanitize::RANK_FIRST_ERROR, "first_error");
    let mut slot = shared.first_error.lock();
    if slot.is_none() {
        *slot = Some(e);
    }
}

/// A concurrent RPC server wrapping one [`PipeStore`]: binds a
/// listener, serves up to [`ServerConfig::max_sessions`] simultaneous
/// Tuner sessions from a single event thread plus a worker pool, and
/// gives the store back on [`PipeStoreServer::shutdown`].
///
/// ```no_run
/// use ndpipe::rpc::{PipeStoreServer, ServerConfig};
/// # fn demo(store: ndpipe::PipeStore) -> Result<(), ndpipe::rpc::RpcError> {
/// let server = PipeStoreServer::bind(store, "127.0.0.1:0", ServerConfig::default())?;
/// println!("serving on {}", server.local_addr());
/// // ... Tuners connect, do work, end their sessions ...
/// let store = server.shutdown()?;
/// # let _ = store; Ok(()) }
/// ```
pub struct PipeStoreServer {
    shared: Arc<Shared>,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    wake: Arc<WakePipe>,
    addr: SocketAddr,
}

impl PipeStoreServer {
    /// Binds `addr` and starts the event thread and worker pool.
    ///
    /// # Errors
    ///
    /// Bind/socket/thread-spawn errors.
    pub fn bind(store: PipeStore, addr: &str, cfg: ServerConfig) -> Result<Self, RpcError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let registry = Arc::clone(store.metrics());
        let store_id = store.id() as u64;
        let shared = Arc::new(Shared {
            store: RwLock::new(store),
            registry,
            store_id,
            cfg,
            stop: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            first_error: Mutex::new(None),
        });
        let wake = Arc::new(WakePipe::new()?);
        // Both queues are bounded: a flooded server applies backpressure
        // instead of growing queues without limit.
        // ndlint: policy(block, reason = "the only producer is the event thread, which spins on try_send while draining `done` (send_work), so a full queue throttles intake without deadlocking the pipeline")
        let (work_tx, work_rx) = crossbeam::channel::bounded::<Work>(WORK_QUEUE_CAP);
        // ndlint: policy(block, reason = "workers stall when the event thread falls behind on replies; the wake pipe guarantees the event thread drains `done` on its next tick")
        let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(DONE_QUEUE_CAP);
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            let rx = work_rx.clone();
            let tx = done_tx.clone();
            let wk = Arc::clone(&wake);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ndpipe-rpc-worker-{i}"))
                    .spawn(move || worker_main(&sh, &rx, &tx, &wk))?,
            );
        }
        let ev = EventLoop {
            shared: Arc::clone(&shared),
            listener: Some(listener),
            wake: Arc::clone(&wake),
            work: work_tx,
            done_rx,
            sessions: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            live: 0,
            busy: 0,
            pend_batch: Vec::new(),
            batch_since: None,
            detached: None,
            stash: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
        };
        let event = std::thread::Builder::new()
            .name(format!("ndpipe-rpc-event-{store_id}"))
            .spawn(move || ev.event_loop())?;
        Ok(PipeStoreServer {
            shared,
            event: Some(event),
            workers,
            wake,
            addr: local,
        })
    }

    /// The bound listen address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        // Acquire pairs with the event thread's Release updates: see
        // the ordering notes on `Shared::active`.
        self.shared.active.load(Ordering::Acquire)
    }

    /// Sessions that have ended (cleanly or not) since bind.
    pub fn completed_sessions(&self) -> usize {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Blocks until at least `min_completed` sessions have ended and no
    /// session is in flight.
    pub fn wait_idle(&self, min_completed: usize) {
        loop {
            if self.shared.completed.load(Ordering::Acquire) >= min_completed
                && self.shared.active.load(Ordering::Acquire) == 0
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Like [`PipeStoreServer::wait_idle`] but gives up after `timeout`,
    /// returning whether the condition was reached.
    pub fn wait_idle_timeout(&self, min_completed: usize, timeout: Duration) -> bool {
        let t0 = Instant::now();
        loop {
            if self.shared.completed.load(Ordering::Acquire) >= min_completed
                && self.shared.active.load(Ordering::Acquire) == 0
            {
                return true;
            }
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops accepting, drains in-flight sessions (each runs until its
    /// Tuner ends the session, hangs up, or idles past the timeout),
    /// and returns the store.
    ///
    /// # Errors
    ///
    /// The first session-level error observed since bind, if any.
    pub fn shutdown(self) -> Result<PipeStore, RpcError> {
        self.teardown(false)
    }

    /// Hard-stops the server: every live session socket is slammed shut
    /// by the event thread, so peers observe connection errors. Session
    /// errors caused by the abort are discarded. Used by
    /// failure-injection tests to simulate a killed store.
    ///
    /// # Errors
    ///
    /// Only internal teardown failures; peer-visible errors are expected
    /// and swallowed.
    pub fn abort(self) -> Result<PipeStore, RpcError> {
        self.teardown(true)
    }

    fn teardown(mut self, hard: bool) -> Result<PipeStore, RpcError> {
        if hard {
            // Release pairs with the event thread's Acquire load at the
            // top of its loop; `halt` must be visible no later than
            // `stop`.
            self.shared.halt.store(true, Ordering::Release);
        }
        self.shared.stop.store(true, Ordering::Release);
        self.wake.wake();
        if let Some(h) = self.event.take() {
            let _ = h.join();
        }
        // The event loop owned the work sender; its exit disconnects the
        // channel and every worker's `recv` returns Err.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let PipeStoreServer { shared, .. } = self;
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| RpcError::Protocol("server state still referenced after join"))?;
        let store = shared.store.into_inner();
        match shared.first_error.into_inner() {
            Some(e) if !hard => Err(e),
            _ => Ok(store),
        }
    }
}

/// The event thread's whole world. Sessions live in a slab
/// (`sessions` + `free`) so poll-set indices stay cheap to rebuild.
struct EventLoop {
    shared: Arc<Shared>,
    /// Dropped (closing the listen socket) as soon as a stop is seen.
    listener: Option<TcpListener>,
    wake: Arc<WakePipe>,
    work: Sender<Work>,
    done_rx: Receiver<Done>,
    sessions: Vec<Option<Session>>,
    free: Vec<usize>,
    next_gen: u64,
    /// Counted live sessions (the `max_sessions` population).
    live: usize,
    /// Sessions with at least one request in flight; exported as the
    /// `ndpipe_rpc_pending_sessions` gauge.
    busy: usize,
    /// Cross-session `Infer` rows waiting for the batch window.
    pend_batch: Vec<BatchItem>,
    /// When the oldest pending row arrived (the max-delay clock).
    batch_since: Option<Instant>,
    /// Set while a session is temporarily out of the slab in
    /// `drive_read`; its finished replies land in `stash` instead of
    /// being dropped by the slot lookup.
    detached: Option<(usize, u64)>,
    stash: Vec<Done>,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn event_loop(mut self) {
        loop {
            // Acquire pairs with teardown's Release stores: observing
            // the flag implies the handle's prior writes are visible.
            if self.shared.halt.load(Ordering::Acquire) {
                self.close_all();
                return;
            }
            let stopping = self.shared.stop.load(Ordering::Acquire);
            if stopping {
                self.listener = None;
            }
            if let Some(t0) = self.batch_since {
                if stopping || t0.elapsed() >= self.shared.cfg.batch.max_delay {
                    self.fire_batch();
                }
            }
            if stopping {
                // Refused sessions only linger to avoid an RST racing
                // their Reject; on shutdown, flushed ones go now.
                for slot in 0..self.sessions.len() {
                    let flushed_refusal = matches!(
                        self.sessions.get(slot).and_then(Option::as_ref),
                        Some(s) if matches!(s.phase, Phase::Refused) && s.wpos >= s.wbuf.len()
                    );
                    if flushed_refusal {
                        self.close_slot(slot, None);
                    }
                }
                if self.sessions.iter().all(Option::is_none) {
                    return;
                }
            }

            // Build the poll set: wake pipe, listener, then one entry
            // per session that wants readability or has bytes to flush.
            let mut fds = vec![self.wake.poll_fd()];
            let lidx = match &self.listener {
                Some(l) => {
                    fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                    Some(fds.len() - 1)
                }
                None => None,
            };
            let base = fds.len();
            let mut slots: Vec<usize> = Vec::new();
            for (i, entry) in self.sessions.iter().enumerate() {
                let Some(s) = entry else { continue };
                let mut ev = 0i16;
                if !s.read_closed {
                    ev |= POLLIN;
                }
                if s.wpos < s.wbuf.len() {
                    ev |= POLLOUT;
                }
                if ev == 0 {
                    continue; // waiting only on the worker pool
                }
                fds.push(PollFd::new(s.stream.as_raw_fd(), ev));
                slots.push(i);
            }
            let timeout = if self.batch_since.is_some() {
                // The sub-millisecond batch window rounds up to poll's
                // millisecond granularity.
                Duration::from_millis(1)
            } else {
                IDLE_TICK
            };
            if poll_fds(&mut fds, timeout.as_millis() as i32).is_err() {
                // ndlint: allow(event_zone, reason = "1ms backoff on a failed poll(2) is the bounded retry path, not request-path blocking")
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }

            if fds.first().is_some_and(|f| f.readable()) {
                self.wake.drain();
            }
            self.drain_done();
            if let Some(i) = lidx {
                if fds.get(i).is_some_and(|f| f.readable()) {
                    self.accept_new();
                }
            }
            for (k, slot) in slots.iter().copied().enumerate() {
                let Some(pf) = fds.get(base + k).copied() else {
                    continue;
                };
                if pf.readable() {
                    self.drive_read(slot);
                }
                if pf.writable() {
                    self.drive_write(slot);
                }
                if pf.failed() && !pf.readable() {
                    self.close_slot(slot, None);
                }
            }
            self.sweep_idle();
        }
    }

    /// Accepts everything the listener has queued.
    fn accept_new(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue; // socket already dead
                    }
                    let counted = self.live < self.shared.cfg.max_sessions;
                    self.admit(stream, counted);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient; retry on the next readable
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, counted: bool) {
        let gen = self.next_gen;
        self.next_gen += 1;
        let mut s = Session {
            stream,
            gen,
            phase: Phase::Greeting,
            decoder: FrameDecoder::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            next_flush: 0,
            reorder: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            close_after_flush: false,
            counted,
            last_activity: Instant::now(),
        };
        if counted {
            self.live += 1;
            // Release: pairs with the Acquire in `active_sessions` (see
            // `Shared::active`).
            self.shared.active.fetch_add(1, Ordering::Release);
            self.shared.session_gauge(1.0);
        } else {
            // Over the cap: park the socket as an uncounted Refused
            // session. It keeps draining inbound bytes so the close
            // can't RST away the queued Reject, and it ends on peer EOF
            // or the idle sweep.
            s.phase = Phase::Refused;
            match handshake_frame(&Handshake::Reject {
                version: PROTOCOL_VERSION,
                reason: "session cap reached".to_string(),
            }) {
                Ok(frame) => s.wbuf.extend_from_slice(&frame),
                Err(_) => return, // tiny static frame; cannot exceed the cap
            }
            if let Fate::Closed(_) = try_write(&mut s) {
                return; // peer already gone
            }
        }
        let slot = match self.free.pop() {
            Some(i) => i,
            None => {
                self.sessions.push(None);
                self.sessions.len() - 1
            }
        };
        if let Some(entry) = self.sessions.get_mut(slot) {
            *entry = Some(s);
        }
    }

    /// Pulls bytes off a readable session and walks every complete
    /// frame. The session is detached from the slab for the duration so
    /// nested `drain_done` calls (backpressure) can't alias it; replies
    /// for it land in `stash` and replay on reattach.
    fn drive_read(&mut self, slot: usize) {
        let Some(mut s) = self.sessions.get_mut(slot).and_then(|e| e.take()) else {
            return;
        };
        self.detached = Some((slot, s.gen));
        let mut fate = Fate::Alive;
        loop {
            // ndlint: allow(event_zone, reason = "the session socket is set nonblocking at accept; read returns WouldBlock instead of stalling")
            match s.stream.read(self.scratch.as_mut_slice()) {
                Ok(0) => {
                    s.read_closed = true;
                    if s.inflight == 0 && s.reorder.is_empty() && s.wpos >= s.wbuf.len() {
                        fate = Fate::Closed(None);
                    } else {
                        s.close_after_flush = true;
                    }
                    break;
                }
                Ok(n) => {
                    s.last_activity = Instant::now();
                    if matches!(s.phase, Phase::Refused) {
                        continue; // drain and discard
                    }
                    s.decoder.feed(self.scratch.get(..n).unwrap_or(&[]));
                    fate = self.process_frames(slot, &mut s);
                    if !matches!(fate, Fate::Alive) {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    fate = Fate::Closed(Some(RpcError::Io(e)));
                    break;
                }
            }
        }
        self.finish_session(slot, s, fate);
    }

    /// Reattaches (or destroys) a session after `drive_read`, replaying
    /// any replies that completed while it was detached.
    fn finish_session(&mut self, slot: usize, mut s: Session, fate: Fate) {
        self.detached = None;
        let stash = std::mem::take(&mut self.stash);
        if let Fate::Closed(err) = fate {
            drop(stash); // replies for a dead session are moot
            self.destroy(slot, s, err);
            return;
        }
        let mut went_idle = false;
        for d in stash {
            if d.gen == s.gen && apply_done(&mut s, d, &self.shared.registry) {
                went_idle = true;
            }
        }
        if went_idle {
            self.busy = self.busy.saturating_sub(1);
            self.update_pending_gauge();
        }
        match try_write(&mut s) {
            Fate::Closed(err) => self.destroy(slot, s, err),
            Fate::Alive => {
                if let Some(entry) = self.sessions.get_mut(slot) {
                    *entry = Some(s);
                }
            }
        }
    }

    /// Decodes and acts on every complete frame buffered for `s`.
    fn process_frames(&mut self, slot: usize, s: &mut Session) -> Fate {
        loop {
            if s.read_closed || matches!(s.phase, Phase::Refused) {
                return Fate::Alive;
            }
            match s.decoder.next_frame() {
                Ok(None) => return Fate::Alive,
                Ok(Some((tag, payload))) => match s.phase {
                    Phase::Greeting => match Handshake::decode_body(tag, &payload) {
                        Ok(hs) => match greet(&hs, self.shared.store_id) {
                            Ok(Greeting::Accepted(accept)) => match handshake_frame(&accept) {
                                Ok(frame) => {
                                    s.wbuf.extend_from_slice(&frame);
                                    s.phase = Phase::Open;
                                }
                                Err(e) => return Fate::Closed(Some(e)),
                            },
                            Ok(Greeting::Refused(reject)) => match handshake_frame(&reject) {
                                Ok(frame) => {
                                    s.wbuf.extend_from_slice(&frame);
                                    s.phase = Phase::Refused;
                                }
                                Err(e) => return Fate::Closed(Some(e)),
                            },
                            Err(e) => return Fate::Closed(Some(e)),
                        },
                        Err(e) => return Fate::Closed(Some(e)),
                    },
                    Phase::Open => {
                        if telemetry::enabled() {
                            self.shared
                                .registry
                                .counter(
                                    "ndpipe_rpc_server_bytes_read_total",
                                    "request bytes read off the wire",
                                )
                                .add((5 + payload.len()) as u64);
                        }
                        match Request::decode_body(tag, &payload) {
                            Ok(req) => self.dispatch(slot, s, req),
                            Err(RpcError::Protocol(msg)) => {
                                // A malformed body inside a well-formed
                                // frame gets a structured error reply;
                                // the session survives.
                                self.self_done(
                                    s,
                                    &Reply::Error(format!("bad request frame: {msg}")),
                                    false,
                                );
                            }
                            Err(e) => return Fate::Closed(Some(e)),
                        }
                    }
                    Phase::Refused => return Fate::Alive,
                },
                Err(e) => {
                    // Unframeable input (e.g. an oversized length
                    // prefix): tell the peer, then end the session once
                    // the error flushes.
                    self.self_done(s, &Reply::Error(format!("protocol violation: {e}")), true);
                    s.read_closed = true;
                    record_first_error(&self.shared, e);
                    return Fate::Alive;
                }
            }
        }
    }

    /// Routes one decoded request: `Shutdown` is answered inline,
    /// `Infer` joins the cross-session batch (when coalescing), and
    /// everything else goes to the worker pool.
    fn dispatch(&mut self, slot: usize, s: &mut Session, req: Request) {
        let op = req.op_name();
        if telemetry::enabled() {
            self.shared
                .registry
                .counter_with(
                    "ndpipe_rpc_server_requests_total",
                    &[("op", op)],
                    "requests handled by this store's RPC server",
                )
                .inc();
        }
        match req {
            Request::Shutdown => {
                if telemetry::enabled() {
                    self.shared
                        .registry
                        .histogram_with(
                            "ndpipe_rpc_server_op_seconds",
                            &[("op", op)],
                            "server-side handling latency per operation",
                        )
                        .observe(0.0);
                }
                s.read_closed = true;
                self.self_done(s, &Reply::Ack, true);
            }
            Request::Infer { features } if self.shared.cfg.coalesce => {
                let seq = s.next_seq;
                s.next_seq += 1;
                if s.inflight == 0 {
                    self.busy += 1;
                    self.update_pending_gauge();
                }
                s.inflight += 1;
                self.pend_batch.push(BatchItem {
                    slot,
                    gen: s.gen,
                    seq,
                    t0: Instant::now(),
                    features,
                });
                if self.batch_since.is_none() {
                    self.batch_since = Some(Instant::now());
                }
                if self.pend_batch.len() >= self.shared.cfg.batch.max_batch.max(1) {
                    self.fire_batch();
                }
            }
            other => {
                let seq = s.next_seq;
                s.next_seq += 1;
                if s.inflight == 0 {
                    self.busy += 1;
                    self.update_pending_gauge();
                }
                s.inflight += 1;
                self.send_work(Work::One {
                    slot,
                    gen: s.gen,
                    seq,
                    t0: Instant::now(),
                    req: other,
                });
            }
        }
    }

    /// Queues an event-thread-generated reply directly into the
    /// session's ordered flush stream (no worker round-trip).
    fn self_done(&mut self, s: &mut Session, reply: &Reply, end: bool) {
        let seq = s.next_seq;
        s.next_seq += 1;
        s.reorder.insert(
            seq,
            Flush {
                frame: reply_frame(reply),
                end,
            },
        );
        flush_order(s, &self.shared.registry);
    }

    /// Ships the pending cross-session batch to the worker pool.
    fn fire_batch(&mut self) {
        self.batch_since = None;
        if self.pend_batch.is_empty() {
            return;
        }
        let items = std::mem::take(&mut self.pend_batch);
        self.send_work(Work::Batch(items));
    }

    /// Enqueues work, draining finished replies while the queue is full
    /// — the event thread keeps consuming its side of the pipeline, so
    /// backpressure can't deadlock it against the worker pool.
    fn send_work(&mut self, w: Work) {
        let mut w = w;
        loop {
            match self.work.try_send(w) {
                Ok(()) => {
                    crate::sanitize::channel_depth("rpc.work", self.work.len(), WORK_QUEUE_CAP);
                    return;
                }
                Err(TrySendError::Full(back)) => {
                    w = back;
                    self.drain_done();
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => return, // teardown
            }
        }
    }

    fn drain_done(&mut self) {
        while let Ok(d) = self.done_rx.try_recv() {
            self.complete(d);
        }
    }

    /// Routes one finished reply back to its session (or stashes it if
    /// that session is detached in `drive_read`, or drops it if the
    /// session died — the generation tag prevents misrouting to a slot's
    /// next tenant).
    fn complete(&mut self, d: Done) {
        if let Some((slot, gen)) = self.detached {
            if d.slot == slot && d.gen == gen {
                self.stash.push(d);
                return;
            }
        }
        let slot = d.slot;
        let (went_idle, fate) = match self.sessions.get_mut(slot).and_then(Option::as_mut) {
            Some(s) if s.gen == d.gen => {
                let went_idle = apply_done(s, d, &self.shared.registry);
                (went_idle, try_write(s))
            }
            _ => return,
        };
        if went_idle {
            self.busy = self.busy.saturating_sub(1);
            self.update_pending_gauge();
        }
        if let Fate::Closed(err) = fate {
            self.close_slot(slot, err);
        }
    }

    fn drive_write(&mut self, slot: usize) {
        let mut fate = Fate::Alive;
        if let Some(s) = self.sessions.get_mut(slot).and_then(Option::as_mut) {
            s.last_activity = Instant::now();
            fate = try_write(s);
        }
        if let Fate::Closed(err) = fate {
            self.close_slot(slot, err);
        }
    }

    /// Closes sessions idle past the configured timeout (only ones with
    /// no work in flight — a slow batch is not idleness).
    fn sweep_idle(&mut self) {
        let Some(limit) = self.shared.cfg.io_timeout else {
            return;
        };
        let now = Instant::now();
        for slot in 0..self.sessions.len() {
            let timed_out = matches!(
                self.sessions.get(slot).and_then(Option::as_ref),
                Some(s) if s.inflight == 0
                    && s.reorder.is_empty()
                    && now.duration_since(s.last_activity) > limit
            );
            if timed_out {
                self.close_slot(
                    slot,
                    Some(RpcError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "session idle past io_timeout",
                    ))),
                );
            }
        }
    }

    fn close_slot(&mut self, slot: usize, err: Option<RpcError>) {
        let Some(s) = self.sessions.get_mut(slot).and_then(|e| e.take()) else {
            return;
        };
        self.destroy(slot, s, err);
    }

    /// The single exit point for a session: frees its slot and settles
    /// every counter, so `ndpipe_rpc_sessions_active` always returns to
    /// zero no matter how the session ended (including `abort`).
    fn destroy(&mut self, slot: usize, s: Session, err: Option<RpcError>) {
        self.free.push(slot);
        if s.inflight > 0 {
            self.busy = self.busy.saturating_sub(1);
            self.update_pending_gauge();
        }
        if s.counted {
            self.live = self.live.saturating_sub(1);
            // Release decrement *before* the completed increment: an
            // observer (Acquire) that sees `completed` move has already
            // seen `active` drop, keeping `wait_idle`'s condition
            // monotone. Pairs with the loads in `active_sessions` /
            // `wait_idle`.
            self.shared.active.fetch_sub(1, Ordering::Release);
            self.shared.completed.fetch_add(1, Ordering::Release);
            self.shared.session_gauge(-1.0);
            if let Some(e) = err {
                record_first_error(&self.shared, e);
            }
        }
        drop(s); // the socket closes here
    }

    fn close_all(&mut self) {
        for slot in 0..self.sessions.len() {
            self.close_slot(slot, None);
        }
    }

    fn update_pending_gauge(&self) {
        if telemetry::enabled() {
            self.shared
                .registry
                .gauge(
                    "ndpipe_rpc_pending_sessions",
                    "sessions with at least one request in flight",
                )
                .set(self.busy as f64);
        }
    }
}

/// Books one finished reply into a session: decrements inflight, queues
/// the frame in sequence order, and flushes whatever became contiguous.
/// Returns whether the session just went idle (for the pending gauge).
fn apply_done(s: &mut Session, d: Done, registry: &telemetry::Registry) -> bool {
    s.inflight = s.inflight.saturating_sub(1);
    let went_idle = s.inflight == 0;
    s.reorder.insert(
        d.seq,
        Flush {
            frame: d.frame,
            end: d.end,
        },
    );
    flush_order(s, registry);
    s.last_activity = Instant::now();
    went_idle
}

/// Moves contiguously-sequenced replies from the reorder buffer into the
/// write buffer: pipelined sessions always see replies in request order,
/// however the worker pool interleaved them.
fn flush_order(s: &mut Session, registry: &telemetry::Registry) {
    while let Some(f) = s.reorder.remove(&s.next_flush) {
        if telemetry::enabled() {
            registry
                .counter(
                    "ndpipe_rpc_server_bytes_written_total",
                    "reply bytes put on the wire",
                )
                .add(f.frame.len() as u64);
        }
        s.wbuf.extend_from_slice(&f.frame);
        if f.end {
            s.close_after_flush = true;
            s.read_closed = true;
        }
        s.next_flush += 1;
    }
}

/// Pushes as much buffered output as the socket will take, and decides
/// whether the session is finished (everything flushed and either side
/// closed it).
fn try_write(s: &mut Session) -> Fate {
    loop {
        let pending = s.wbuf.get(s.wpos..).unwrap_or(&[]);
        if pending.is_empty() {
            s.wbuf.clear();
            s.wpos = 0;
            let drained = s.inflight == 0 && s.reorder.is_empty();
            if drained
                && (s.close_after_flush || (s.read_closed && !matches!(s.phase, Phase::Refused)))
            {
                return Fate::Closed(None);
            }
            return Fate::Alive;
        }
        // ndlint: allow(event_zone, reason = "the session socket is set nonblocking at accept; write returns WouldBlock and the remainder stays in wbuf")
        match s.stream.write(pending) {
            Ok(0) => {
                return Fate::Closed(Some(RpcError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))))
            }
            Ok(n) => s.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Fate::Alive,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Fate::Closed(Some(RpcError::Io(e))),
        }
    }
}

/// Encodes a handshake as one wire frame.
fn handshake_frame(hs: &Handshake) -> Result<Vec<u8>, RpcError> {
    let (tag, payload) = hs.encode_body();
    frame_bytes(tag, &payload)
}

/// Encodes a reply as one wire frame; a reply too large for the frame
/// cap degrades to a structured error frame.
fn reply_frame(reply: &Reply) -> Vec<u8> {
    let (tag, payload) = reply.encode_body();
    match frame_bytes(tag, &payload) {
        Ok(frame) => frame,
        Err(_) => {
            let (tag, payload) = Reply::Error("reply exceeded frame cap".to_string()).encode_body();
            frame_bytes(tag, &payload).unwrap_or_default()
        }
    }
}

/// Worker-pool thread: executes store operations and batched inference,
/// then hands encoded reply frames back to the event thread.
fn worker_main(shared: &Arc<Shared>, work: &Receiver<Work>, done: &Sender<Done>, wake: &WakePipe) {
    while let Ok(w) = work.recv() {
        match w {
            Work::One {
                slot,
                gen,
                seq,
                t0,
                req,
            } => {
                let op = req.op_name();
                let reply = handle(&shared.store, req);
                let end = reply.is_none();
                let frame = reply_frame(&reply.unwrap_or(Reply::Ack));
                if telemetry::enabled() {
                    shared
                        .registry
                        .histogram_with(
                            "ndpipe_rpc_server_op_seconds",
                            &[("op", op)],
                            "server-side handling latency per operation",
                        )
                        .observe(t0.elapsed().as_secs_f64());
                }
                if done
                    .send(Done {
                        slot,
                        gen,
                        seq,
                        frame,
                        end,
                    })
                    .is_err()
                {
                    return; // event loop is gone
                }
                crate::sanitize::channel_depth("rpc.done", done.len(), DONE_QUEUE_CAP);
                wake.wake();
            }
            Work::Batch(items) => {
                for d in exec_batch(shared, items) {
                    if done.send(d).is_err() {
                        return;
                    }
                }
                crate::sanitize::channel_depth("rpc.done", done.len(), DONE_QUEUE_CAP);
                wake.wake();
            }
        }
    }
}

/// Runs one coalesced cross-session inference batch: a single forward
/// pass over every well-dimensioned row, demultiplexed back into one
/// reply per originating session. Rows with the wrong width get a
/// structured per-row error without poisoning the rest of the batch.
fn exec_batch(shared: &Arc<Shared>, items: Vec<BatchItem>) -> Vec<Done> {
    let snapshot = {
        let _w = crate::sanitize::order(crate::sanitize::RANK_STORE, "store");
        shared.store.read().model_snapshot()
    };
    let Some(model) = snapshot else {
        return items
            .into_iter()
            .map(|it| Done {
                slot: it.slot,
                gen: it.gen,
                seq: it.seq,
                frame: reply_frame(&Reply::Error("no model installed".to_string())),
                end: false,
            })
            .collect();
    };
    let dim = model.input_dim();
    let mut rows: Vec<f32> = Vec::with_capacity(items.len() * dim);
    let mut row_of: Vec<Option<usize>> = Vec::with_capacity(items.len());
    let mut n = 0usize;
    for it in &items {
        if it.features.len() == dim {
            row_of.push(Some(n));
            rows.extend_from_slice(&it.features);
            n += 1;
        } else {
            row_of.push(None);
        }
    }
    let labels: Vec<u32> = if n > 0 {
        let x = Tensor::from_vec(rows, &[n, dim]);
        let logits = model.forward(&x);
        (0..n).map(|r| row_argmax(&logits, r) as u32).collect()
    } else {
        Vec::new()
    };
    if telemetry::enabled() {
        shared
            .registry
            .histogram(
                "ndpipe_rpc_batch_size",
                "rows per coalesced cross-session inference batch",
            )
            .observe(items.len() as f64);
        if items.len() > 1 {
            shared
                .registry
                .counter(
                    "ndpipe_online_coalesced_total",
                    "inference rows served by cross-session coalesced batches",
                )
                .add(items.len() as u64);
        }
        let h = shared.registry.histogram_with(
            "ndpipe_rpc_server_op_seconds",
            &[("op", "infer")],
            "server-side handling latency per operation",
        );
        for it in &items {
            h.observe(it.t0.elapsed().as_secs_f64());
        }
    }
    items
        .into_iter()
        .zip(row_of)
        .map(|(it, row)| {
            let reply = match row {
                Some(r) => match labels.get(r) {
                    Some(l) => Reply::Label(*l),
                    None => Reply::Error("batch row missing".to_string()),
                },
                None => Reply::Error(format!(
                    "bad feature dim: got {}, model wants {dim}",
                    it.features.len()
                )),
            };
            Done {
                slot: it.slot,
                gen: it.gen,
                seq: it.seq,
                frame: reply_frame(&reply),
                end: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::wire::MAX_FRAME;
    use ndpipe_data::{ClassUniverse, LabeledDataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store(rng: &mut StdRng) -> PipeStore {
        let u = ClassUniverse::new(8, 4, 3, 0.2, rng);
        let rows: Vec<tensor::Tensor> = (0..9).map(|i| u.sample(i % 3, rng)).collect();
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        PipeStore::new(0, LabeledDataset::new(rows, labels, 3))
    }

    fn shared_for(store: PipeStore) -> Arc<Shared> {
        let registry = Arc::clone(store.metrics());
        Arc::new(Shared {
            store: RwLock::new(store),
            registry,
            store_id: 0,
            cfg: ServerConfig::default(),
            stop: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            first_error: Mutex::new(None),
        })
    }

    fn decode_done(d: &Done) -> Reply {
        let mut dec = FrameDecoder::new();
        dec.feed(&d.frame);
        let (tag, payload) = dec
            .next_frame()
            .expect("frame decodes")
            .expect("one whole frame");
        Reply::decode_body(tag, &payload).expect("reply decodes")
    }

    #[test]
    fn handle_rejects_work_without_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = RwLock::new(store(&mut rng));
        match handle(&s, Request::ExtractFeatures { run: 0, n_run: 1 }) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
        match handle(&s, Request::OfflineInfer) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
        match handle(
            &s,
            Request::Infer {
                features: vec![0.0; 8],
            },
        ) {
            Some(Reply::Error(msg)) => assert!(msg.contains("no model")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_describe_and_install() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = RwLock::new(store(&mut rng));
        match handle(&s, Request::Describe) {
            Some(Reply::ShardInfo(desc)) => {
                assert_eq!(desc.examples, 9);
                assert_eq!(desc.classes, 3);
                // The reply reports the store's policy and the kernel it
                // dispatches to on this host.
                assert_eq!(desc.math, s.read().math_policy());
                assert_eq!(desc.kernel, tensor::linalg::selected_kernel(desc.math));
            }
            other => panic!("unexpected {other:?}"),
        }
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        match handle(&s, Request::ExtractFeatures { run: 0, n_run: 3 }) {
            Some(Reply::Features { features, labels }) => {
                assert_eq!(features.dims()[0], labels.len());
                assert_eq!(features.dims()[1], 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_rejects_garbage_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = RwLock::new(store(&mut rng));
        assert!(matches!(
            handle(&s, Request::InstallModel(vec![0, 1, 2])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&s, Request::ApplyDelta(vec![1])),
            Some(Reply::Error(_))
        ));
        assert!(matches!(
            handle(&s, Request::ExtractFeatures { run: 5, n_run: 3 }),
            Some(Reply::Error(_))
        ));
    }

    #[test]
    fn handle_metrics_returns_store_snapshot() {
        telemetry::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(5);
        let s = RwLock::new(store(&mut rng));
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        assert_eq!(
            handle(&s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        // An extraction run populates NPE metrics in the store registry.
        let _ = handle(&s, Request::ExtractFeatures { run: 0, n_run: 1 });
        match handle(&s, Request::Metrics) {
            Some(Reply::Metrics(snap)) => {
                assert!(!snap.is_empty(), "store registry must have NPE metrics");
                assert!(snap.find("ndpipe_npe_run_wall_seconds").is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shutdown_ends_session() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = RwLock::new(store(&mut rng));
        assert_eq!(handle(&s, Request::Shutdown), None);
    }

    #[test]
    fn infer_matches_direct_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let st = store(&mut rng);
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        let row = st.shard().features().row(0);
        let features = row.data().to_vec();
        let expected = model
            .forward(&row.reshape(&[1, 8]).expect("row reshape"))
            .argmax() as u32;
        let s = RwLock::new(st);
        assert_eq!(
            handle(&s, Request::InstallModel(model.to_bytes())),
            Some(Reply::Ack)
        );
        assert_eq!(
            handle(&s, Request::Infer { features }),
            Some(Reply::Label(expected))
        );
        // Wrong width is an application error, not a session fault.
        match handle(
            &s,
            Request::Infer {
                features: vec![0.0; 3],
            },
        ) {
            Some(Reply::Error(msg)) => assert!(msg.contains("bad feature dim")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn greet_accepts_matching_version() {
        match greet(
            &Handshake::Hello {
                version: PROTOCOL_VERSION,
                features: 0,
            },
            42,
        ) {
            Ok(Greeting::Accepted(Handshake::Accept {
                version,
                features,
                store_id,
            })) => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(features, SERVER_FEATURES);
                assert_eq!(store_id, 42);
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn greet_rejects_version_skew_with_structured_reject() {
        match greet(
            &Handshake::Hello {
                version: 99,
                features: 0,
            },
            1,
        ) {
            Ok(Greeting::Refused(Handshake::Reject { version, reason })) => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert!(reason.contains("protocol"));
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // Only clients greet first.
        assert!(greet(
            &Handshake::Accept {
                version: PROTOCOL_VERSION,
                features: 0,
                store_id: 0
            },
            1
        )
        .is_err());
    }

    #[test]
    fn exec_batch_without_model_errors_every_row() {
        let mut rng = StdRng::seed_from_u64(7);
        let shared = shared_for(store(&mut rng));
        let items = vec![
            BatchItem {
                slot: 0,
                gen: 1,
                seq: 0,
                t0: Instant::now(),
                features: vec![0.0; 8],
            },
            BatchItem {
                slot: 3,
                gen: 9,
                seq: 2,
                t0: Instant::now(),
                features: vec![0.0; 8],
            },
        ];
        let dones = exec_batch(&shared, items);
        assert_eq!(dones.len(), 2);
        assert_eq!((dones[0].slot, dones[0].gen, dones[0].seq), (0, 1, 0));
        assert_eq!((dones[1].slot, dones[1].gen, dones[1].seq), (3, 9, 2));
        for d in &dones {
            match decode_done(d) {
                Reply::Error(msg) => assert!(msg.contains("no model")),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn exec_batch_demuxes_and_matches_serial_path() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut st = store(&mut rng);
        let model = Mlp::new(&[8, 6, 3], 1, &mut rng);
        st.install_model(model);
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|i| st.shard().features().row(i).data().to_vec())
            .collect();
        let expected: Vec<u32> = rows
            .iter()
            .map(|r| {
                let m = st.model_snapshot().expect("model installed");
                match classify_row(&m, r) {
                    Reply::Label(l) => l,
                    other => panic!("unexpected {other:?}"),
                }
            })
            .collect();
        let shared = shared_for(st);
        let mut items: Vec<BatchItem> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| BatchItem {
                slot: i,
                gen: i as u64,
                seq: 7,
                t0: Instant::now(),
                features: r.clone(),
            })
            .collect();
        // One malformed row in the middle must not poison the batch.
        items.insert(
            2,
            BatchItem {
                slot: 99,
                gen: 0,
                seq: 0,
                t0: Instant::now(),
                features: vec![1.0; 5],
            },
        );
        let dones = exec_batch(&shared, items);
        assert_eq!(dones.len(), 5);
        let mut label_idx = 0usize;
        for d in &dones {
            if d.slot == 99 {
                match decode_done(d) {
                    Reply::Error(msg) => assert!(msg.contains("bad feature dim")),
                    other => panic!("unexpected {other:?}"),
                }
            } else {
                match decode_done(d) {
                    Reply::Label(l) => assert_eq!(l, expected[label_idx]),
                    other => panic!("unexpected {other:?}"),
                }
                label_idx += 1;
            }
        }
        assert_eq!(label_idx, 4);
    }

    #[test]
    fn reply_frame_oversize_degrades_to_error_frame() {
        // A reply bigger than MAX_FRAME must yield a decodable error
        // frame, not a panic or an empty write.
        let huge = Reply::Error("x".repeat(MAX_FRAME + 1));
        let frame = reply_frame(&huge);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let (tag, payload) = dec
            .next_frame()
            .expect("frame decodes")
            .expect("one whole frame");
        match Reply::decode_body(tag, &payload).expect("reply decodes") {
            Reply::Error(msg) => assert!(msg.contains("frame cap")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
