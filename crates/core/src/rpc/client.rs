//! The Tuner-side handle to a remote PipeStore, including a pipelined
//! in-flight request window ([`RemotePipeStore::start_infer`] /
//! [`RemotePipeStore::finish_infer`]) that keeps many `Infer` rows on
//! the wire at once against the event-driven server.

use crate::checknrun::ModelDelta;
use crate::placement::PlacementMap;
use crate::rpc::wire::{
    read_handshake, read_reply, write_handshake, write_request, write_request_noflush, Handshake,
    PhotoRecord, Reply, Request, ShardDesc, FEATURE_DELTAS, FEATURE_METRICS,
    FEATURE_MULTI_SESSION, PROTOCOL_VERSION,
};
use crate::rpc::RpcError;
use dnn::Mlp;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use tensor::Tensor;

/// Feature bits this client understands; advertised in the `Hello`.
pub const CLIENT_FEATURES: u64 = FEATURE_METRICS | FEATURE_DELTAS | FEATURE_MULTI_SESSION;

/// Connection policy for [`RemotePipeStore::connect_with`]: bounded
/// retry with exponential backoff, plus socket read/write timeouts so a
/// wedged store cannot pin the Tuner forever.
///
/// Build one fluently:
///
/// ```
/// use ndpipe::rpc::ConnectOptions;
/// use std::time::Duration;
/// let opts = ConnectOptions::new()
///     .retries(3)
///     .backoff(Duration::from_millis(10), Duration::from_millis(100))
///     .timeout(Duration::from_secs(5));
/// assert_eq!(opts.max_attempts, 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ConnectOptions {
    /// Connection attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Read/write timeout applied to the connected socket; `None`
    /// blocks indefinitely.
    pub io_timeout: Option<Duration>,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ConnectOptions {
    /// Starts from the defaults; chain [`ConnectOptions::retries`],
    /// [`ConnectOptions::backoff`], [`ConnectOptions::timeout`] /
    /// [`ConnectOptions::no_timeout`] to adjust.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total connection attempts (clamped to ≥ 1).
    #[must_use]
    pub fn retries(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Backoff schedule: sleep `initial` before the second attempt,
    /// doubling up to `max`.
    #[must_use]
    pub fn backoff(mut self, initial: Duration, max: Duration) -> Self {
        self.initial_backoff = initial;
        self.max_backoff = max;
        self
    }

    /// Socket read/write timeout once connected.
    #[must_use]
    pub fn timeout(mut self, t: Duration) -> Self {
        self.io_timeout = Some(t);
        self
    }

    /// Block indefinitely on socket reads/writes.
    #[must_use]
    pub fn no_timeout(mut self) -> Self {
        self.io_timeout = None;
        self
    }
}

/// The buffered socket halves of one live session.
#[derive(Debug)]
struct Io {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A remote PipeStore handle. Holds at most one live session; when the
/// transport is lost (or the handle was detached into a
/// [`crate::rpc::Cluster`] worker), calls fail with
/// [`RpcError::PeerUnavailable`] until [`RemotePipeStore::reconnect`]
/// succeeds.
#[derive(Debug)]
pub struct RemotePipeStore {
    io: Option<Io>,
    peer: SocketAddr,
    opts: ConnectOptions,
    store_id: u64,
    features: u64,
    sent_bytes: u64,
    recv_bytes: u64,
    /// `Infer` requests written to the wire whose replies have not been
    /// collected yet (the pipelined in-flight window).
    pending: usize,
}

impl RemotePipeStore {
    /// Connects to a PipeStore server with the default
    /// [`ConnectOptions`] (retries transient failures with exponential
    /// backoff, then applies I/O timeouts) and performs the versioned
    /// `Hello` handshake.
    ///
    /// # Errors
    ///
    /// [`RpcError::PeerUnavailable`] once every attempt is exhausted,
    /// [`RpcError::ProtocolMismatch`] on version skew, or the server's
    /// refusal as [`RpcError::Remote`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemotePipeStore, RpcError> {
        Self::connect_with(addr, ConnectOptions::default())
    }

    /// Connects under an explicit policy; see [`ConnectOptions`].
    ///
    /// # Errors
    ///
    /// As [`RemotePipeStore::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: ConnectOptions,
    ) -> Result<RemotePipeStore, RpcError> {
        let label = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .map(|a| a.to_string())
            .unwrap_or_else(|| "<unresolved>".to_string());
        let attempts = opts.max_attempts.max(1);
        let mut backoff = opts.initial_backoff;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(opts.max_backoff);
                if telemetry::enabled() {
                    telemetry::global()
                        .counter(
                            "ndpipe_rpc_client_connect_retries_total",
                            "connection attempts beyond the first",
                        )
                        .inc();
                }
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => match Self::open_session(stream, opts) {
                    Ok(remote) => return Ok(remote),
                    // Version skew and handshake refusals are permanent:
                    // retrying the same peer cannot fix them.
                    Err(RpcError::Io(e)) => last_err = Some(e),
                    Err(fatal) => return Err(fatal),
                },
                Err(e) => last_err = Some(e),
            }
        }
        Err(RpcError::PeerUnavailable {
            peer: label,
            attempts,
            source: last_err,
        })
    }

    /// Handshakes over a freshly connected socket.
    fn open_session(stream: TcpStream, opts: ConnectOptions) -> Result<RemotePipeStore, RpcError> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(opts.io_timeout)?;
        stream.set_write_timeout(opts.io_timeout)?;
        let peer = stream.peer_addr()?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let sent = write_handshake(
            &mut writer,
            &Handshake::Hello {
                version: PROTOCOL_VERSION,
                features: CLIENT_FEATURES,
            },
        )? as u64;
        let (store_id, features) = match read_handshake(&mut reader)? {
            Handshake::Accept {
                version,
                features,
                store_id,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(RpcError::ProtocolMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                (store_id, features)
            }
            Handshake::Reject { version, reason } => {
                return Err(if version != PROTOCOL_VERSION {
                    RpcError::ProtocolMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    }
                } else {
                    RpcError::Remote {
                        peer: peer.to_string(),
                        op: "hello",
                        msg: reason,
                    }
                });
            }
            Handshake::Hello { .. } => {
                return Err(RpcError::Protocol("unexpected hello from server"));
            }
        };
        Ok(RemotePipeStore {
            io: Some(Io { reader, writer }),
            peer,
            opts,
            store_id,
            features,
            sent_bytes: sent,
            recv_bytes: 0,
            pending: 0,
        })
    }

    /// A handle with no live session (used by the cluster layer for
    /// peers that were down at construction; calls fail with
    /// [`RpcError::PeerUnavailable`] until [`RemotePipeStore::reconnect`]).
    pub(crate) fn detached(peer: SocketAddr, opts: ConnectOptions) -> RemotePipeStore {
        RemotePipeStore {
            io: None,
            peer,
            opts,
            store_id: 0,
            features: 0,
            sent_bytes: 0,
            recv_bytes: 0,
            pending: 0,
        }
    }

    /// Whether a live session is attached.
    pub fn is_connected(&self) -> bool {
        self.io.is_some()
    }

    /// Drops the live session (e.g. after an I/O error), keeping the
    /// address and policy for a later [`RemotePipeStore::reconnect`].
    pub(crate) fn disconnect(&mut self) {
        self.io = None;
        // Replies for the old transport can never arrive now.
        self.pending = 0;
    }

    /// Re-dials the peer under the stored [`ConnectOptions`], replacing
    /// any previous session.
    ///
    /// # Errors
    ///
    /// As [`RemotePipeStore::connect`].
    pub fn reconnect(&mut self) -> Result<(), RpcError> {
        let fresh = Self::connect_with(self.peer, self.opts)?;
        let (sent, recv) = (self.sent_bytes, self.recv_bytes);
        *self = fresh;
        // Wire counters are cumulative across reconnects of this handle.
        self.sent_bytes += sent;
        self.recv_bytes += recv;
        Ok(())
    }

    /// The remote address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// The store id the server reported in its handshake `Accept`.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Feature bits the server offered in its handshake `Accept`.
    pub fn features(&self) -> u64 {
        self.features
    }

    /// Cumulative `(sent, received)` wire bytes over this handle,
    /// including frame headers — the honest traffic numbers the
    /// FT-DMP reports are built from.
    pub fn wire_totals(&self) -> (u64, u64) {
        (self.sent_bytes, self.recv_bytes)
    }

    fn call(&mut self, req: &Request) -> Result<Reply, RpcError> {
        if self.pending > 0 {
            // A blocking call would read a pipelined reply as its own.
            return Err(RpcError::Protocol(
                "pipelined infer replies outstanding; call finish_infer first",
            ));
        }
        let op = req.op_name();
        let peer = self.peer;
        let io = self.io.as_mut().ok_or(RpcError::PeerUnavailable {
            peer: peer.to_string(),
            attempts: 0,
            source: None,
        })?;
        let record = telemetry::enabled();
        let timer = record.then(|| {
            let m = telemetry::global();
            m.counter_with(
                "ndpipe_rpc_client_requests_total",
                &[("op", op)],
                "RPC calls issued by this process",
            )
            .inc();
            m.histogram_with(
                "ndpipe_rpc_client_op_seconds",
                &[("op", op)],
                "round-trip latency per operation",
            )
            .start_timer()
        });
        let sent = write_request(&mut io.writer, req)?;
        let (reply, received) = read_reply(&mut io.reader)?;
        self.sent_bytes += sent as u64;
        self.recv_bytes += received as u64;
        if let Some(t) = timer {
            t.observe_and_disarm();
            let m = telemetry::global();
            m.counter(
                "ndpipe_rpc_client_bytes_written_total",
                "request bytes put on the wire",
            )
            .add(sent as u64);
            m.counter(
                "ndpipe_rpc_client_bytes_read_total",
                "reply bytes read off the wire",
            )
            .add(received as u64);
        }
        match reply {
            Reply::Error(msg) => Err(RpcError::Remote {
                peer: peer.to_string(),
                op,
                msg,
            }),
            reply => Ok(reply),
        }
    }

    fn expect_ack(&mut self, req: &Request) -> Result<(), RpcError> {
        match self.call(req)? {
            Reply::Ack => Ok(()),
            _ => Err(RpcError::Protocol("expected ack")),
        }
    }

    /// Installs a model replica on the remote store.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn install_model(&mut self, model: &Mlp) -> Result<(), RpcError> {
        self.expect_ack(&Request::InstallModel(model.to_bytes()))
    }

    /// Installs an already-serialized model blob (lets a cluster fan-out
    /// serialize the master once, not once per peer).
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn install_model_bytes(&mut self, model: &[u8]) -> Result<(), RpcError> {
        self.expect_ack(&Request::InstallModel(model.to_vec()))
    }

    /// Asks the store to extract features for pipeline run `run` of
    /// `n_run`, returning `(features, labels)`.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn extract_features(
        &mut self,
        run: u32,
        n_run: u32,
    ) -> Result<(Tensor, Vec<usize>), RpcError> {
        match self.call(&Request::ExtractFeatures { run, n_run })? {
            Reply::Features { features, labels } => {
                Ok((features, labels.into_iter().map(|l| l as usize).collect()))
            }
            _ => Err(RpcError::Protocol("expected features")),
        }
    }

    /// Runs near-data offline inference; only `(photo, label)` pairs come
    /// back.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn offline_infer(&mut self) -> Result<Vec<(u64, u32)>, RpcError> {
        match self.call(&Request::OfflineInfer)? {
            Reply::Labels(pairs) => Ok(pairs),
            _ => Err(RpcError::Protocol("expected labels")),
        }
    }

    /// Ships a Check-N-Run delta to upgrade the remote replica.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<(), RpcError> {
        self.expect_ack(&Request::ApplyDelta(delta.to_bytes()))
    }

    /// Ships an already-serialized Check-N-Run delta blob.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn apply_delta_bytes(&mut self, delta: &[u8]) -> Result<(), RpcError> {
        self.expect_ack(&Request::ApplyDelta(delta.to_vec()))
    }

    /// Fetches the store's shard metadata: example/class counts plus the
    /// math policy and kernel family its FE paths run under.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn describe(&mut self) -> Result<ShardDesc, RpcError> {
        match self.call(&Request::Describe)? {
            Reply::ShardInfo(desc) => Ok(desc),
            _ => Err(RpcError::Protocol("expected shard info")),
        }
    }

    /// Scrapes the store's telemetry registry: one point-in-time
    /// [`telemetry::Snapshot`] of every metric the store recorded.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn scrape(&mut self) -> Result<telemetry::Snapshot, RpcError> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(snapshot) => Ok(snapshot),
            _ => Err(RpcError::Protocol("expected metrics")),
        }
    }

    /// Fetches the placement map the store holds (an error reply when
    /// none was ever published to it).
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn placement(&mut self) -> Result<PlacementMap, RpcError> {
        match self.call(&Request::Placement)? {
            Reply::Placement(map) => Ok(map),
            _ => Err(RpcError::Protocol("expected placement map")),
        }
    }

    /// Publishes an epoch-numbered placement map to the store. Stale
    /// epochs come back as a remote error.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn install_placement(&mut self, map: &PlacementMap) -> Result<(), RpcError> {
        self.expect_ack(&Request::InstallPlacement(map.clone()))
    }

    /// Stores one replicated photo record on the remote store.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn put_photo(&mut self, rec: &PhotoRecord) -> Result<(), RpcError> {
        self.expect_ack(&Request::PutPhoto(rec.clone()))
    }

    /// Reads one photo record by id.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors (a missing photo is a remote
    /// error).
    pub fn get_photo(&mut self, id: u64) -> Result<PhotoRecord, RpcError> {
        match self.call(&Request::GetPhoto(id))? {
            Reply::Photo(rec) => Ok(rec),
            _ => Err(RpcError::Protocol("expected photo record")),
        }
    }

    /// Lists the photo ids the store holds, ascending.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn list_photos(&mut self) -> Result<Vec<u64>, RpcError> {
        match self.call(&Request::ListPhotos)? {
            Reply::PhotoIds(ids) => Ok(ids),
            _ => Err(RpcError::Protocol("expected photo ids")),
        }
    }

    /// Extracts features for run `run` of `n_run` over the replica
    /// shard of placement node `node` — the mid-sweep reroute call.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors (no replica shard for `node` is a
    /// remote error).
    pub fn extract_features_for(
        &mut self,
        node: u64,
        run: u32,
        n_run: u32,
    ) -> Result<(Tensor, Vec<usize>), RpcError> {
        match self.call(&Request::ExtractFeaturesFor { node, run, n_run })? {
            Reply::Features { features, labels } => {
                Ok((features, labels.into_iter().map(|l| l as usize).collect()))
            }
            _ => Err(RpcError::Protocol("expected features")),
        }
    }

    /// Extracts micro-batch `mb` of `n_mb` within run `run` of `n_run`
    /// over node `node`'s shard (the store's own or a held replica) —
    /// the streaming extract of the pipelined FT-DMP schedule, doubling
    /// as the straggler-steal call when `node` is not the store's id.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors (no shard for `node` or an empty
    /// slice is a remote error).
    pub fn extract_slice(
        &mut self,
        node: u64,
        run: u32,
        n_run: u32,
        mb: u32,
        n_mb: u32,
    ) -> Result<(Tensor, Vec<usize>), RpcError> {
        match self.call(&Request::ExtractSlice {
            node,
            run,
            n_run,
            mb,
            n_mb,
        })? {
            Reply::Features { features, labels } => {
                Ok((features, labels.into_iter().map(|l| l as usize).collect()))
            }
            _ => Err(RpcError::Protocol("expected features")),
        }
    }

    /// Fetches shard metadata for node `node`'s shard on this store
    /// (own shard or a held replica).
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors (no shard for `node` is a remote
    /// error).
    pub fn describe_node(&mut self, node: u64) -> Result<ShardDesc, RpcError> {
        match self.call(&Request::DescribeNode(node))? {
            Reply::ShardInfo(desc) => Ok(desc),
            _ => Err(RpcError::Protocol("expected shard info")),
        }
    }

    /// Classifies one feature row on the remote store (one blocking
    /// round-trip). See [`RemotePipeStore::start_infer`] for the
    /// pipelined variant.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn infer(&mut self, features: &[f32]) -> Result<u32, RpcError> {
        match self.call(&Request::Infer {
            features: features.to_vec(),
        })? {
            Reply::Label(l) => Ok(l),
            _ => Err(RpcError::Protocol("expected label")),
        }
    }

    /// Queues one `Infer` on the wire without waiting for its reply,
    /// growing the in-flight window; collect the window with
    /// [`RemotePipeStore::finish_infer`]. Frames are buffered — the
    /// flush happens in `finish_infer`, so a whole window can leave in
    /// one segment.
    ///
    /// # Errors
    ///
    /// Socket/framing errors ([`RpcError::PeerUnavailable`] when
    /// detached).
    pub fn start_infer(&mut self, features: &[f32]) -> Result<(), RpcError> {
        let peer = self.peer;
        let io = self.io.as_mut().ok_or(RpcError::PeerUnavailable {
            peer: peer.to_string(),
            attempts: 0,
            source: None,
        })?;
        let req = Request::Infer {
            features: features.to_vec(),
        };
        let sent = write_request_noflush(&mut io.writer, &req)?;
        self.sent_bytes += sent as u64;
        self.pending += 1;
        if telemetry::enabled() {
            let m = telemetry::global();
            m.counter_with(
                "ndpipe_rpc_client_requests_total",
                &[("op", "infer")],
                "RPC calls issued by this process",
            )
            .inc();
            m.counter(
                "ndpipe_rpc_client_bytes_written_total",
                "request bytes put on the wire",
            )
            .add(sent as u64);
        }
        Ok(())
    }

    /// Requests queued by [`RemotePipeStore::start_infer`] whose replies
    /// have not been collected yet.
    pub fn pending_infers(&self) -> usize {
        self.pending
    }

    /// Flushes the queued window and collects every outstanding reply,
    /// in issue order.
    ///
    /// # Errors
    ///
    /// Transport errors drop the session (remaining replies can never
    /// arrive). A per-row remote error is reported as
    /// [`RpcError::Remote`] *after* the whole window has been drained,
    /// so the session stays usable.
    pub fn finish_infer(&mut self) -> Result<Vec<u32>, RpcError> {
        let peer = self.peer;
        let Some(io) = self.io.as_mut() else {
            self.pending = 0;
            return Err(RpcError::PeerUnavailable {
                peer: peer.to_string(),
                attempts: 0,
                source: None,
            });
        };
        let mut pending = std::mem::replace(&mut self.pending, 0);
        let mut recv_total = 0u64;
        let result = (|| -> Result<Vec<u32>, RpcError> {
            io.writer.flush()?;
            let mut out = Vec::with_capacity(pending);
            let mut first_remote: Option<RpcError> = None;
            while pending > 0 {
                let (reply, n) = read_reply(&mut io.reader)?;
                recv_total += n as u64;
                pending -= 1;
                match reply {
                    Reply::Label(l) => out.push(l),
                    Reply::Error(msg) => {
                        if first_remote.is_none() {
                            first_remote = Some(RpcError::Remote {
                                peer: peer.to_string(),
                                op: "infer",
                                msg,
                            });
                        }
                    }
                    _ => return Err(RpcError::Protocol("expected label")),
                }
            }
            match first_remote {
                Some(e) => Err(e),
                None => Ok(out),
            }
        })();
        self.recv_bytes += recv_total;
        if telemetry::enabled() {
            telemetry::global()
                .counter(
                    "ndpipe_rpc_client_bytes_read_total",
                    "reply bytes read off the wire",
                )
                .add(recv_total);
        }
        if matches!(result, Err(RpcError::Io(_)) | Err(RpcError::Protocol(_))) {
            // Transport state is unknown mid-stream; force a reconnect.
            self.disconnect();
        }
        result
    }

    /// Classifies many rows through the pipelined window: keeps up to
    /// `window` requests in flight per wave, returning the labels in
    /// row order. This is what makes the event-driven server's
    /// cross-session batching bite — many rows on the wire at once.
    ///
    /// # Errors
    ///
    /// As [`RemotePipeStore::finish_infer`].
    pub fn infer_pipelined(
        &mut self,
        rows: &[Vec<f32>],
        window: usize,
    ) -> Result<Vec<u32>, RpcError> {
        let window = window.max(1);
        let mut out = Vec::with_capacity(rows.len());
        for wave in rows.chunks(window) {
            for row in wave {
                self.start_infer(row)?;
            }
            out.extend(self.finish_infer()?);
        }
        Ok(out)
    }

    /// Ends the session without consuming the handle (the cluster layer
    /// reuses the handle for reconnects); the server side returns once
    /// it has acknowledged.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub(crate) fn end_session(&mut self) -> Result<(), RpcError> {
        if self.pending > 0 {
            // Drain any open window so the Shutdown ack isn't read as a
            // pipelined reply (best-effort; errors surface below if the
            // transport is really gone).
            let _ = self.finish_infer();
        }
        let r = self.expect_ack(&Request::Shutdown);
        self.io = None;
        r
    }

    /// Ends the session; the server returns after acknowledging.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn shutdown(mut self) -> Result<(), RpcError> {
        self.end_session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn connect_gives_up_after_bounded_attempts() {
        // Port 1 on localhost refuses immediately; the retry loop must
        // back off, then surface a structured PeerUnavailable.
        let opts = ConnectOptions::new()
            .retries(3)
            .backoff(Duration::from_millis(5), Duration::from_millis(10))
            .no_timeout();
        let t0 = Instant::now();
        match RemotePipeStore::connect_with("127.0.0.1:1", opts) {
            Err(RpcError::PeerUnavailable { peer, attempts, .. }) => {
                assert_eq!(attempts, 3);
                assert!(peer.contains("127.0.0.1:1"), "{peer}");
            }
            other => panic!("expected PeerUnavailable, got {other:?}"),
        }
        // Two backoffs happened: 5ms + 10ms at minimum.
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let opts = ConnectOptions::new()
            .retries(0)
            .backoff(Duration::from_millis(1), Duration::from_millis(1))
            .no_timeout();
        assert_eq!(opts.max_attempts, 1);
        assert!(RemotePipeStore::connect_with("127.0.0.1:1", opts).is_err());
    }

    #[test]
    fn detached_handle_reports_peer_unavailable() {
        let peer: SocketAddr = "127.0.0.1:9".parse().expect("addr");
        let mut r = RemotePipeStore::detached(peer, ConnectOptions::new().retries(1));
        assert!(!r.is_connected());
        match r.describe() {
            Err(RpcError::PeerUnavailable { attempts: 0, .. }) => {}
            other => panic!("expected PeerUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn builder_options_compose() {
        let o = ConnectOptions::new()
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(2))
            .no_timeout();
        assert_eq!(o.max_attempts, 2);
        assert!(o.io_timeout.is_none());
    }
}
