//! The Tuner-side handle to a remote PipeStore.

use crate::checknrun::ModelDelta;
use crate::rpc::wire::{read_reply, write_request, Reply, Request};
use crate::rpc::RpcError;
use dnn::Mlp;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tensor::Tensor;

/// Connection policy for [`RemotePipeStore::connect_with`]: bounded
/// retry with exponential backoff, plus socket read/write timeouts so a
/// wedged store cannot pin the Tuner forever.
#[derive(Debug, Clone, Copy)]
pub struct ConnectOptions {
    /// Connection attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Read/write timeout applied to the connected socket; `None`
    /// blocks indefinitely.
    pub io_timeout: Option<Duration>,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A connected remote PipeStore.
#[derive(Debug)]
pub struct RemotePipeStore {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: std::net::SocketAddr,
}

impl RemotePipeStore {
    /// Connects to a PipeStore server with the default
    /// [`ConnectOptions`] (retries transient failures with exponential
    /// backoff, then applies I/O timeouts).
    ///
    /// # Errors
    ///
    /// The final connection error once every attempt is exhausted.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemotePipeStore, RpcError> {
        Self::connect_with(addr, &ConnectOptions::default())
    }

    /// Connects under an explicit policy; see [`ConnectOptions`].
    ///
    /// # Errors
    ///
    /// The final connection error once every attempt is exhausted.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: &ConnectOptions,
    ) -> Result<RemotePipeStore, RpcError> {
        let attempts = opts.max_attempts.max(1);
        let mut backoff = opts.initial_backoff;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(opts.max_backoff);
                if telemetry::enabled() {
                    telemetry::global()
                        .counter(
                            "ndpipe_rpc_client_connect_retries_total",
                            "connection attempts beyond the first",
                        )
                        .inc();
                }
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(opts.io_timeout)?;
                    stream.set_write_timeout(opts.io_timeout)?;
                    let peer = stream.peer_addr()?;
                    return Ok(RemotePipeStore {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: BufWriter::new(stream),
                        peer,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(RpcError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::Other, "no connection attempt ran")
        })))
    }

    /// The remote address.
    pub fn peer(&self) -> std::net::SocketAddr {
        self.peer
    }

    fn call(&mut self, req: &Request) -> Result<Reply, RpcError> {
        if !telemetry::enabled() {
            write_request(&mut self.writer, req)?;
            return Ok(read_reply(&mut self.reader)?.0);
        }
        let op = req.op_name();
        let m = telemetry::global();
        m.counter_with(
            "ndpipe_rpc_client_requests_total",
            &[("op", op)],
            "RPC calls issued by this process",
        )
        .inc();
        let timer = m
            .histogram_with(
                "ndpipe_rpc_client_op_seconds",
                &[("op", op)],
                "round-trip latency per operation",
            )
            .start_timer();
        let sent = write_request(&mut self.writer, req)?;
        let (reply, received) = read_reply(&mut self.reader)?;
        timer.observe_and_disarm();
        m.counter(
            "ndpipe_rpc_client_bytes_written_total",
            "request bytes put on the wire",
        )
        .add(sent as u64);
        m.counter(
            "ndpipe_rpc_client_bytes_read_total",
            "reply bytes read off the wire",
        )
        .add(received as u64);
        Ok(reply)
    }

    fn expect_ack(&mut self, req: &Request) -> Result<(), RpcError> {
        match self.call(req)? {
            Reply::Ack => Ok(()),
            _ => Err(RpcError::Protocol("expected ack")),
        }
    }

    /// Installs a model replica on the remote store.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn install_model(&mut self, model: &Mlp) -> Result<(), RpcError> {
        self.expect_ack(&Request::InstallModel(model.to_bytes()))
    }

    /// Asks the store to extract features for pipeline run `run` of
    /// `n_run`, returning `(features, labels)`.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn extract_features(
        &mut self,
        run: u32,
        n_run: u32,
    ) -> Result<(Tensor, Vec<usize>), RpcError> {
        match self.call(&Request::ExtractFeatures { run, n_run })? {
            Reply::Features { features, labels } => Ok((
                features,
                labels.into_iter().map(|l| l as usize).collect(),
            )),
            _ => Err(RpcError::Protocol("expected features")),
        }
    }

    /// Runs near-data offline inference; only `(photo, label)` pairs come
    /// back.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn offline_infer(&mut self) -> Result<Vec<(u64, u32)>, RpcError> {
        match self.call(&Request::OfflineInfer)? {
            Reply::Labels(pairs) => Ok(pairs),
            _ => Err(RpcError::Protocol("expected labels")),
        }
    }

    /// Ships a Check-N-Run delta to upgrade the remote replica.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<(), RpcError> {
        self.expect_ack(&Request::ApplyDelta(delta.to_bytes()))
    }

    /// Fetches `(examples, classes)` shard metadata.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn describe(&mut self) -> Result<(u64, u32), RpcError> {
        match self.call(&Request::Describe)? {
            Reply::ShardInfo { examples, classes } => Ok((examples, classes)),
            _ => Err(RpcError::Protocol("expected shard info")),
        }
    }

    /// Scrapes the store's telemetry registry: one point-in-time
    /// [`telemetry::Snapshot`] of every metric the store recorded.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn scrape(&mut self) -> Result<telemetry::Snapshot, RpcError> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(snapshot) => Ok(snapshot),
            _ => Err(RpcError::Protocol("expected metrics")),
        }
    }

    /// Ends the session; the server returns after acknowledging.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn shutdown(mut self) -> Result<(), RpcError> {
        self.expect_ack(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn connect_gives_up_after_bounded_attempts() {
        // Port 1 on localhost refuses immediately; the retry loop must
        // back off, then surface the final error.
        let opts = ConnectOptions {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(10),
            io_timeout: None,
        };
        let t0 = Instant::now();
        let r = RemotePipeStore::connect_with("127.0.0.1:1", &opts);
        assert!(matches!(r, Err(RpcError::Io(_))));
        // Two backoffs happened: 5ms + 10ms at minimum.
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let opts = ConnectOptions {
            max_attempts: 0,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            io_timeout: None,
        };
        assert!(RemotePipeStore::connect_with("127.0.0.1:1", &opts).is_err());
    }
}
