//! The Tuner-side handle to a remote PipeStore.

use crate::checknrun::ModelDelta;
use crate::rpc::wire::{read_reply, write_request, Reply, Request};
use crate::rpc::RpcError;
use dnn::Mlp;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use tensor::Tensor;

/// A connected remote PipeStore.
#[derive(Debug)]
pub struct RemotePipeStore {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: std::net::SocketAddr,
}

impl RemotePipeStore {
    /// Connects to a PipeStore server.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemotePipeStore, RpcError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        Ok(RemotePipeStore {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            peer,
        })
    }

    /// The remote address.
    pub fn peer(&self) -> std::net::SocketAddr {
        self.peer
    }

    fn call(&mut self, req: &Request) -> Result<Reply, RpcError> {
        write_request(&mut self.writer, req)?;
        read_reply(&mut self.reader)
    }

    fn expect_ack(&mut self, req: &Request) -> Result<(), RpcError> {
        match self.call(req)? {
            Reply::Ack => Ok(()),
            _ => Err(RpcError::Protocol("expected ack")),
        }
    }

    /// Installs a model replica on the remote store.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn install_model(&mut self, model: &Mlp) -> Result<(), RpcError> {
        self.expect_ack(&Request::InstallModel(model.to_bytes()))
    }

    /// Asks the store to extract features for pipeline run `run` of
    /// `n_run`, returning `(features, labels)`.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn extract_features(
        &mut self,
        run: u32,
        n_run: u32,
    ) -> Result<(Tensor, Vec<usize>), RpcError> {
        match self.call(&Request::ExtractFeatures { run, n_run })? {
            Reply::Features { features, labels } => Ok((
                features,
                labels.into_iter().map(|l| l as usize).collect(),
            )),
            _ => Err(RpcError::Protocol("expected features")),
        }
    }

    /// Runs near-data offline inference; only `(photo, label)` pairs come
    /// back.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn offline_infer(&mut self) -> Result<Vec<(u64, u32)>, RpcError> {
        match self.call(&Request::OfflineInfer)? {
            Reply::Labels(pairs) => Ok(pairs),
            _ => Err(RpcError::Protocol("expected labels")),
        }
    }

    /// Ships a Check-N-Run delta to upgrade the remote replica.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<(), RpcError> {
        self.expect_ack(&Request::ApplyDelta(delta.to_bytes()))
    }

    /// Fetches `(examples, classes)` shard metadata.
    ///
    /// # Errors
    ///
    /// Socket/protocol/remote errors.
    pub fn describe(&mut self) -> Result<(u64, u32), RpcError> {
        match self.call(&Request::Describe)? {
            Reply::ShardInfo { examples, classes } => Ok((examples, classes)),
            _ => Err(RpcError::Protocol("expected shard info")),
        }
    }

    /// Ends the session; the server returns after acknowledging.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn shutdown(mut self) -> Result<(), RpcError> {
        self.expect_ack(&Request::Shutdown)
    }
}
