//! Deprecated free-function façade over [`crate::rpc::Cluster`].
//!
//! These entry points predate the cluster control plane: they took
//! `&mut [RemotePipeStore]` and drove the fleet one peer at a time, so a
//! single socket error aborted the whole round and wall-clock grew
//! linearly with cluster size. They are kept for one release as thin
//! shims — each call temporarily adopts the handles into a [`Cluster`]
//! (parallel fan-out, [`FailurePolicy::Strict`], no retries, so results
//! on a healthy cluster are identical) and hands them back afterwards.

use crate::ftdmp::{FtdmpConfig, FtdmpReport};
use crate::rpc::client::RemotePipeStore;
use crate::rpc::cluster::{Cluster, ClusterError, FailurePolicy};
use crate::rpc::RpcError;
use crate::tuner::Tuner;
use rand::Rng;

pub use crate::rpc::cluster::ClusterMetrics;

/// Adopts the handles into a temporary strict cluster, runs `f`, and
/// restores the handles (sessions intact) regardless of the outcome.
fn with_cluster<T>(
    remotes: &mut [RemotePipeStore],
    f: impl FnOnce(&Cluster) -> Result<T, RpcError>,
) -> Result<T, RpcError> {
    let taken: Vec<RemotePipeStore> = remotes.iter_mut().map(|r| r.take()).collect();
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Strict)
        .op_attempts(1)
        .adopt(taken)
        .map_err(ClusterError::into_rpc)?;
    let out = f(&cluster);
    for (slot, handle) in remotes.iter_mut().zip(cluster.into_remotes()) {
        slot.restore(handle);
    }
    out
}

/// Scrapes every remote PipeStore's telemetry registry over RPC and
/// folds the snapshots into a cluster-wide view.
///
/// # Errors
///
/// Socket/protocol/remote errors from any peer.
#[deprecated(note = "use Cluster::scrape_metrics for parallel, policy-aware scraping")]
pub fn scrape_cluster(remotes: &mut [RemotePipeStore]) -> Result<ClusterMetrics, RpcError> {
    with_cluster(remotes, |cluster| {
        cluster.scrape_metrics().map_err(ClusterError::into_rpc)
    })
}

/// Runs FT-DMP fine-tuning across remote PipeStores over TCP: installs
/// the master model, pulls features per pipeline run, trains the
/// classifier tail locally, and pushes the result back as Check-N-Run
/// deltas.
///
/// # Errors
///
/// Socket/protocol/remote errors; the Tuner's model retains whatever
/// training completed before the failure.
///
/// # Panics
///
/// Panics if `remotes` is empty or `n_run == 0`.
#[deprecated(note = "use Cluster::ftdmp_fine_tune for parallel fan-out and failure policies")]
pub fn ftdmp_fine_tune_remote<R: Rng + ?Sized>(
    tuner: &mut Tuner,
    remotes: &mut [RemotePipeStore],
    config: &FtdmpConfig,
    rng: &mut R,
) -> Result<FtdmpReport, RpcError> {
    assert!(!remotes.is_empty(), "need at least one remote PipeStore");
    assert!(config.n_run > 0, "need at least one run");
    with_cluster(remotes, |cluster| {
        cluster
            .ftdmp_fine_tune(tuner, config, rng)
            .map(|r| r.report)
            .map_err(ClusterError::into_rpc)
    })
}
