//! FT-DMP over sockets: the Tuner drives remote PipeStores exactly as
//! [`crate::ftdmp::ftdmp_fine_tune`] drives in-process ones.

use crate::ftdmp::{FtdmpConfig, FtdmpReport};
use crate::rpc::client::RemotePipeStore;
use crate::rpc::RpcError;
use crate::tuner::Tuner;
use rand::Rng;
use tensor::Tensor;

/// The Tuner's cluster-wide view after scraping every PipeStore.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Each store's snapshot, tagged with its socket address.
    pub per_peer: Vec<(std::net::SocketAddr, telemetry::Snapshot)>,
    /// All peer snapshots folded into one: counters summed, histograms
    /// merged bucket-wise. Peer identity is erased here — use
    /// [`ClusterMetrics::merged_labelled`] to keep it.
    pub merged: telemetry::Snapshot,
}

impl ClusterMetrics {
    /// A merged view that keeps per-store resolution by tagging every
    /// sample with a `peer` label before folding.
    pub fn merged_labelled(&self) -> telemetry::Snapshot {
        let mut out = telemetry::Snapshot::default();
        for (peer, snap) in &self.per_peer {
            out.merge_from(&snap.clone().with_label("peer", &peer.to_string()));
        }
        out
    }
}

/// Scrapes every remote PipeStore's telemetry registry over RPC and
/// folds the snapshots into a cluster-wide view.
///
/// # Errors
///
/// Socket/protocol/remote errors from any peer.
pub fn scrape_cluster(remotes: &mut [RemotePipeStore]) -> Result<ClusterMetrics, RpcError> {
    let mut per_peer = Vec::with_capacity(remotes.len());
    for remote in remotes.iter_mut() {
        let peer = remote.peer();
        per_peer.push((peer, remote.scrape()?));
    }
    let merged = telemetry::Snapshot::merged(per_peer.iter().map(|(_, s)| s));
    Ok(ClusterMetrics { per_peer, merged })
}

/// Runs FT-DMP fine-tuning across remote PipeStores over TCP: installs
/// the master model, pulls features per pipeline run, trains the
/// classifier tail locally, and pushes the result back as Check-N-Run
/// deltas.
///
/// # Errors
///
/// Socket/protocol/remote errors; the Tuner's model retains whatever
/// training completed before the failure.
///
/// # Panics
///
/// Panics if `remotes` is empty or `n_run == 0`.
pub fn ftdmp_fine_tune_remote<R: Rng + ?Sized>(
    tuner: &mut Tuner,
    remotes: &mut [RemotePipeStore],
    config: &FtdmpConfig,
    rng: &mut R,
) -> Result<FtdmpReport, RpcError> {
    assert!(!remotes.is_empty(), "need at least one remote PipeStore");
    assert!(config.n_run > 0, "need at least one run");

    // Sanity-check label spaces before shipping anything.
    for remote in remotes.iter_mut() {
        let (examples, classes) = remote.describe()?;
        if examples < config.n_run as u64 {
            return Err(RpcError::Remote(format!(
                "{} shard smaller than N_run",
                remote.peer()
            )));
        }
        if classes as usize > tuner.model().num_classes() {
            return Err(RpcError::Remote(format!(
                "{} has wider label space than the model",
                remote.peer()
            )));
        }
    }

    let phase_hist = |phase: &str| {
        telemetry::global().histogram_with(
            "ndpipe_ftdmp_remote_phase_seconds",
            &[("phase", phase)],
            "wall time of one remote FT-DMP phase",
        )
    };
    let record = telemetry::enabled();

    // 1. Distribute the current master model.
    let timer = record.then(|| phase_hist("distribute").start_timer());
    let model_before = tuner.model().clone();
    for remote in remotes.iter_mut() {
        remote.install_model(&model_before)?;
    }
    timer.map(|t| t.observe_and_disarm());

    // 2. Pipeline runs: gather features, tune.
    let mut run_losses = Vec::with_capacity(config.n_run);
    let mut feature_bytes = 0usize;
    let mut examples = 0usize;
    for run in 0..config.n_run {
        let timer = record.then(|| phase_hist("extract").start_timer());
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for remote in remotes.iter_mut() {
            let (f, l) = remote.extract_features(run as u32, config.n_run as u32)?;
            feature_bytes += f.len() * 4;
            for i in 0..l.len() {
                rows.push(f.row(i));
            }
            labels.extend(l);
        }
        timer.map(|t| t.observe_and_disarm());
        examples += labels.len();
        let features = Tensor::stack_rows(&rows);
        let timer = record.then(|| phase_hist("train").start_timer());
        let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
        timer.map(|t| t.observe_and_disarm());
        run_losses.push(loss);
    }

    // 3. Redistribute as deltas.
    let timer = record.then(|| phase_hist("redistribute").start_timer());
    let delta = tuner.delta_from(&model_before);
    let mut distribution_bytes = 0usize;
    for remote in remotes.iter_mut() {
        remote.apply_delta(&delta)?;
        distribution_bytes += delta.wire_bytes();
    }
    timer.map(|t| t.observe_and_disarm());
    if record {
        telemetry::global()
            .counter(
                "ndpipe_ftdmp_remote_rounds_total",
                "completed remote FT-DMP fine-tuning rounds",
            )
            .inc();
    }

    Ok(FtdmpReport {
        run_losses,
        feature_bytes,
        distribution_bytes,
        distribution_reduction: delta.traffic_reduction(),
        examples,
    })
}
