//! FT-DMP over sockets: the Tuner drives remote PipeStores exactly as
//! [`crate::ftdmp::ftdmp_fine_tune`] drives in-process ones.

use crate::ftdmp::{FtdmpConfig, FtdmpReport};
use crate::rpc::client::RemotePipeStore;
use crate::rpc::RpcError;
use crate::tuner::Tuner;
use rand::Rng;
use tensor::Tensor;

/// Runs FT-DMP fine-tuning across remote PipeStores over TCP: installs
/// the master model, pulls features per pipeline run, trains the
/// classifier tail locally, and pushes the result back as Check-N-Run
/// deltas.
///
/// # Errors
///
/// Socket/protocol/remote errors; the Tuner's model retains whatever
/// training completed before the failure.
///
/// # Panics
///
/// Panics if `remotes` is empty or `n_run == 0`.
pub fn ftdmp_fine_tune_remote<R: Rng + ?Sized>(
    tuner: &mut Tuner,
    remotes: &mut [RemotePipeStore],
    config: &FtdmpConfig,
    rng: &mut R,
) -> Result<FtdmpReport, RpcError> {
    assert!(!remotes.is_empty(), "need at least one remote PipeStore");
    assert!(config.n_run > 0, "need at least one run");

    // Sanity-check label spaces before shipping anything.
    for remote in remotes.iter_mut() {
        let (examples, classes) = remote.describe()?;
        if examples < config.n_run as u64 {
            return Err(RpcError::Remote(format!(
                "{} shard smaller than N_run",
                remote.peer()
            )));
        }
        if classes as usize > tuner.model().num_classes() {
            return Err(RpcError::Remote(format!(
                "{} has wider label space than the model",
                remote.peer()
            )));
        }
    }

    // 1. Distribute the current master model.
    let model_before = tuner.model().clone();
    for remote in remotes.iter_mut() {
        remote.install_model(&model_before)?;
    }

    // 2. Pipeline runs: gather features, tune.
    let mut run_losses = Vec::with_capacity(config.n_run);
    let mut feature_bytes = 0usize;
    let mut examples = 0usize;
    for run in 0..config.n_run {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for remote in remotes.iter_mut() {
            let (f, l) = remote.extract_features(run as u32, config.n_run as u32)?;
            feature_bytes += f.len() * 4;
            for i in 0..l.len() {
                rows.push(f.row(i));
            }
            labels.extend(l);
        }
        examples += labels.len();
        let features = Tensor::stack_rows(&rows);
        let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
        run_losses.push(loss);
    }

    // 3. Redistribute as deltas.
    let delta = tuner.delta_from(&model_before);
    let mut distribution_bytes = 0usize;
    for remote in remotes.iter_mut() {
        remote.apply_delta(&delta)?;
        distribution_bytes += delta.wire_bytes();
    }

    Ok(FtdmpReport {
        run_losses,
        feature_bytes,
        distribution_bytes,
        distribution_reduction: delta.traffic_reduction(),
        examples,
    })
}
