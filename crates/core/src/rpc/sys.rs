//! Minimal readiness shim over `poll(2)` and a self-pipe, declared via
//! `extern "C"` so the event-driven RPC server needs no new crates.
//!
//! Scope is deliberately tiny: one safe [`poll`] wrapper that retries
//! `EINTR`, the [`PollFd`] ABI struct, and a [`WakePipe`] the worker
//! pool uses to kick the event thread out of a blocking poll when a
//! finished reply is ready to flush. Everything else (nonblocking
//! sockets, accepts, reads, writes) goes through std's `TcpListener` /
//! `TcpStream` with `set_nonblocking(true)`.

use std::io;
use std::os::fd::RawFd;

/// `struct pollfd` from `<poll.h>`; layout is fixed by the C ABI.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel, which we use to keep slab slots stable).
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported events.
    pub revents: i16,
}

/// Readable (or a peer hangup pending a final read).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0x800;
#[cfg(target_os = "linux")]
const O_CLOEXEC: i32 = 0x80000;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    #[cfg(target_os = "linux")]
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    #[cfg(not(target_os = "linux"))]
    fn pipe(fds: *mut i32) -> i32;
    #[cfg(not(target_os = "linux"))]
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

impl PollFd {
    /// A descriptor watched for `events`.
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// A slab placeholder the kernel skips (negative fd).
    #[must_use]
    pub fn unused() -> Self {
        Self {
            fd: -1,
            events: 0,
            revents: 0,
        }
    }

    /// Kernel reported readable input.
    #[must_use]
    pub fn readable(&self) -> bool {
        self.revents & POLLIN != 0
    }

    /// Kernel reported writable output.
    #[must_use]
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Kernel reported an error, hangup, or invalid descriptor; the
    /// session should be drained and closed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Blocks until a watched descriptor is ready or `timeout_ms` elapses
/// (`-1` = wait forever). Returns the number of ready descriptors;
/// `0` on timeout. `EINTR` is retried internally — signal delivery must
/// not wake the event loop spuriously into an error path.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd records; the kernel writes only `revents`
        // within the slice bounds given by `len()`.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Self-pipe for cross-thread wakeups: workers [`WakePipe::wake`] after
/// queueing a finished reply, the event thread polls `read_fd` alongside
/// the sockets and [`WakePipe::drain`]s it before scanning the done
/// queue. Both ends are nonblocking, so a full pipe degrades to "wakeup
/// already pending" instead of blocking a worker.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Opens the pipe with both ends nonblocking (and close-on-exec
    /// where the platform supports it atomically).
    ///
    /// # Errors
    ///
    /// The underlying `pipe2`/`pipe` syscall failing (fd exhaustion).
    pub fn new() -> io::Result<Self> {
        let mut fds = [-1i32; 2];
        #[cfg(target_os = "linux")]
        // SAFETY: `fds` is a valid 2-element array; pipe2 writes exactly
        // two descriptors on success.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        #[cfg(not(target_os = "linux"))]
        // SAFETY: as above for pipe(2); nonblocking is set separately
        // below via fcntl.
        let rc = unsafe {
            let rc = pipe(fds.as_mut_ptr());
            if rc == 0 {
                const F_SETFL: i32 = 4;
                const O_NONBLOCK_PORTABLE: i32 = 0x4;
                for fd in fds {
                    fcntl(fd, F_SETFL, O_NONBLOCK_PORTABLE);
                }
            }
            rc
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let [read_fd, write_fd] = fds;
        Ok(Self { read_fd, write_fd })
    }

    /// The readable end, for registration in the poll set.
    #[must_use]
    pub fn poll_fd(&self) -> PollFd {
        PollFd::new(self.read_fd, POLLIN)
    }

    /// Kicks the event thread. Best-effort: a full pipe already implies
    /// a pending wakeup, and a torn-down pipe means the loop is gone.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: writing one byte from a live stack buffer to an fd we
        // own; nonblocking, so this cannot park the calling worker.
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Swallows all pending wakeup bytes (call once per poll wakeup).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live stack buffer of the stated
            // length from an fd we own; nonblocking read returns -1 with
            // EAGAIN when the pipe is empty.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: closing descriptors this struct exclusively owns.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_then_drain_roundtrip() {
        let p = WakePipe::new().expect("pipe");
        let mut fds = [p.poll_fd()];
        // Nothing pending: zero-timeout poll reports nothing ready.
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0);
        p.wake();
        p.wake();
        let mut fds = [p.poll_fd()];
        assert_eq!(poll_fds(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].readable());
        p.drain();
        let mut fds = [p.poll_fd()];
        assert_eq!(
            poll_fds(&mut fds, 0).expect("poll"),
            0,
            "drain emptied pipe"
        );
    }

    #[test]
    fn poll_times_out_on_silence() {
        let p = WakePipe::new().expect("pipe");
        let mut fds = [p.poll_fd()];
        let t0 = std::time::Instant::now();
        assert_eq!(poll_fds(&mut fds, 20).expect("poll"), 0);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
    }

    #[test]
    fn wake_from_another_thread_unblocks_poll() {
        let p = std::sync::Arc::new(WakePipe::new().expect("pipe"));
        let p2 = std::sync::Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            p2.wake();
        });
        let mut fds = [p.poll_fd()];
        assert_eq!(poll_fds(&mut fds, 5000).expect("poll"), 1);
        h.join().expect("waker thread");
    }
}
